//! # sqe — Conditional Selectivity for Statistics on Query Expressions
//!
//! A production-quality Rust reproduction of **Bruno & Chaudhuri,
//! "Conditional Selectivity for Statistics on Query Expressions" (SIGMOD
//! 2004)**: the conditional-selectivity framework, the `getSelectivity`
//! dynamic program, the `nInd` / `Diff` / `Opt` error functions, SIT
//! (statistics-on-query-expression) catalogs and pools, the greedy
//! view-matching baseline of SIGMOD 2002, a mini Cascades-style optimizer
//! with memo-coupled estimation, and every substrate the paper's evaluation
//! needs (column-store SPJ engine, maxDiff histograms, skewed snowflake
//! data and workload generators).
//!
//! ## Quick start
//!
//! ```
//! use sqe::prelude::*;
//!
//! // 1. A skewed snowflake database and a small SPJ workload.
//! let sf = Snowflake::generate(SnowflakeConfig { scale: 0.002, ..Default::default() });
//! let workload = generate_workload(
//!     &sf.db, &sf.join_edges, &sf.filter_columns,
//!     WorkloadConfig { queries: 5, joins: 3, ..Default::default() });
//!
//! // 2. Build the J2 pool of SITs (histograms over ≤2-join expressions).
//! let pool = build_pool(&sf.db, &workload, PoolSpec::ji(2)).unwrap();
//!
//! // 3. Estimate with getSelectivity + Diff and compare with the truth.
//! let query = &workload[0];
//! let mut est = SelectivityEstimator::new(&sf.db, query, &pool, ErrorMode::Diff);
//! let estimated = est.cardinality(est.context().all());
//! let mut oracle = CardinalityOracle::new(&sf.db);
//! let truth = oracle.cardinality(&query.tables, &query.predicates).unwrap() as f64;
//! assert!(estimated.is_finite() && truth >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`engine`] | `sqe-engine` | column store, SPJ executor, exact cardinality oracle |
//! | [`histogram`] | `sqe-histogram` | maxDiff histograms, histogram join, `diff` metric |
//! | [`datagen`] | `sqe-datagen` | snowflake generator, workloads, motivating scenario |
//! | [`core`] | `sqe-core` | conditional selectivity, SITs, `getSelectivity`, GVM |
//! | [`optimizer`] | `sqe-optimizer` | mini-Cascades memo + §4 coupled estimation |
//! | [`service`] | `sqe-service` | concurrent estimation service: snapshots, sharded cross-query cache, metrics |
//! | [`server`] | `sqe-server` | HTTP/JSON front end: multi-tenant front door, quotas, reactor, /metrics |
//! | [`oracle`] | `sqe-oracle` | ground-truth exact executor, differential invariants, accuracy harness + gate |
//!
//! Run the paper's experiments with the binaries in `sqe-bench`
//! (`cargo run --release -p sqe-bench --bin fig7`, etc.); see
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use sqe_core as core;
pub use sqe_datagen as datagen;
pub use sqe_engine as engine;
pub use sqe_histogram as histogram;
pub use sqe_optimizer as optimizer;
pub use sqe_oracle as oracle;
pub use sqe_server as server;
pub use sqe_service as service;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use sqe_core::{
        build_pool, build_pool2, load_catalog, save_catalog, BeamConfig, BeamStats, Budget,
        BudgetedEstimate, CancelToken, DegradeReason, DpStrategy, ErrorMode, GreedyViewMatching,
        Ladder, NoSitEstimator, PoolSpec, PredSet, Quality, QueryContext, SelectivityEstimator,
        Sit, Sit2, Sit2Catalog, SitCatalog, SitOptions,
    };
    pub use sqe_datagen::{
        generate_workload, motivating_scenario, Snowflake, SnowflakeConfig, WorkloadConfig,
    };
    pub use sqe_engine::{
        CardinalityOracle, CmpOp, ColRef, Database, Predicate, SpjQuery, Table, TableId,
    };
    pub use sqe_histogram::{build_maxdiff, Histogram};
    pub use sqe_optimizer::{explore, extract_best_plan, Memo, MemoEstimator};
    pub use sqe_service::{
        DpThreadsMode, Estimate, EstimationService, ServiceConfig, ServiceError,
    };
}

//! # sqe-service — a concurrent selectivity-estimation service
//!
//! The library crates (`sqe-core`, `sqe-engine`, `sqe-histogram`) answer
//! one query at a time in one thread. This crate turns them into a
//! long-lived *service* the way a database server would host them:
//!
//! * [`CatalogSnapshot`] — an immutable, atomically swappable view of
//!   `(database, SIT catalogs, cross-query cache)`. Readers pin a snapshot
//!   with an `Arc` and are never blocked or invalidated by a concurrent
//!   pool rebuild;
//! * [`EstimationService`] — [`EstimationService::estimate`] /
//!   [`EstimationService::estimate_batch`] construct per-query
//!   [`sqe_core::SelectivityEstimator`]s against the current snapshot,
//!   backed by a [`ShardedCache`] that reuses per-link conditional factors
//!   and SIT join products across queries and threads;
//! * [`ShardedCache`] — N shards of `parking_lot::Mutex` around bounded
//!   [`lru::LruMap`]s, keyed by canonicalized
//!   `(predicate-set, conditioning-set, error-mode)` fingerprints
//!   ([`sqe_core::CacheKey`]);
//! * [`ServiceStatsSnapshot`] — atomic counters and a power-of-two latency
//!   histogram for monitoring.
//!
//! Correctness bar: concurrent estimates are **bit-identical** to a fresh
//! single-threaded estimator over the same catalog — the cache only stores
//! values that are pure functions of their canonical keys (see
//! `sqe_core::cache` for the contract, and `tests/service.rs` at the
//! workspace root for the 8-thread equivalence test).

pub mod admission;
pub mod cache;
pub mod lru;
pub mod service;
pub mod stats;

pub use admission::{AdmissionControl, Permit};
pub use cache::{CacheCounters, CarryStats, ShardedCache};
pub use lru::LruMap;
pub use service::{
    CatalogSnapshot, DpThreadsMode, Estimate, EstimationService, PartialInstallOutcome,
    ServiceConfig, ServiceError,
};
pub use sqe_core::{
    BackendKind, BoundSketch, Budget, CancelToken, DegradeReason, DpStrategy, MetricsSink,
    NullSink, Quality, SelectivityBackend,
};
pub use stats::{IngestCounters, ServiceStatsSnapshot, LATENCY_BUCKETS, QUALITY_TIERS};

/// The whole point of the crate: everything shared is thread-safe.
#[allow(dead_code)]
fn static_assertions() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimationService>();
    assert_send_sync::<CatalogSnapshot>();
    assert_send_sync::<ShardedCache>();
    assert_send_sync::<ServiceStatsSnapshot>();
}

//! Admission control: a bounded pool of in-flight permits with load-shed
//! and release telemetry.
//!
//! The budgeted endpoints acquire a [`Permit`] before doing any work; when
//! every permit is taken the request is shed immediately with
//! [`crate::ServiceError::Overloaded`] and a retry-after hint, instead of
//! queueing behind work that is already missing its deadlines. Permits are
//! RAII — a panicking request releases its permit during unwinding, so
//! panic isolation never leaks capacity.
//!
//! ## Retry hints from release telemetry
//!
//! Every permit release feeds an EWMA of how long permits are actually
//! held ([`AdmissionControl::ewma_hold`]); sheds between releases count
//! queued demand. The hint a shed request receives is
//!
//! ```text
//! retry_after ≈ ewma_hold × (1 + sheds_since_last_release) / max_permits
//! ```
//!
//! — with `max` permits cycling, a slot frees roughly every
//! `hold / max`, and each shed already waiting ahead pushes the caller
//! one more release into the future. The hint is *monotone in load*:
//! every additional shed without an intervening release strictly grows
//! it (pinned by a unit test below), unlike the old global mean-latency
//! guess, which ignored queueing entirely. One `AdmissionControl` can be
//! shared by several services (the multi-tenant front door does this) so
//! the budget it bounds is process-wide.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// EWMA smoothing: `new = old + (sample - old) / 2^EWMA_SHIFT`.
const EWMA_SHIFT: u32 = 3;

/// A bounded in-flight counter handing out RAII [`Permit`]s.
#[derive(Debug)]
pub struct AdmissionControl {
    in_flight: AtomicUsize,
    max: usize,
    /// EWMA of permit hold time in nanoseconds (0 = no release observed
    /// yet). Updated racily with relaxed loads/stores: this is telemetry
    /// for retry hints, not coordination, and a lost update only makes
    /// the average marginally staler.
    hold_ewma_ns: AtomicU64,
    /// Permits released so far (0 means [`AdmissionControl::retry_hint`]
    /// has no telemetry to extrapolate from).
    releases: AtomicU64,
    /// Sheds since the last release — queued demand for the next slot.
    sheds_since_release: AtomicU64,
}

impl AdmissionControl {
    /// Admission with at most `max` requests in flight; `0` disables the
    /// bound entirely (every acquire succeeds).
    pub fn new(max: usize) -> Self {
        AdmissionControl {
            in_flight: AtomicUsize::new(0),
            max,
            hold_ewma_ns: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            sheds_since_release: AtomicU64::new(0),
        }
    }

    /// The configured bound (`0` = unbounded).
    pub fn max_in_flight(&self) -> usize {
        self.max
    }

    /// Currently admitted requests.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Tries to admit one request. `None` means the service is at
    /// capacity and the caller should shed.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        if self.max == 0 {
            // Unbounded: still count in-flight for observability.
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            return Some(Permit {
                pool: self,
                acquired: Instant::now(),
            });
        }
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Permit {
                        pool: self,
                        acquired: Instant::now(),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Records one shed (a failed acquire the caller turned into an
    /// `Overloaded` response) and returns the retry hint for it, or
    /// `None` when no permit has ever been released — there is no
    /// telemetry yet, and the caller should fall back to its own guess.
    pub fn note_shed(&self) -> Option<Duration> {
        self.sheds_since_release.fetch_add(1, Ordering::Relaxed);
        self.retry_hint()
    }

    /// The current retry hint from release telemetry (see the module
    /// docs for the formula); `None` before the first release.
    pub fn retry_hint(&self) -> Option<Duration> {
        if self.releases.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let hold = self.hold_ewma_ns.load(Ordering::Relaxed);
        let queued = self.sheds_since_release.load(Ordering::Relaxed);
        let per_slot = hold / self.max.max(1) as u64;
        // `.max(1)` keeps the hint strictly monotone in `queued` even for
        // sub-nanosecond-per-slot holds.
        Some(Duration::from_nanos(
            per_slot.max(1).saturating_mul(1 + queued),
        ))
    }

    /// The smoothed permit hold time observed so far (zero before the
    /// first release).
    pub fn ewma_hold(&self) -> Duration {
        Duration::from_nanos(self.hold_ewma_ns.load(Ordering::Relaxed))
    }

    /// Called from [`Permit::drop`]: fold `held` into the EWMA and reset
    /// the queued-demand counter (a release means the queue advanced).
    fn note_release(&self, held: Duration) {
        let ns = held.as_nanos().min(u64::MAX as u128) as u64;
        let old = self.hold_ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            ns
        } else {
            // old + (ns - old) / 2^k, computed in signed space so samples
            // below the average pull it down.
            (old as i64 + ((ns as i64 - old as i64) >> EWMA_SHIFT)).max(1) as u64
        };
        self.hold_ewma_ns.store(new, Ordering::Relaxed);
        self.releases.fetch_add(1, Ordering::Relaxed);
        self.sheds_since_release.store(0, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// One admitted request. Dropping it — normally or during a panic's
/// unwind — releases the slot and feeds the hold-time telemetry.
#[derive(Debug)]
pub struct Permit<'a> {
    pool: &'a AdmissionControl,
    acquired: Instant,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.pool.note_release(self.acquired.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_in_flight_and_release_on_drop() {
        let pool = AdmissionControl::new(2);
        let a = pool.try_acquire().expect("first");
        let b = pool.try_acquire().expect("second");
        assert!(pool.try_acquire().is_none(), "at capacity");
        assert_eq!(pool.in_flight(), 2);
        drop(a);
        let c = pool.try_acquire().expect("slot freed");
        assert!(pool.try_acquire().is_none());
        drop(b);
        drop(c);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn zero_max_is_unbounded() {
        let pool = AdmissionControl::new(0);
        let permits: Vec<_> = (0..64).map(|_| pool.try_acquire().unwrap()).collect();
        assert_eq!(pool.in_flight(), 64);
        drop(permits);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn permit_released_during_unwind() {
        let pool = AdmissionControl::new(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = pool.try_acquire().unwrap();
            panic!("request dies");
        }));
        assert!(res.is_err());
        assert_eq!(pool.in_flight(), 0, "unwind released the permit");
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn contended_acquires_never_exceed_max() {
        let pool = AdmissionControl::new(4);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (pool, peak) = (&pool, &peak);
                s.spawn(move || {
                    for _ in 0..500 {
                        if let Some(_p) = pool.try_acquire() {
                            peak.fetch_max(pool.in_flight(), Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn no_hint_before_any_release() {
        let pool = AdmissionControl::new(1);
        assert_eq!(pool.retry_hint(), None);
        let _p = pool.try_acquire().unwrap();
        assert_eq!(pool.note_shed(), None, "no telemetry yet");
    }

    /// The satellite's acceptance bar: more load (sheds piling up without
    /// a release) must produce strictly larger retry hints.
    #[test]
    fn retry_hint_is_monotone_in_load() {
        let pool = AdmissionControl::new(2);
        // Seed the hold-time EWMA with one completed request.
        {
            let p = pool.try_acquire().unwrap();
            std::thread::sleep(Duration::from_millis(2));
            drop(p);
        }
        assert!(pool.ewma_hold() >= Duration::from_millis(2));
        // Saturate, then shed repeatedly: each shed without an
        // intervening release must grow the hint.
        let _a = pool.try_acquire().unwrap();
        let _b = pool.try_acquire().unwrap();
        let mut last = Duration::ZERO;
        for i in 0..16 {
            assert!(pool.try_acquire().is_none(), "still saturated");
            let hint = pool.note_shed().expect("telemetry seeded");
            assert!(
                hint > last,
                "shed {i}: hint {hint:?} did not grow past {last:?}"
            );
            last = hint;
        }
        // A release drains the queue estimate: the next shed's hint
        // restarts low.
        drop(_a);
        let _c = pool.try_acquire().unwrap();
        let after = pool.note_shed().expect("telemetry");
        assert!(after < last, "release must reset queued demand");
    }

    #[test]
    fn ewma_tracks_hold_time_scale() {
        let pool = AdmissionControl::new(1);
        for _ in 0..8 {
            let p = pool.try_acquire().unwrap();
            std::thread::sleep(Duration::from_millis(1));
            drop(p);
        }
        let ewma = pool.ewma_hold();
        assert!(ewma >= Duration::from_micros(900), "ewma {ewma:?} too low");
        assert!(ewma < Duration::from_millis(100), "ewma {ewma:?} too high");
    }
}

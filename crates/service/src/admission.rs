//! Admission control: a bounded pool of in-flight permits with load-shed.
//!
//! The budgeted endpoints acquire a [`Permit`] before doing any work; when
//! every permit is taken the request is shed immediately with
//! [`crate::ServiceError::Overloaded`] and a retry-after hint, instead of
//! queueing behind work that is already missing its deadlines. Permits are
//! RAII — a panicking request releases its permit during unwinding, so
//! panic isolation never leaks capacity.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded in-flight counter handing out RAII [`Permit`]s.
#[derive(Debug)]
pub(crate) struct AdmissionControl {
    in_flight: AtomicUsize,
    max: usize,
}

impl AdmissionControl {
    /// Admission with at most `max` requests in flight; `0` disables the
    /// bound entirely (every acquire succeeds).
    pub fn new(max: usize) -> Self {
        AdmissionControl {
            in_flight: AtomicUsize::new(0),
            max,
        }
    }

    /// Currently admitted requests.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Tries to admit one request. `None` means the service is at
    /// capacity and the caller should shed.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        if self.max == 0 {
            // Unbounded: still count in-flight for observability.
            self.in_flight.fetch_add(1, Ordering::Relaxed);
            return Some(Permit { pool: self });
        }
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { pool: self }),
                Err(now) => cur = now,
            }
        }
    }
}

/// One admitted request. Dropping it — normally or during a panic's
/// unwind — releases the slot.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    pool: &'a AdmissionControl,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.pool.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_in_flight_and_release_on_drop() {
        let pool = AdmissionControl::new(2);
        let a = pool.try_acquire().expect("first");
        let b = pool.try_acquire().expect("second");
        assert!(pool.try_acquire().is_none(), "at capacity");
        assert_eq!(pool.in_flight(), 2);
        drop(a);
        let c = pool.try_acquire().expect("slot freed");
        assert!(pool.try_acquire().is_none());
        drop(b);
        drop(c);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn zero_max_is_unbounded() {
        let pool = AdmissionControl::new(0);
        let permits: Vec<_> = (0..64).map(|_| pool.try_acquire().unwrap()).collect();
        assert_eq!(pool.in_flight(), 64);
        drop(permits);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn permit_released_during_unwind() {
        let pool = AdmissionControl::new(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _p = pool.try_acquire().unwrap();
            panic!("request dies");
        }));
        assert!(res.is_err());
        assert_eq!(pool.in_flight(), 0, "unwind released the permit");
        assert!(pool.try_acquire().is_some());
    }

    #[test]
    fn contended_acquires_never_exceed_max() {
        let pool = AdmissionControl::new(4);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (pool, peak) = (&pool, &peak);
                s.spawn(move || {
                    for _ in 0..500 {
                        if let Some(_p) = pool.try_acquire() {
                            peak.fetch_max(pool.in_flight(), Ordering::Relaxed);
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(pool.in_flight(), 0);
    }
}

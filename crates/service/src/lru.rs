//! A plain bounded LRU map.
//!
//! Hand-rolled (no external `lru` crate in this workspace): a `HashMap`
//! from key to slot index into a slab of entries threaded on an intrusive
//! doubly-linked recency list. All operations are O(1) expected.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A bounded map evicting its least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruMap<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruMap<K, V> {
    /// An empty map evicting beyond `capacity` entries (capacity 0 caches
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Inserts or updates `key`, marking it most recently used. Returns
    /// true when the insertion evicted a colder entry.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.detach(lru);
            self.map.remove(&self.slab[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }

    /// Unlinks slot `idx` from the recency list.
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            if self.head == idx {
                self.head = next;
            }
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            if self.tail == idx {
                self.tail = prev;
            }
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    /// Iterates entries from least to most recently used (cold to hot),
    /// without disturbing recency. Re-inserting into a fresh map in this
    /// order reproduces the recency ordering — the cache carry-over of a
    /// partial snapshot install walks it.
    pub fn iter_lru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut at = self.tail;
        std::iter::from_fn(move || {
            if at == NIL {
                return None;
            }
            let e = &self.slab[at];
            at = e.prev;
            Some((&e.key, &e.value))
        })
    }

    /// Links slot `idx` as the most recently used.
    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys from most to least recently used (test-only walk).
    fn recency<K: Hash + Eq + Clone + Copy, V>(m: &LruMap<K, V>) -> Vec<K> {
        let mut out = Vec::new();
        let mut at = m.head;
        while at != NIL {
            out.push(m.slab[at].key);
            at = m.slab[at].next;
        }
        out
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut m = LruMap::new(2);
        assert!(!m.insert(1, "a"));
        assert!(!m.insert(2, "b"));
        assert_eq!(m.get(&1), Some(&"a")); // 1 now hot, 2 cold
        assert!(m.insert(3, "c"), "third insert evicts");
        assert_eq!(m.get(&2), None, "cold entry evicted");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn update_refreshes_without_evicting() {
        let mut m = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        assert!(!m.insert(1, 11), "update is not an eviction");
        assert_eq!(recency(&m), vec![1, 2]);
        assert_eq!(m.get(&1), Some(&11));
    }

    #[test]
    fn capacity_zero_caches_nothing() {
        let mut m = LruMap::new(0);
        assert!(!m.insert(1, "a"));
        assert_eq!(m.get(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut m = LruMap::new(3);
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 3);
        assert!(m.slab.len() <= 4, "slab must not grow unboundedly");
        assert_eq!(m.get(&99), Some(&198));
        assert_eq!(m.get(&97), Some(&194));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn iter_lru_walks_cold_to_hot() {
        let mut m = LruMap::new(4);
        for i in 0..4 {
            m.insert(i, i * 10);
        }
        m.get(&1);
        let cold_to_hot: Vec<i32> = m.iter_lru().map(|(k, _)| *k).collect();
        assert_eq!(cold_to_hot, vec![0, 2, 3, 1]);
        // Replaying into a fresh map preserves recency.
        let mut n = LruMap::new(4);
        for (k, v) in m.iter_lru() {
            n.insert(*k, *v);
        }
        assert_eq!(recency(&n), recency(&m));
    }

    #[test]
    fn recency_order_tracks_access_pattern() {
        let mut m = LruMap::new(4);
        for i in 0..4 {
            m.insert(i, ());
        }
        assert_eq!(recency(&m), vec![3, 2, 1, 0]);
        m.get(&0);
        m.get(&2);
        assert_eq!(recency(&m), vec![2, 0, 3, 1]);
    }
}

//! The estimation service: catalog snapshots and the concurrent
//! `estimate` / `estimate_batch` front end.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sqe_core::{
    build_pool_threaded, BackendKind, BeamConfig, BnBackend, BnCatalog, BoundSketch, Budget,
    CacheKey, DegradeReason, DiffBackend, DpStrategy, ErrorMode, IngestReport, Ladder, MetricsSink,
    NullSink, PessimisticBackend, PoolSpec, Quality, SelectivityBackend, SelectivityEstimator,
    Sit2Catalog, SitCatalog, SitOptions,
};
use sqe_engine::{Database, Result as EngineResult, SpjQuery};

use crate::admission::AdmissionControl;
use crate::cache::ShardedCache;
use crate::stats::{ServiceStats, ServiceStatsSnapshot};

/// How many worker threads each estimator's dense DP fill gets
/// (`SelectivityEstimator::with_dp_threads`).
///
/// This is the *outer* knob; the estimator's own `FillSchedule::Auto`
/// heuristic still decides per component whether those threads are worth
/// using — components below `sqe_core::WS_MIN_LATTICE_MASKS` lattice masks
/// run serially even under `Auto`/`Fixed`, because the committed
/// measurements show fork/steal overhead dominating there (see `DESIGN.md`
/// §4h).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpThreadsMode {
    /// Serial fill — the right default when `batch_threads` already
    /// saturates the host, since the two thread layers multiply.
    #[default]
    Serial,
    /// Exactly this many fill workers per estimator.
    Fixed(NonZeroUsize),
    /// One fill worker per available core
    /// ([`std::thread::available_parallelism`]); single-core hosts resolve
    /// to the serial fill.
    Auto,
}

impl DpThreadsMode {
    /// The concrete thread count to hand the estimator.
    pub fn resolve(self) -> usize {
        match self {
            DpThreadsMode::Serial => 1,
            DpThreadsMode::Fixed(n) => n.get(),
            DpThreadsMode::Auto => {
                std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
            }
        }
    }
}

/// Configuration of an [`EstimationService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Error mode every estimator runs under (part of every cache key, but
    /// fixed per service so concurrent estimates are comparable).
    pub mode: ErrorMode,
    /// Shard count of the cross-query cache (rounded up to a power of two).
    pub cache_shards: usize,
    /// Bound on each per-shard map (links, queries, joins, `H3` each hold
    /// at most this many entries per shard).
    pub cache_capacity_per_shard: usize,
    /// Threads for [`EstimationService::rebuild_pool`]; `None` uses
    /// [`std::thread::available_parallelism`].
    pub build_threads: Option<NonZeroUsize>,
    /// Enables §3.4 SIT-driven pruning on every estimator. Part of the
    /// estimator configuration, so it must be uniform across a cache.
    pub sit_driven_pruning: bool,
    /// Subset-lattice DP engine every estimator runs on. All strategies are
    /// bit-identical, so mixing them across a shared cache is safe — this
    /// knob exists for memory control and engine benchmarking.
    pub dp_strategy: DpStrategy,
    /// Worker threads for [`EstimationService::estimate_batch`]; `None`
    /// uses [`std::thread::available_parallelism`], `Some(1)` forces the
    /// sequential path. Parallel batches are bit-identical to sequential
    /// ones (see the `estimate_batch` docs).
    pub batch_threads: Option<NonZeroUsize>,
    /// Threads for each estimator's parallel dense DP fill (see
    /// [`DpThreadsMode`]). Every mode is bit-identical to the serial fill;
    /// only speed differs.
    pub dp_threads: DpThreadsMode,
    /// Admission bound for the *budgeted* endpoints
    /// ([`EstimationService::estimate_with_budget`] and its batch
    /// sibling): at most this many requests in flight, the rest shed with
    /// [`ServiceError::Overloaded`]. `0` disables the bound. The
    /// unbudgeted endpoints are unaffected.
    pub max_in_flight: usize,
    /// Knobs of the beam-search approximate engine (see
    /// [`sqe_core::BeamConfig`]), used whenever `dp_strategy` routes a
    /// query's width to the beam — under the default `Auto`, every query
    /// wider than 20 predicates.
    pub beam: BeamConfig,
    /// The service-level deadline [`EstimationService::default_budget`]
    /// hands out: the latency envelope a budgeted request is expected to
    /// answer within — by degrading, never by erroring. Wide queries
    /// routed to the beam engine are tuned (width 8, see
    /// `BENCH_estimator.json`'s wide-`n` rows) to fit a 32-predicate
    /// estimate inside this deadline on a single core.
    pub default_deadline: Duration,
    /// Which [`SelectivityBackend`] every estimator runs with (see the
    /// backend-selection table in the README). `Diff` — the default —
    /// keeps the paper's maxDiff/`diff` machinery and is bit-identical to
    /// a service built before this knob existed. `Bn` conditions
    /// correlated same-table filters through a Chow-Liu Bayesian network
    /// built per snapshot. `Pessimistic` keeps diff point estimates but
    /// drives the degradation floor through the guaranteed bound
    /// ([`Quality::Bound`]). Regardless of the choice, every snapshot
    /// carries a [`BoundSketch`] and every [`Estimate`] reports the sound
    /// [`Estimate::upper_bound`]. Fixed per service, like
    /// [`ServiceConfig::mode`], so cached values stay comparable.
    pub backend: BackendKind,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            mode: ErrorMode::Diff,
            cache_shards: 16,
            cache_capacity_per_shard: 4096,
            build_threads: None,
            sit_driven_pruning: false,
            dp_strategy: DpStrategy::Auto,
            batch_threads: None,
            dp_threads: DpThreadsMode::Serial,
            max_in_flight: 64,
            beam: BeamConfig::default(),
            default_deadline: Duration::from_millis(250),
            backend: BackendKind::Diff,
        }
    }
}

/// Why a budgeted request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control is at capacity. Retry after the hinted delay,
    /// computed from actual permit-release telemetry — the EWMA of how
    /// long permits are held, scaled by the sheds queued since the last
    /// release (see [`crate::AdmissionControl::retry_hint`]) — clamped to
    /// [1 ms, 1 s]. Before any permit has been released there is no
    /// telemetry, and the hint falls back to the service's mean estimate
    /// latency.
    Overloaded {
        /// In-flight requests at the moment of the shed.
        in_flight: usize,
        /// Suggested back-off before retrying.
        retry_after: Duration,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded {
                in_flight,
                retry_after,
            } => write!(
                f,
                "overloaded: {in_flight} requests in flight, retry after {retry_after:?}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// An immutable view of the statistics state at one point in time.
///
/// Readers obtain an `Arc<CatalogSnapshot>` and keep estimating against it
/// for as long as they hold the `Arc`, entirely unaffected by concurrent
/// pool rebuilds; the writer installs a *new* snapshot and never mutates a
/// published one. The cross-query cache lives inside the snapshot because
/// its join/`H3` entries are keyed by [`sqe_core::SitId`], which is only
/// meaningful relative to this snapshot's catalog.
pub struct CatalogSnapshot {
    db: Arc<Database>,
    sits: SitCatalog,
    sit2: Option<Sit2Catalog>,
    cache: ShardedCache,
    epoch: u64,
    /// Degree-sequence bound sketch over `db` — always present so every
    /// [`Estimate`] can report a sound [`Estimate::upper_bound`].
    bound: Arc<BoundSketch>,
    /// The estimator backend for this snapshot, resolved once from
    /// [`ServiceConfig::backend`] (the Bayesian-network catalog, when
    /// selected, is built here so it always matches `db`).
    backend: Arc<dyn SelectivityBackend>,
}

impl CatalogSnapshot {
    /// The database this snapshot estimates against.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The SIT catalog of this snapshot.
    pub fn sits(&self) -> &SitCatalog {
        &self.sits
    }

    /// The optional two-attribute SIT catalog.
    pub fn sit2(&self) -> Option<&Sit2Catalog> {
        self.sit2.as_ref()
    }

    /// The shared cross-query cache scoped to this snapshot.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Monotone snapshot generation (0 for the service's initial catalog).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The degree-sequence bound sketch over this snapshot's database.
    pub fn bound_sketch(&self) -> &BoundSketch {
        &self.bound
    }

    /// The selectivity backend estimators against this snapshot run with.
    pub fn backend(&self) -> &dyn SelectivityBackend {
        &*self.backend
    }
}

/// Per-snapshot backend state: the always-on bound sketch plus the
/// configured backend instance (building the Bayesian-network catalog
/// when — and only when — [`BackendKind::Bn`] is selected).
fn backend_state(
    db: &Database,
    kind: BackendKind,
) -> (Arc<BoundSketch>, Arc<dyn SelectivityBackend>) {
    let bound = Arc::new(BoundSketch::build(db));
    let backend: Arc<dyn SelectivityBackend> = match kind {
        BackendKind::Diff => Arc::new(DiffBackend),
        BackendKind::Bn => Arc::new(BnBackend::new(Arc::new(BnCatalog::build(db)))),
        BackendKind::Pessimistic => Arc::new(PessimisticBackend::new(Arc::clone(&bound))),
    };
    (bound, backend)
}

/// What a [`EstimationService::partial_install`] published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialInstallOutcome {
    /// Epoch of the installed snapshot.
    pub epoch: u64,
    /// Cross-query cache entries carried into the new snapshot.
    pub cache_carried: u64,
    /// Cache entries invalidated (their keys covered mutated tables or
    /// refreshed SITs).
    pub cache_dropped: u64,
}

/// One answered estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Selectivity of the full query (fraction of the cartesian product).
    pub selectivity: f64,
    /// Accumulated error score of the chosen decomposition (lower is
    /// better; the scale depends on the service's [`ErrorMode`]).
    pub error: f64,
    /// `selectivity × |cartesian product|`; infinite if the product
    /// overflows `u128`.
    pub cardinality: f64,
    /// Epoch of the snapshot that answered, so callers can correlate
    /// estimates with catalog generations.
    pub epoch: u64,
    /// True when the whole-query cache answered without constructing an
    /// estimator.
    ///
    /// This is the **only** field that depends on scheduling: in a
    /// parallel [`EstimationService::estimate_batch`], two workers can
    /// race the same whole-query key and both miss, or a duplicate later
    /// in the batch can hit an entry its twin just published — so `cached`
    /// may differ from run to run and across `batch_threads` settings.
    /// `selectivity`, `error`, `cardinality`, and `epoch` are pure
    /// functions of `(query, snapshot)` and are bit-identical regardless
    /// of thread count (pinned by the `sqe-oracle` batch-determinism
    /// suite). Don't assert on `cached` in tests that vary parallelism.
    pub cached: bool,
    /// How the answer was obtained. The unbudgeted endpoints and every
    /// in-budget request report [`Quality::Full`] — or [`Quality::Beam`]
    /// when [`ServiceConfig::dp_strategy`] routes the query's width to
    /// the beam-search approximate engine (under `Auto`, `n > 20`); a
    /// budgeted request that ran out reports the degradation-ladder rung
    /// that answered.
    pub quality: Quality,
    /// Why the answer is degraded below the best rung the query's routing
    /// allows (`None` iff the answer is undegraded: `Full`, or `Beam` for
    /// beam-routed queries).
    pub degraded_reason: Option<DegradeReason>,
    /// A **guaranteed** upper bound on the query's result cardinality,
    /// from the snapshot's degree-sequence [`BoundSketch`] — reported on
    /// every estimate regardless of [`ServiceConfig::backend`], and sound
    /// no matter how approximate the point estimate above it is. `None`
    /// only when the sketch does not know a referenced table (a
    /// sketch/database mismatch) or the answer came from the
    /// panic-recovery path (where no backend code is trusted to run).
    pub upper_bound: Option<f64>,
}

/// A concurrent selectivity-estimation service over one database.
///
/// Shares one [`CatalogSnapshot`] among any number of estimating threads;
/// [`EstimationService::install`] / [`EstimationService::rebuild_pool`]
/// atomically swap in a fresh snapshot without blocking readers mid-query.
/// Estimates are bit-identical to running a fresh single-threaded
/// [`SelectivityEstimator`] against the same catalog: the shared cache only
/// stores values that are pure functions of `(predicates, conditioning set,
/// mode, snapshot)`.
pub struct EstimationService {
    config: ServiceConfig,
    /// The database lives inside each snapshot (not on the service):
    /// partial installs can evolve it, and a reader's estimates must be
    /// consistent with the database its catalog was built against.
    current: RwLock<Arc<CatalogSnapshot>>,
    stats: ServiceStats,
    /// Shared so several services (one per tenant behind a front door)
    /// can draw on one process-wide in-flight budget — see
    /// [`EstimationService::with_shared_admission`].
    admission: Arc<AdmissionControl>,
    /// Per-request observer (rung mix, sheds, quarantines, bound width,
    /// ingest epochs). [`NullSink`] — free — unless a front end installs
    /// a real one via [`EstimationService::with_metrics`].
    metrics: Arc<dyn MetricsSink>,
}

impl EstimationService {
    /// A service answering with `catalog` over `db`.
    pub fn new(db: Arc<Database>, catalog: SitCatalog, config: ServiceConfig) -> Self {
        // Chaos/fault-injection runs configure sites via SQE_FAILPOINTS;
        // a no-op (one Once check) otherwise.
        sqe_core::failpoint::init_from_env();
        let (bound, backend) = backend_state(&db, config.backend);
        let snapshot = Arc::new(CatalogSnapshot {
            db,
            sits: catalog,
            sit2: None,
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity_per_shard),
            epoch: 0,
            bound,
            backend,
        });
        EstimationService {
            config,
            current: RwLock::new(snapshot),
            stats: ServiceStats::default(),
            admission: Arc::new(AdmissionControl::new(config.max_in_flight)),
            metrics: Arc::new(NullSink),
        }
    }

    /// Replaces this service's admission control with a shared one, so
    /// several services draw permits from a single process-wide budget.
    /// The multi-tenant front door (`sqe-server`) gives every tenant its
    /// own service — own snapshots, cache, stats — but one global
    /// [`AdmissionControl`], so aggregate in-flight work stays bounded no
    /// matter how many tenants exist. [`ServiceConfig::max_in_flight`] is
    /// ignored in favor of the shared pool's bound. Call before serving
    /// traffic.
    pub fn with_shared_admission(mut self, admission: Arc<AdmissionControl>) -> Self {
        self.admission = admission;
        self
    }

    /// Installs a [`MetricsSink`] observing every request: per-rung
    /// attempts and answers (threaded into the core [`Ladder`]), served
    /// estimates with latency and quality, sheds with their retry hints,
    /// quarantines, bound widths, and observed ingest epochs. Sinks only
    /// observe — answers are bit-identical with or without one. Call
    /// before serving traffic.
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Self {
        self.metrics = sink;
        self
    }

    /// The admission pool this service draws budgeted permits from.
    pub fn admission(&self) -> &Arc<AdmissionControl> {
        &self.admission
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current snapshot. The returned `Arc` stays valid (and its cache
    /// stays warm) even if a new snapshot is installed concurrently.
    pub fn snapshot(&self) -> Arc<CatalogSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Atomically publishes a new catalog (with an optional two-attribute
    /// catalog) as the next snapshot, with a fresh cache and a bumped
    /// epoch. In-flight readers keep their old snapshot; new estimates see
    /// the new one.
    ///
    /// The epoch is computed and the snapshot swapped under **one** write
    /// lock, so racing installs serialize and every published snapshot gets
    /// a distinct, strictly increasing epoch. (Reading the epoch under a
    /// separate read lock would let two racing installs both publish
    /// `epoch + 1`.)
    pub fn install(&self, catalog: SitCatalog, sit2: Option<Sit2Catalog>) {
        sqe_core::failpoint::fire("service::install");
        let mut current = self.current.write();
        // The database is unchanged, so the data-derived backend state
        // carries over by reference — no rescan.
        let snapshot = Arc::new(CatalogSnapshot {
            db: Arc::clone(&current.db),
            sits: catalog,
            sit2,
            cache: ShardedCache::new(
                self.config.cache_shards,
                self.config.cache_capacity_per_shard,
            ),
            epoch: current.epoch + 1,
            bound: Arc::clone(&current.bound),
            backend: Arc::clone(&current.backend),
        });
        *current = snapshot;
        drop(current);
        self.stats.record_install();
    }

    /// Publishes a delta-ingested catalog as an **epoch-tagged partial
    /// snapshot**: the new snapshot carries the evolved database and
    /// catalog, and — unlike [`EstimationService::install`] — it *carries
    /// over* every cross-query cache entry that the ingest could not have
    /// invalidated. Link and whole-query entries survive unless one of
    /// their predicates reads a mutated table; join-product and `H3`
    /// entries survive unless either of their SITs was rebuilt (SIT
    /// identities are preserved for untouched SITs, so the keys stay
    /// meaningful).
    ///
    /// Epoch bump, cache carry-over, and snapshot swap all happen under one
    /// write lock: a concurrent [`EstimationService::estimate`] either runs
    /// entirely against the old snapshot or entirely against the new one —
    /// never against a half-installed catalog — and racing installs get
    /// distinct epochs.
    pub fn partial_install(
        &self,
        db: Arc<Database>,
        catalog: SitCatalog,
        sit2: Option<Sit2Catalog>,
        report: &IngestReport,
    ) -> PartialInstallOutcome {
        sqe_core::failpoint::fire("service::partial_install");
        // Both rebuilt *and* incrementally merged SITs carry new
        // histograms under a stable id, so cached SIT-pair products from
        // either are stale; only deferred SITs keep their entries valid.
        let mut stale_sits = report.sits_refreshed.clone();
        stale_sits.extend_from_slice(&report.sits_merged);
        // The ingested database differs from the old snapshot's, so the
        // data-derived backend state must be rebuilt against it — outside
        // the write lock, so readers are never blocked on the rescan.
        let (bound, backend) = backend_state(&db, self.config.backend);
        let mut current = self.current.write();
        let (cache, carry) = ShardedCache::carry_from(
            self.config.cache_shards,
            self.config.cache_capacity_per_shard,
            &current.cache,
            &report.tables_touched,
            &stale_sits,
        );
        let epoch = current.epoch + 1;
        *current = Arc::new(CatalogSnapshot {
            db,
            sits: catalog,
            sit2,
            cache,
            epoch,
            bound,
            backend,
        });
        drop(current);
        self.stats.record_partial_install(
            report.ops_applied as u64,
            report.sits_refreshed.len() as u64,
            carry.carried,
            carry.dropped,
        );
        PartialInstallOutcome {
            epoch,
            cache_carried: carry.carried,
            cache_dropped: carry.dropped,
        }
    }

    /// Builds the `J_i` SIT pool for `workload` on this service's build
    /// threads (parallel across SIT expressions) and installs it as the new
    /// snapshot. Readers are never blocked: the build runs outside any
    /// lock, and the final swap is [`EstimationService::install`].
    pub fn rebuild_pool(
        &self,
        workload: &[SpjQuery],
        spec: PoolSpec,
        opts: SitOptions,
    ) -> EngineResult<()> {
        let threads = self.config.build_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("non-zero"))
        });
        // Build against the database of the *current* snapshot (partial
        // installs may have evolved it past the one the service started
        // with). A partial install racing the build wins the data race
        // benignly: install() re-reads the then-current db under the write
        // lock, but the catalog built here could be one generation behind —
        // callers serialize rebuilds with ingest for exact results.
        let db = Arc::clone(&self.snapshot().db);
        let catalog = build_pool_threaded(&db, workload, spec, opts, threads)?;
        self.install(catalog, None);
        Ok(())
    }

    /// Estimates one query against the current snapshot.
    pub fn estimate(&self, query: &SpjQuery) -> Estimate {
        let snapshot = self.snapshot();
        self.estimate_on(&snapshot, query)
    }

    /// Estimates a batch against one consistent snapshot: every query in
    /// the slice is answered by the same catalog generation even if a
    /// rebuild lands mid-batch.
    ///
    /// With [`ServiceConfig::batch_threads`] > 1 the batch fans out over a
    /// scoped worker pool sharing that one snapshot (and its cross-query
    /// cache). Each worker writes its query's [`Estimate`] into a dedicated
    /// output slot claimed through an atomic cursor, so the returned vector
    /// is always in input order and every `selectivity` / `error` /
    /// `cardinality` / `epoch` is bit-identical to the sequential path —
    /// estimates are pure functions of `(query, snapshot)` and the shared
    /// cache only memoizes such values. The sole scheduling-dependent field
    /// is the [`Estimate::cached`] flag (two workers can race the same
    /// whole-query key and both compute it). Per-query latency stats are
    /// recorded from the workers as usual.
    pub fn estimate_batch(&self, queries: &[SpjQuery]) -> Vec<Estimate> {
        self.stats.record_batch();
        let snapshot = self.snapshot();
        let workers = self.batch_workers(queries.len());
        if workers < 2 {
            return queries
                .iter()
                .map(|q| self.estimate_on(&snapshot, q))
                .collect();
        }
        let slots: Vec<Mutex<Option<Estimate>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let (snapshot, next, slots) = (&snapshot, &next, &slots);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= queries.len() {
                        break;
                    }
                    let e = self.estimate_on(snapshot, &queries[idx]);
                    *slots[idx].lock().expect("estimate slot poisoned") = Some(e);
                });
            }
        });
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("estimate slot poisoned")
                    .expect("every batch index claimed by exactly one worker")
            })
            .collect()
    }

    /// Worker count for a batch: the configured `batch_threads` (default:
    /// host parallelism), never more than one worker per query.
    fn batch_workers(&self, queries: usize) -> usize {
        let configured = self.config.batch_threads.map_or_else(
            || std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            NonZeroUsize::get,
        );
        configured.min(queries).max(1)
    }

    /// Service metrics, including the current snapshot's cache counters.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        self.stats.snapshot(self.snapshot().cache.counters())
    }

    /// The budget a caller with no latency requirements of its own should
    /// use: unlimited work, capped by [`ServiceConfig::default_deadline`].
    /// Under it a seeded 32-predicate query answers with a
    /// [`Quality::Beam`] label on a single core (the `tests/beam.rs`
    /// acceptance bar); narrower queries answer `Full` as before.
    pub fn default_budget(&self) -> Budget {
        Budget::unlimited().with_deadline(self.config.default_deadline)
    }

    fn estimate_on(&self, snapshot: &CatalogSnapshot, query: &SpjQuery) -> Estimate {
        let start = Instant::now();
        // Queries the strategy routes to the beam engine get approximate
        // answers, which must never enter the whole-query cache (only
        // exact `Full` answers are cached — the invariant budgeted cache
        // hits rely on) and are labeled honestly.
        let routed = self.config.dp_strategy.use_beam(query.predicates.len());
        let key = CacheKey::query(self.config.mode, &query.predicates);
        let hit = (!routed).then(|| snapshot.cache.get_query(&key)).flatten();
        let (result, cached) = match hit {
            Some(hit) => (hit, true),
            None => {
                let mut est = SelectivityEstimator::new(
                    &snapshot.db,
                    query,
                    &snapshot.sits,
                    self.config.mode,
                )
                .with_strategy(self.config.dp_strategy)
                .with_beam_config(self.config.beam)
                .with_dp_threads(self.config.dp_threads.resolve())
                .with_backend(Arc::clone(&snapshot.backend));
                if !routed {
                    // Beam-routed widths skip the link cache too: the
                    // bounded walk recomputes less than the per-link
                    // round-trips cost (see `Ladder::build_estimator_as`).
                    est = est.with_shared_cache(&snapshot.cache);
                }
                if let Some(sit2) = &snapshot.sit2 {
                    est = est.with_sit2_catalog(sit2);
                }
                if self.config.sit_driven_pruning {
                    est = est.with_sit_driven_pruning();
                }
                let all = est.context().all();
                let result = est.get_selectivity(all);
                if !routed {
                    snapshot.cache.put_query(key, result);
                }
                (result, false)
            }
        };
        let latency = start.elapsed();
        self.stats.record_estimate(latency, cached);
        let estimate = Estimate {
            selectivity: result.0,
            error: result.1,
            cardinality: cardinality_of(snapshot, query, result.0),
            epoch: snapshot.epoch,
            cached,
            quality: if routed { Quality::Beam } else { Quality::Full },
            degraded_reason: None,
            upper_bound: snapshot.bound.upper_bound(query),
        };
        self.observe(&estimate, latency);
        estimate
    }

    /// Reports one served estimate to the installed [`MetricsSink`]:
    /// latency + quality, the safety-envelope width when the bound is
    /// known, and the snapshot epoch that answered.
    fn observe(&self, e: &Estimate, latency: Duration) {
        self.metrics
            .estimate_served(latency.as_nanos() as u64, e.quality, e.cached);
        if let Some(bound) = e.upper_bound {
            if bound.is_finite() && e.cardinality.is_finite() {
                self.metrics.bound_width(bound / e.cardinality.max(1.0));
            }
        }
        self.metrics.ingest_epoch_observed(e.epoch);
    }

    /// Estimates one query under a [`Budget`], degrading instead of
    /// blocking: if the budget runs out mid-DP the answer comes from a
    /// coarser rung of the [`Ladder`] with an honest [`Estimate::quality`]
    /// label. Unlike [`EstimationService::estimate`], this endpoint is
    /// admission-controlled (at most [`ServiceConfig::max_in_flight`]
    /// concurrent budgeted requests; the rest are shed with
    /// [`ServiceError::Overloaded`] and a retry-after hint) and
    /// panic-isolated: a panicking estimator is caught, its snapshot's
    /// cache quarantined, a fresh snapshot installed, and the request
    /// still answered from the independence floor with
    /// [`DegradeReason::Panic`].
    ///
    /// An unlimited budget produces answers bit-identical to
    /// [`EstimationService::estimate`], labeled [`Quality::Full`] (or
    /// [`Quality::Beam`] for beam-routed widths).
    pub fn estimate_with_budget(
        &self,
        query: &SpjQuery,
        budget: &Budget,
    ) -> Result<Estimate, ServiceError> {
        let Some(_permit) = self.admission.try_acquire() else {
            return Err(self.shed());
        };
        let snapshot = self.snapshot();
        Ok(self.budgeted_guarded(&snapshot, query, budget))
    }

    /// Budgeted sibling of [`EstimationService::estimate_batch`]: one
    /// consistent snapshot for the whole batch, the `budget` applied to
    /// **each query individually** (a relative deadline restarts per
    /// query; a shared wall-clock cutoff is expressed with a
    /// [`sqe_core::CancelToken`] the caller trips). The batch takes a
    /// single admission permit — shed decisions are per call, not per
    /// query — and every worker is panic-isolated exactly like
    /// [`EstimationService::estimate_with_budget`].
    pub fn estimate_batch_with_budget(
        &self,
        queries: &[SpjQuery],
        budget: &Budget,
    ) -> Result<Vec<Estimate>, ServiceError> {
        let Some(_permit) = self.admission.try_acquire() else {
            return Err(self.shed());
        };
        self.stats.record_batch();
        let snapshot = self.snapshot();
        let workers = self.batch_workers(queries.len());
        if workers < 2 {
            return Ok(queries
                .iter()
                .map(|q| self.budgeted_guarded(&snapshot, q, budget))
                .collect());
        }
        let slots: Vec<Mutex<Option<Estimate>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let (snapshot, next, slots) = (&snapshot, &next, &slots);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= queries.len() {
                        break;
                    }
                    let e = self.budgeted_guarded(snapshot, &queries[idx], budget);
                    *slots[idx].lock().expect("estimate slot poisoned") = Some(e);
                });
            }
        });
        Ok(slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("estimate slot poisoned")
                    .expect("every batch index claimed by exactly one worker")
            })
            .collect())
    }

    /// Records a shed and builds the `Overloaded` error with its
    /// retry-after hint: permit-release telemetry (EWMA hold time scaled
    /// by queued demand — see [`AdmissionControl::retry_hint`]) when any
    /// permit has completed, the mean estimate latency before that, both
    /// clamped to [1 ms, 1 s].
    fn shed(&self) -> ServiceError {
        self.stats.record_shed();
        let retry_after = self
            .admission
            .note_shed()
            .unwrap_or_else(|| self.stats.mean_latency_hint())
            .clamp(Duration::from_millis(1), Duration::from_secs(1));
        self.metrics.shed(retry_after.as_nanos() as u64);
        ServiceError::Overloaded {
            in_flight: self.admission.in_flight(),
            retry_after,
        }
    }

    /// Runs one budgeted estimate with panic isolation: a panic anywhere
    /// in the estimator is caught here, the snapshot recovered, and the
    /// request answered from the independence floor.
    fn budgeted_guarded(
        &self,
        snapshot: &CatalogSnapshot,
        query: &SpjQuery,
        budget: &Budget,
    ) -> Estimate {
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            self.budgeted_on(snapshot, query, budget)
        })) {
            Ok(e) => e,
            Err(_) => {
                self.recover_after_panic(snapshot);
                let selectivity = sqe_core::baseline::independence_selectivity(
                    &snapshot.db,
                    &snapshot.sits,
                    query,
                );
                let latency = start.elapsed();
                self.stats.record_estimate(latency, false);
                self.stats.record_quality(
                    Quality::Independence,
                    Some(DegradeReason::Panic),
                    latency,
                );
                self.metrics
                    .rung_answered(Quality::Independence, Some(DegradeReason::Panic));
                self.metrics.estimate_served(
                    latency.as_nanos() as u64,
                    Quality::Independence,
                    false,
                );
                Estimate {
                    selectivity,
                    error: f64::INFINITY,
                    cardinality: cardinality_of(snapshot, query, selectivity),
                    epoch: snapshot.epoch,
                    cached: false,
                    quality: Quality::Independence,
                    degraded_reason: Some(DegradeReason::Panic),
                    // The panic may have come from the backend itself (the
                    // chaos suite arms exactly that), so no backend code —
                    // including the bound sketch — runs on this path.
                    upper_bound: None,
                }
            }
        }
    }

    fn budgeted_on(
        &self,
        snapshot: &CatalogSnapshot,
        query: &SpjQuery,
        budget: &Budget,
    ) -> Estimate {
        let start = Instant::now();
        let key = CacheKey::query(self.config.mode, &query.predicates);
        let (selectivity, error, quality, reason, cached) = match snapshot.cache.get_query(&key) {
            // Only Full answers are ever inserted, so a hit *is* a Full
            // answer regardless of this request's budget.
            Some((s, e)) => (s, e, Quality::Full, None, true),
            None => {
                let mut ladder = Ladder::new(&snapshot.db, &snapshot.sits, self.config.mode)
                    .with_metrics(&*self.metrics)
                    .with_strategy(self.config.dp_strategy)
                    .with_beam_config(self.config.beam)
                    .with_dp_threads(self.config.dp_threads.resolve())
                    .with_backend(Arc::clone(&snapshot.backend))
                    .with_shared_cache(&snapshot.cache);
                if let Some(sit2) = &snapshot.sit2 {
                    ladder = ladder.with_sit2_catalog(sit2);
                }
                if self.config.sit_driven_pruning {
                    ladder = ladder.with_sit_driven_pruning();
                }
                let b = ladder.estimate(query, budget);
                if b.quality == Quality::Full {
                    let error = b.error.expect("full answers carry an error");
                    snapshot.cache.put_query(key, (b.selectivity, error));
                }
                (
                    b.selectivity,
                    b.error.unwrap_or(f64::INFINITY),
                    b.quality,
                    b.degraded_reason,
                    false,
                )
            }
        };
        let latency = start.elapsed();
        self.stats.record_estimate(latency, cached);
        self.stats.record_quality(quality, reason, latency);
        let estimate = Estimate {
            selectivity,
            error,
            cardinality: cardinality_of(snapshot, query, selectivity),
            epoch: snapshot.epoch,
            cached,
            quality,
            degraded_reason: reason,
            upper_bound: snapshot.bound.upper_bound(query),
        };
        self.observe(&estimate, latency);
        estimate
    }

    /// Recovery after a request panicked against `snapshot`: quarantine
    /// its cache (the dying estimator may have left it half-written), and
    /// — if that snapshot is still current — install a replacement with
    /// the same catalogs and a cold cache. The epoch check under the
    /// write lock makes concurrent recoveries idempotent: only the first
    /// panic against a given epoch installs; later ones see a newer epoch
    /// and return.
    fn recover_after_panic(&self, snapshot: &CatalogSnapshot) {
        snapshot.cache.quarantine();
        self.stats.record_quarantine();
        self.metrics.quarantine();
        let mut current = self.current.write();
        if current.epoch != snapshot.epoch {
            return;
        }
        let replacement = Arc::new(CatalogSnapshot {
            db: Arc::clone(&snapshot.db),
            sits: snapshot.sits.clone(),
            sit2: snapshot.sit2.clone(),
            cache: ShardedCache::new(
                self.config.cache_shards,
                self.config.cache_capacity_per_shard,
            ),
            epoch: current.epoch + 1,
            bound: Arc::clone(&snapshot.bound),
            backend: Arc::clone(&snapshot.backend),
        });
        *current = replacement;
        drop(current);
        self.stats.record_install();
    }
}

/// `selectivity × |cartesian product|`; infinite if the product overflows.
fn cardinality_of(snapshot: &CatalogSnapshot, query: &SpjQuery, selectivity: f64) -> f64 {
    match query.cross_product_size(&snapshot.db) {
        Ok(cross) => selectivity * cross as f64,
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Predicate, TableId};

    fn small_db() -> Arc<Database> {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 3, 3, 3])
                .column("x", vec![10, 10, 20, 30, 30, 40])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 20, 20, 30, 50])
                .column("b", vec![1, 2, 2, 3, 3])
                .build()
                .unwrap(),
        );
        Arc::new(db)
    }

    fn join() -> Predicate {
        Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0))
    }

    fn filter(v: i64) -> Predicate {
        Predicate::filter(ColRef::new(TableId(0), 0), CmpOp::Eq, v)
    }

    fn query(v: i64) -> SpjQuery {
        SpjQuery::from_predicates(vec![join(), filter(v)]).unwrap()
    }

    fn service(db: &Arc<Database>) -> EstimationService {
        let workload = vec![query(1)];
        let catalog = sqe_core::build_pool(db, &workload, PoolSpec::ji(1)).expect("pool build");
        EstimationService::new(Arc::clone(db), catalog, ServiceConfig::default())
    }

    #[test]
    fn estimate_matches_fresh_estimator() {
        let db = small_db();
        let svc = service(&db);
        let q = query(1);
        let got = svc.estimate(&q);
        let snap = svc.snapshot();
        let mut fresh = SelectivityEstimator::new(&db, &q, snap.sits(), svc.config().mode);
        assert_eq!(got.selectivity.to_bits(), fresh.selectivity().to_bits());
        assert!(!got.cached);
    }

    #[test]
    fn repeat_estimates_hit_the_query_cache_bit_identically() {
        let db = small_db();
        let svc = service(&db);
        let q = query(3);
        let cold = svc.estimate(&q);
        let warm = svc.estimate(&q);
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(cold.selectivity.to_bits(), warm.selectivity.to_bits());
        assert_eq!(cold.error.to_bits(), warm.error.to_bits());
        assert_eq!(svc.stats().query_cache_hits, 1);
    }

    #[test]
    fn install_bumps_epoch_and_resets_cache_without_breaking_held_snapshots() {
        let db = small_db();
        let svc = service(&db);
        let held = svc.snapshot();
        let q = query(1);
        svc.estimate(&q);
        assert!(!svc.snapshot().cache().is_empty());

        let workload = vec![query(1)];
        let catalog = sqe_core::build_pool(&db, &workload, PoolSpec::ji(1)).unwrap();
        svc.install(catalog, None);

        assert_eq!(held.epoch(), 0, "held snapshot untouched");
        let now = svc.snapshot();
        assert_eq!(now.epoch(), 1);
        assert!(now.cache().is_empty(), "new snapshot starts cold");
        assert_eq!(svc.estimate(&q).epoch, 1);
        assert_eq!(svc.stats().installs, 1);
    }

    #[test]
    fn partial_install_carries_untouched_cache_and_drops_touched() {
        let db = small_db();
        let svc = service(&db);
        let q = query(1);
        svc.estimate(&q);
        assert!(!svc.snapshot().cache().is_empty());

        // An ingest touching no tables and refreshing no SITs carries the
        // whole cache across: the repeat estimate still hits.
        let snap = svc.snapshot();
        let out = svc.partial_install(
            Arc::clone(&db),
            snap.sits().clone(),
            None,
            &IngestReport::default(),
        );
        assert_eq!(out.epoch, 1);
        assert_eq!(out.cache_dropped, 0);
        assert!(out.cache_carried > 0);
        let warm = svc.estimate(&q);
        assert!(warm.cached, "query entry survived the partial install");
        assert_eq!(warm.epoch, 1);

        // Touching table 0 invalidates every key reading it — the repeat
        // estimate recomputes.
        let report = IngestReport {
            tables_touched: vec![TableId(0)],
            ..IngestReport::default()
        };
        let out = svc.partial_install(
            Arc::clone(&db),
            svc.snapshot().sits().clone(),
            None,
            &report,
        );
        assert_eq!(out.epoch, 2);
        assert!(out.cache_dropped > 0);
        assert!(!svc.estimate(&q).cached);

        let stats = svc.stats();
        assert_eq!(stats.installs, 2, "partial installs count as installs");
        assert_eq!(stats.ingest.partial_installs, 2);
        assert_eq!(stats.ingest.cache_dropped, out.cache_dropped);
    }

    #[test]
    fn racing_installs_publish_distinct_increasing_epochs() {
        // Regression: install() used to read the epoch under a read lock
        // and swap under a separate write lock, so two racing installs
        // could both publish `epoch + 1`. Epoch now advances under the one
        // write lock that swaps the snapshot.
        let db = small_db();
        let svc = service(&db);
        let catalog = svc.snapshot().sits().clone();
        let svc = &svc;
        std::thread::scope(|s| {
            for i in 0..8 {
                let catalog = catalog.clone();
                let db = Arc::clone(&db);
                s.spawn(move || {
                    if i % 2 == 0 {
                        svc.install(catalog, None);
                    } else {
                        svc.partial_install(db, catalog, None, &IngestReport::default());
                    }
                });
            }
        });
        assert_eq!(svc.snapshot().epoch(), 8, "every install got its own epoch");
        assert_eq!(svc.stats().installs, 8);
    }

    #[test]
    fn rebuild_pool_swaps_in_a_freshly_built_catalog() {
        let db = small_db();
        let svc = service(&db);
        let before = svc.snapshot().sits().len();
        svc.rebuild_pool(&[query(1)], PoolSpec::ji(1), SitOptions::default())
            .unwrap();
        let snap = svc.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.sits().len(), before, "same workload, same pool");
    }

    #[test]
    fn batch_answers_from_one_epoch() {
        let db = small_db();
        let svc = service(&db);
        let queries: Vec<_> = (1..=3).map(query).collect();
        let estimates = svc.estimate_batch(&queries);
        assert_eq!(estimates.len(), 3);
        assert!(estimates.iter().all(|e| e.epoch == 0));
        assert_eq!(svc.stats().batches, 1);
        assert_eq!(svc.stats().estimates, 3);
    }

    #[test]
    fn cardinality_scales_selectivity_by_cross_product() {
        let db = small_db();
        let svc = service(&db);
        let q = query(1);
        let e = svc.estimate(&q);
        let cross = q.cross_product_size(&db).unwrap() as f64;
        assert_eq!(e.cardinality.to_bits(), (e.selectivity * cross).to_bits());
    }

    #[test]
    fn unlimited_budget_is_full_quality_and_bit_identical() {
        let db = small_db();
        let svc = service(&db);
        let q = query(1);
        let plain = svc.estimate(&q);
        // Fresh service so the query cache is cold for the budgeted path.
        let svc2 = service(&db);
        let budgeted = svc2
            .estimate_with_budget(&q, &Budget::unlimited())
            .expect("admitted");
        assert_eq!(budgeted.quality, Quality::Full);
        assert_eq!(budgeted.degraded_reason, None);
        assert!(!budgeted.cached);
        assert_eq!(budgeted.selectivity.to_bits(), plain.selectivity.to_bits());
        assert_eq!(budgeted.error.to_bits(), plain.error.to_bits());
        assert_eq!(svc2.stats().quality_count(Quality::Full), 1);
    }

    #[test]
    fn budgeted_full_answers_populate_and_hit_the_query_cache() {
        let db = small_db();
        let svc = service(&db);
        let q = query(2);
        let cold = svc
            .estimate_with_budget(&q, &Budget::unlimited())
            .expect("admitted");
        let warm = svc
            .estimate_with_budget(&q, &Budget::unlimited())
            .expect("admitted");
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(warm.quality, Quality::Full);
        assert_eq!(cold.selectivity.to_bits(), warm.selectivity.to_bits());
    }

    #[test]
    fn cancelled_budget_degrades_with_an_honest_label() {
        let db = small_db();
        let svc = service(&db);
        let cancel = sqe_core::CancelToken::new();
        cancel.cancel();
        let budget = Budget::unlimited().with_cancel(cancel);
        let e = svc
            .estimate_with_budget(&query(1), &budget)
            .expect("admitted");
        assert_eq!(e.quality, Quality::Independence);
        assert_eq!(e.degraded_reason, Some(DegradeReason::Cancelled));
        assert!(e.selectivity.is_finite());
        assert!(e.error.is_infinite(), "no error model below the DP rungs");
        let stats = svc.stats();
        assert_eq!(stats.quality_count(Quality::Independence), 1);
        assert_eq!(stats.degraded_by(DegradeReason::Cancelled), 1);
    }

    #[test]
    fn admission_sheds_when_at_capacity() {
        let db = small_db();
        let workload = vec![query(1)];
        let catalog = sqe_core::build_pool(&db, &workload, PoolSpec::ji(1)).unwrap();
        let svc = EstimationService::new(
            Arc::clone(&db),
            catalog,
            ServiceConfig {
                max_in_flight: 1,
                ..ServiceConfig::default()
            },
        );
        // Saturate the single slot directly (the permit type is private to
        // the crate, so tests reach through the field).
        let permit = svc.admission.try_acquire().expect("free");
        let err = svc
            .estimate_with_budget(&query(1), &Budget::unlimited())
            .expect_err("must shed");
        let ServiceError::Overloaded {
            in_flight,
            retry_after,
        } = err;
        assert_eq!(in_flight, 1);
        assert!(retry_after >= Duration::from_millis(1));
        assert!(retry_after <= Duration::from_secs(1));
        assert_eq!(svc.stats().sheds, 1);
        drop(permit);
        assert!(svc
            .estimate_with_budget(&query(1), &Budget::unlimited())
            .is_ok());
    }

    #[test]
    fn panicking_estimate_is_isolated_and_recovers() {
        let _g = sqe_core::failpoint::test_serial_guard();
        sqe_core::failpoint::disarm_all();
        let db = small_db();
        let svc = service(&db);
        let q = query(1);
        let epoch0 = svc.snapshot().epoch();
        sqe_core::failpoint::arm("dp::solve_mask", sqe_core::failpoint::Action::Panic);
        let held = svc.snapshot();
        let e = svc
            .estimate_with_budget(&q, &Budget::unlimited())
            .expect("panic is isolated, not propagated");
        sqe_core::failpoint::disarm_all();

        assert_eq!(e.quality, Quality::Independence);
        assert_eq!(e.degraded_reason, Some(DegradeReason::Panic));
        assert!(e.selectivity.is_finite());
        assert!(held.cache().is_quarantined(), "panicked snapshot poisoned");

        let now = svc.snapshot();
        assert_eq!(now.epoch(), epoch0 + 1, "fresh snapshot installed");
        assert!(!now.cache().is_quarantined());
        let stats = svc.stats();
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.degraded_by(DegradeReason::Panic), 1);

        // Service keeps working at full quality afterwards.
        let after = svc
            .estimate_with_budget(&q, &Budget::unlimited())
            .expect("admitted");
        assert_eq!(after.quality, Quality::Full);
        assert_eq!(after.epoch, epoch0 + 1);
        assert_eq!(
            svc.admission.in_flight(),
            0,
            "permit released on unwind path"
        );
    }

    #[test]
    fn budgeted_batch_answers_every_query_from_one_epoch() {
        let db = small_db();
        let svc = service(&db);
        let queries: Vec<_> = (1..=4).map(query).collect();
        let estimates = svc
            .estimate_batch_with_budget(&queries, &Budget::unlimited())
            .expect("admitted");
        assert_eq!(estimates.len(), 4);
        assert!(estimates.iter().all(|e| e.epoch == 0));
        assert!(estimates.iter().all(|e| e.quality == Quality::Full));
        // Matches the unbudgeted batch bit-for-bit.
        let plain = svc.estimate_batch(&queries);
        for (b, p) in estimates.iter().zip(&plain) {
            assert_eq!(b.selectivity.to_bits(), p.selectivity.to_bits());
        }
    }
}

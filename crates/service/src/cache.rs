//! The sharded bounded cross-query cache behind [`crate::EstimationService`].
//!
//! One [`ShardedCache`] serves every estimator running against a catalog
//! snapshot. Keys are spread across a power-of-two number of shards by
//! hash, each shard a [`parking_lot::Mutex`] around three bounded
//! [`LruMap`]s (conditional links, SIT-pair join selectivities, and `H3`
//! histogram products), so concurrent estimators contend only when their
//! keys land on the same shard. Hit/miss/insert/evict counters are relaxed
//! atomics — they are monitoring data, not synchronization.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use sqe_core::{CacheKey, SharedEstimatorCache, SitId};
use sqe_engine::TableId;
use sqe_histogram::Histogram;

use crate::lru::LruMap;

/// Whole-query results cached by the service itself (not the trait): the
/// final `(selectivity, error)` of an estimate.
pub(crate) type QueryResult = (f64, f64);

/// One shard's maps, all bounded by the same per-shard capacity.
struct Shard {
    /// Conditional-factor results `Sel(P'|Q) -> (selectivity, error)`.
    links: LruMap<CacheKey, (f64, f64)>,
    /// Whole-query results, keyed by order-preserving query keys.
    queries: LruMap<CacheKey, QueryResult>,
    /// SIT-pair join selectivities.
    joins: LruMap<(SitId, SitId), f64>,
    /// SIT-pair `H3` products: result histogram + divergence.
    h3: LruMap<(SitId, SitId), (Histogram, f64)>,
}

/// A sharded, bounded, internally synchronized estimator cache.
///
/// Implements [`SharedEstimatorCache`] for the estimator's link/join/`H3`
/// traffic and additionally caches whole-query results for
/// [`crate::EstimationService::estimate`]. Lives inside a
/// [`crate::CatalogSnapshot`] so its [`SitId`]-keyed entries can never
/// outlive the catalog that defines them.
pub struct ShardedCache {
    shards: Box<[Mutex<Shard>]>,
    /// Fixed hasher so one key always maps to one shard.
    hasher: RandomState,
    mask: usize,
    /// Set when a request panicked mid-estimate against this snapshot:
    /// the cache can no longer prove which writes the dying estimator
    /// completed, so every lookup misses and every insert is dropped
    /// until the snapshot is replaced. `parking_lot` mutexes do not
    /// poison, so this flag is the snapshot's poison channel.
    quarantined: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// A cache of `shards` shards (rounded up to a power of two, at least
    /// one) holding at most `capacity_per_shard` entries in each of its
    /// per-shard maps.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards = (0..count)
            .map(|_| {
                Mutex::new(Shard {
                    links: LruMap::new(capacity_per_shard),
                    queries: LruMap::new(capacity_per_shard),
                    joins: LruMap::new(capacity_per_shard),
                    h3: LruMap::new(capacity_per_shard),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedCache {
            shards,
            hasher: RandomState::new(),
            mask: count - 1,
            quarantined: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A fresh cache pre-warmed with every entry of `old` that a partial
    /// catalog install provably keeps valid:
    ///
    /// * link and whole-query entries survive unless their key
    ///   [`CacheKey::touches`] a mutated table;
    /// * join and `H3` entries survive unless either [`SitId`] of their
    ///   pair is in `stale_sits` — the SITs whose histogram this install
    ///   replaced, whether by full rebuild or incremental merge (a stale
    ///   id names a *new* histogram — its old products are invalid even
    ///   though the id itself is stable).
    ///
    /// A quarantined `old` carries nothing: quarantine means provenance
    /// was lost, and carrying would launder unproven entries into a clean
    /// snapshot. Entries replay cold-to-hot per shard so recency survives;
    /// counters start at zero (they are per-snapshot monitoring state) and
    /// the returned [`CarryStats`] reports the carried/dropped split.
    pub fn carry_from(
        shards: usize,
        capacity_per_shard: usize,
        old: &ShardedCache,
        touched_tables: &[TableId],
        stale_sits: &[SitId],
    ) -> (Self, CarryStats) {
        let new = ShardedCache::new(shards, capacity_per_shard);
        let mut stats = CarryStats::default();
        if old.is_quarantined() {
            stats.dropped = old.len() as u64;
            return (new, stats);
        }
        let pair_stale =
            |pair: &(SitId, SitId)| stale_sits.contains(&pair.0) || stale_sits.contains(&pair.1);
        for shard in old.shards.iter() {
            let shard = shard.lock();
            for (k, v) in shard.links.iter_lru() {
                if k.touches(touched_tables) {
                    stats.dropped += 1;
                } else {
                    new.shard_for(k).lock().links.insert(k.clone(), *v);
                    stats.carried += 1;
                }
            }
            for (k, v) in shard.queries.iter_lru() {
                if k.touches(touched_tables) {
                    stats.dropped += 1;
                } else {
                    new.shard_for(k).lock().queries.insert(k.clone(), *v);
                    stats.carried += 1;
                }
            }
            for (k, v) in shard.joins.iter_lru() {
                if pair_stale(k) {
                    stats.dropped += 1;
                } else {
                    new.shard_for(k).lock().joins.insert(*k, *v);
                    stats.carried += 1;
                }
            }
            for (k, v) in shard.h3.iter_lru() {
                if pair_stale(k) {
                    stats.dropped += 1;
                } else {
                    new.shard_for(k).lock().h3.insert(*k, v.clone());
                    stats.carried += 1;
                }
            }
        }
        (new, stats)
    }

    /// Total live entries across all shards and maps.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.links.len() + s.queries.len() + s.joins.len() + s.h3.len()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time hit/miss/insert/evict counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Poisons the whole cache after a panic escaped an estimator using
    /// it. Irreversible for this snapshot; the service installs a fresh
    /// snapshot (same catalogs, cold cache) to recover.
    pub fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Release);
    }

    /// Whether [`ShardedCache::quarantine`] has fired.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    fn shard_for<K: Hash>(&self, key: &K) -> &Mutex<Shard> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h & self.mask]
    }

    fn record<T>(&self, found: &Option<T>) {
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_insert(&self, evicted: bool) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cached whole-query result, if any.
    pub(crate) fn get_query(&self, key: &CacheKey) -> Option<QueryResult> {
        if self.is_quarantined() {
            return None;
        }
        let found = self.shard_for(key).lock().queries.get(key).copied();
        self.record(&found);
        found
    }

    /// Stores a whole-query result.
    pub(crate) fn put_query(&self, key: CacheKey, value: QueryResult) {
        sqe_core::failpoint::fire("service::cache_insert");
        if self.is_quarantined() {
            return;
        }
        let evicted = self.shard_for(&key).lock().queries.insert(key, value);
        self.record_insert(evicted);
    }
}

impl SharedEstimatorCache for ShardedCache {
    fn get_link(&self, key: &CacheKey) -> Option<(f64, f64)> {
        if self.is_quarantined() {
            return None;
        }
        let found = self.shard_for(key).lock().links.get(key).copied();
        self.record(&found);
        found
    }

    fn put_link(&self, key: CacheKey, value: (f64, f64)) {
        if self.is_quarantined() {
            return;
        }
        let evicted = self.shard_for(&key).lock().links.insert(key, value);
        self.record_insert(evicted);
    }

    fn get_join(&self, pair: (SitId, SitId)) -> Option<f64> {
        if self.is_quarantined() {
            return None;
        }
        let found = self.shard_for(&pair).lock().joins.get(&pair).copied();
        self.record(&found);
        found
    }

    fn put_join(&self, pair: (SitId, SitId), selectivity: f64) {
        if self.is_quarantined() {
            return;
        }
        let evicted = self.shard_for(&pair).lock().joins.insert(pair, selectivity);
        self.record_insert(evicted);
    }

    fn get_h3(&self, pair: (SitId, SitId)) -> Option<(Histogram, f64)> {
        if self.is_quarantined() {
            return None;
        }
        let found = self.shard_for(&pair).lock().h3.get(&pair).cloned();
        self.record(&found);
        found
    }

    fn put_h3(&self, pair: (SitId, SitId), value: (Histogram, f64)) {
        if self.is_quarantined() {
            return;
        }
        let evicted = self.shard_for(&pair).lock().h3.insert(pair, value);
        self.record_insert(evicted);
    }
}

/// What a [`ShardedCache::carry_from`] kept and shed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarryStats {
    /// Entries carried into the new cache.
    pub carried: u64,
    /// Entries invalidated by the install.
    pub dropped: u64,
}

/// Point-in-time cache counters (monotone, process lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values written (fresh or overwriting).
    pub insertions: u64,
    /// Entries displaced by a bounded map at capacity.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits as a fraction of lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_core::ErrorMode;
    use sqe_engine::{CmpOp, ColRef, Predicate, TableId};

    fn key(i: i64) -> CacheKey {
        let p = Predicate::filter(ColRef::new(TableId(0), 0), CmpOp::Eq, i);
        CacheKey::conditional(ErrorMode::NInd, &[p], &[])
    }

    #[test]
    fn round_trips_links_joins_and_h3() {
        let cache = ShardedCache::new(4, 64);
        let k = key(1);
        assert_eq!(cache.get_link(&k), None);
        cache.put_link(k.clone(), (0.25, 0.5));
        assert_eq!(cache.get_link(&k), Some((0.25, 0.5)));

        let pair = (SitId(3), SitId(7));
        assert_eq!(cache.get_join(pair), None);
        cache.put_join(pair, 0.125);
        assert_eq!(cache.get_join(pair), Some(0.125));

        assert!(cache.get_h3(pair).is_none());
        cache.put_h3(pair, (Histogram::default(), 0.75));
        assert_eq!(cache.get_h3(pair).unwrap().1, 0.75);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(ShardedCache::new(0, 8).shard_count(), 1);
        assert_eq!(ShardedCache::new(5, 8).shard_count(), 8);
        assert_eq!(ShardedCache::new(8, 8).shard_count(), 8);
    }

    #[test]
    fn counters_track_hits_misses_and_evictions() {
        let cache = ShardedCache::new(1, 2);
        assert_eq!(cache.get_link(&key(1)), None);
        cache.put_link(key(1), (0.1, 0.0));
        cache.put_link(key(2), (0.2, 0.0));
        cache.put_link(key(3), (0.3, 0.0)); // evicts key(1) from the single shard
        assert_eq!(cache.get_link(&key(1)), None);
        assert_eq!(cache.get_link(&key(3)), Some((0.3, 0.0)));
        let c = cache.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(c.insertions, 3);
        assert_eq!(c.evictions, 1);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn carry_from_filters_by_touched_tables_and_refreshed_sits() {
        let old = ShardedCache::new(2, 64);
        let t0 = |i| {
            let p = Predicate::filter(ColRef::new(TableId(0), 0), CmpOp::Eq, i);
            CacheKey::conditional(ErrorMode::NInd, &[p], &[])
        };
        let t1 = |i| {
            let p = Predicate::filter(ColRef::new(TableId(1), 0), CmpOp::Eq, i);
            CacheKey::conditional(ErrorMode::NInd, &[p], &[])
        };
        old.put_link(t0(1), (0.1, 0.0));
        old.put_link(t1(1), (0.2, 0.0));
        old.put_query(t1(2), (0.3, 0.0));
        old.put_join((SitId(0), SitId(1)), 0.5);
        old.put_join((SitId(2), SitId(3)), 0.6);
        old.put_h3((SitId(0), SitId(2)), (Histogram::default(), 0.7));

        let (new, stats) = ShardedCache::carry_from(
            2,
            64,
            &old,
            &[TableId(0)], // table 0 mutated
            &[SitId(0)],   // SIT 0 refreshed
        );
        // t0 link dropped; SIT-0 join and h3 dropped.
        assert_eq!(stats.carried, 3);
        assert_eq!(stats.dropped, 3);
        assert_eq!(new.get_link(&t0(1)), None);
        assert_eq!(new.get_link(&t1(1)), Some((0.2, 0.0)));
        assert_eq!(new.get_query(&t1(2)), Some((0.3, 0.0)));
        assert_eq!(new.get_join((SitId(0), SitId(1))), None);
        assert_eq!(new.get_join((SitId(2), SitId(3))), Some(0.6));
        assert!(new.get_h3((SitId(0), SitId(2))).is_none());
    }

    #[test]
    fn carry_from_a_quarantined_cache_carries_nothing() {
        let old = ShardedCache::new(1, 8);
        old.put_link(key(1), (0.1, 0.0));
        old.quarantine();
        let (new, stats) = ShardedCache::carry_from(1, 8, &old, &[], &[]);
        assert_eq!(stats.carried, 0);
        assert_eq!(stats.dropped, 1);
        assert!(new.is_empty());
        assert!(!new.is_quarantined());
    }

    #[test]
    fn concurrent_writers_and_readers_agree() {
        let cache = ShardedCache::new(8, 1024);
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..200 {
                        let k = key(t * 1000 + i);
                        cache.put_link(k.clone(), (i as f64, t as f64));
                        assert_eq!(cache.get_link(&k), Some((i as f64, t as f64)));
                    }
                });
            }
        });
        assert_eq!(cache.counters().insertions, 1600);
    }
}

//! Service-level metrics: relaxed atomic counters plus a power-of-two
//! latency histogram, cheap enough to update on every estimate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sqe_core::{DegradeReason, Quality};

use crate::cache::CacheCounters;

/// Number of latency buckets. Bucket `i` counts estimates with latency in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1 µs`); the last bucket
/// absorbs everything slower.
pub const LATENCY_BUCKETS: usize = 16;

/// Number of quality tiers ([`Quality::ALL`]).
pub const QUALITY_TIERS: usize = Quality::ALL.len();

/// Index of a tier in the per-quality arrays (worst-to-best order).
fn quality_idx(q: Quality) -> usize {
    Quality::ALL
        .iter()
        .position(|&t| t == q)
        .expect("tier in ALL")
}

/// Index of a degrade reason in the outcome array.
fn reason_idx(r: DegradeReason) -> usize {
    match r {
        DegradeReason::Deadline => 0,
        DegradeReason::WorkQuota => 1,
        DegradeReason::Cancelled => 2,
        DegradeReason::Panic => 3,
    }
}

/// Internal mutable counters (all relaxed: monitoring, not coordination).
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    estimates: AtomicU64,
    batches: AtomicU64,
    query_cache_hits: AtomicU64,
    installs: AtomicU64,
    total_latency_ns: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
    /// Budgeted answers per quality tier (index = [`Quality::ALL`] order).
    quality_counts: [AtomicU64; QUALITY_TIERS],
    /// Summed latency per quality tier.
    quality_latency_ns: [AtomicU64; QUALITY_TIERS],
    /// Degraded answers per [`DegradeReason`]
    /// (deadline / work-quota / cancelled / panic).
    degrade_reasons: [AtomicU64; 4],
    /// Requests refused by admission control.
    sheds: AtomicU64,
    /// Requests whose estimator panicked and was isolated; each also
    /// quarantines its snapshot's cache.
    quarantines: AtomicU64,
    /// Partial snapshot installs (delta-ingest publishes).
    partial_installs: AtomicU64,
    /// Delta batches published through partial installs.
    ingest_batches: AtomicU64,
    /// Row ops covered by those batches.
    ingest_ops: AtomicU64,
    /// SITs rebuilt (drift- or staleness-triggered) across all ingests.
    sits_refreshed: AtomicU64,
    /// Cache entries carried across partial installs.
    cache_carried: AtomicU64,
    /// Cache entries invalidated by partial installs.
    cache_dropped: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn record_estimate(&self, latency: Duration, query_cache_hit: bool) {
        self.estimates.fetch_add(1, Ordering::Relaxed);
        if query_cache_hit {
            self.query_cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.total_latency_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_install(&self) {
        self.installs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_partial_install(
        &self,
        ops: u64,
        refreshed: u64,
        carried: u64,
        dropped: u64,
    ) {
        self.installs.fetch_add(1, Ordering::Relaxed);
        self.partial_installs.fetch_add(1, Ordering::Relaxed);
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_ops.fetch_add(ops, Ordering::Relaxed);
        self.sits_refreshed.fetch_add(refreshed, Ordering::Relaxed);
        self.cache_carried.fetch_add(carried, Ordering::Relaxed);
        self.cache_dropped.fetch_add(dropped, Ordering::Relaxed);
    }

    pub(crate) fn record_quality(
        &self,
        quality: Quality,
        reason: Option<DegradeReason>,
        latency: Duration,
    ) {
        let i = quality_idx(quality);
        self.quality_counts[i].fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.quality_latency_ns[i].fetch_add(ns, Ordering::Relaxed);
        if let Some(r) = reason {
            self.degrade_reasons[reason_idx(r)].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean latency over everything served so far — the load-shed
    /// retry-after hint. Zero when nothing was served yet.
    pub(crate) fn mean_latency_hint(&self) -> Duration {
        self.total_latency_ns
            .load(Ordering::Relaxed)
            .checked_div(self.estimates.load(Ordering::Relaxed))
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    pub(crate) fn record_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, cache: CacheCounters) -> ServiceStatsSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        fn load<const N: usize>(arr: &[AtomicU64; N]) -> [u64; N] {
            let mut out = [0u64; N];
            for (o, a) in out.iter_mut().zip(arr) {
                *o = a.load(Ordering::Relaxed);
            }
            out
        }
        ServiceStatsSnapshot {
            estimates: self.estimates.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            query_cache_hits: self.query_cache_hits.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            total_latency_ns: self.total_latency_ns.load(Ordering::Relaxed),
            latency_buckets: buckets,
            quality_counts: load(&self.quality_counts),
            quality_latency_ns: load(&self.quality_latency_ns),
            degrade_reasons: load(&self.degrade_reasons),
            sheds: self.sheds.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            ingest: IngestCounters {
                partial_installs: self.partial_installs.load(Ordering::Relaxed),
                batches: self.ingest_batches.load(Ordering::Relaxed),
                ops: self.ingest_ops.load(Ordering::Relaxed),
                sits_refreshed: self.sits_refreshed.load(Ordering::Relaxed),
                cache_carried: self.cache_carried.load(Ordering::Relaxed),
                cache_dropped: self.cache_dropped.load(Ordering::Relaxed),
            },
            cache,
        }
    }
}

/// Point-in-time delta-ingest counters (partial snapshot installs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestCounters {
    /// Partial snapshot installs published.
    pub partial_installs: u64,
    /// Delta batches those installs covered.
    pub batches: u64,
    /// Row ops those batches applied.
    pub ops: u64,
    /// SITs rebuilt across all ingests.
    pub sits_refreshed: u64,
    /// Cache entries carried across partial installs.
    pub cache_carried: u64,
    /// Cache entries invalidated by partial installs.
    pub cache_dropped: u64,
}

/// Bucket index for a latency in nanoseconds.
fn bucket_of(ns: u64) -> usize {
    let us = ns / 1_000;
    let idx = (u64::BITS - us.leading_zeros()) as usize;
    idx.min(LATENCY_BUCKETS - 1)
}

/// Point-in-time service metrics, as returned by
/// [`crate::EstimationService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Estimates served (cache hits included).
    pub estimates: u64,
    /// `estimate_batch` calls served.
    pub batches: u64,
    /// Estimates answered entirely from the whole-query cache.
    pub query_cache_hits: u64,
    /// Catalog snapshots installed after the initial one.
    pub installs: u64,
    /// Sum of per-estimate latencies.
    pub total_latency_ns: u64,
    /// Power-of-two latency histogram; bucket `i` counts estimates in
    /// `[2^(i-1), 2^i)` µs, last bucket is unbounded above.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Budgeted answers per quality tier, indexed in [`Quality::ALL`]
    /// order (worst-to-best: independence, greedy, pruned, beam, full).
    pub quality_counts: [u64; QUALITY_TIERS],
    /// Summed latency per quality tier (same indexing).
    pub quality_latency_ns: [u64; QUALITY_TIERS],
    /// Degraded answers per reason: deadline, work-quota, cancelled,
    /// panic.
    pub degrade_reasons: [u64; 4],
    /// Requests refused by admission control (load shed).
    pub sheds: u64,
    /// Panicking requests isolated; each quarantined a snapshot cache.
    pub quarantines: u64,
    /// Delta-ingest counters (partial snapshot installs).
    pub ingest: IngestCounters,
    /// Counters of the *current* snapshot's sharded cache (reset on every
    /// install, since the cache is per snapshot).
    pub cache: CacheCounters,
}

impl ServiceStatsSnapshot {
    /// Mean estimate latency; zero when nothing was served.
    pub fn mean_latency(&self) -> Duration {
        self.total_latency_ns
            .checked_div(self.estimates)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Budgeted answers for one quality tier.
    pub fn quality_count(&self, q: Quality) -> u64 {
        self.quality_counts[quality_idx(q)]
    }

    /// Mean latency of answers in one quality tier; zero when none.
    pub fn quality_mean_latency(&self, q: Quality) -> Duration {
        let i = quality_idx(q);
        self.quality_latency_ns[i]
            .checked_div(self.quality_counts[i])
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Degraded answers attributed to one reason.
    pub fn degraded_by(&self, r: DegradeReason) -> u64 {
        self.degrade_reasons[reason_idx(r)]
    }
}

impl fmt::Display for ServiceStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "estimates: {} ({} query-cache hits), batches: {}, installs: {}",
            self.estimates, self.query_cache_hits, self.batches, self.installs
        )?;
        writeln!(f, "mean latency: {:?}", self.mean_latency())?;
        if self.quality_counts.iter().any(|&n| n > 0) || self.sheds > 0 || self.quarantines > 0 {
            write!(f, "budgeted:")?;
            for q in Quality::ALL.iter().rev() {
                let n = self.quality_count(*q);
                if n > 0 {
                    write!(
                        f,
                        " {}={} ({:?})",
                        q.label(),
                        n,
                        self.quality_mean_latency(*q)
                    )?;
                }
            }
            writeln!(f, " sheds={} quarantines={}", self.sheds, self.quarantines)?;
        }
        if self.ingest.partial_installs > 0 {
            writeln!(
                f,
                "ingest: {} partial installs ({} batches, {} ops), {} SIT refreshes, \
                 cache carried {} / dropped {}",
                self.ingest.partial_installs,
                self.ingest.batches,
                self.ingest.ops,
                self.ingest.sits_refreshed,
                self.ingest.cache_carried,
                self.ingest.cache_dropped
            )?;
        }
        writeln!(
            f,
            "shared cache: {} hits / {} misses ({:.1}% hit rate), {} insertions, {} evictions",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions
        )?;
        write!(f, "latency histogram (µs):")?;
        for (i, &n) in self.latency_buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if i + 1 == LATENCY_BUCKETS {
                write!(f, " [>={}: {}]", 1u64 << (i - 1), n)?;
            } else if i == 0 {
                write!(f, " [<1: {n}]")?;
            } else {
                write!(f, " [{}-{}: {}]", 1u64 << (i - 1), 1u64 << i, n)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_of_microseconds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(999), 0); // sub-microsecond
        assert_eq!(bucket_of(1_000), 1); // 1 µs
        assert_eq!(bucket_of(1_999), 1);
        assert_eq!(bucket_of(2_000), 2);
        assert_eq!(bucket_of(1_000_000), 10); // 1 ms = 1000 µs -> [512, 1024)
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reports_means_and_hits() {
        let s = ServiceStats::default();
        s.record_estimate(Duration::from_micros(10), false);
        s.record_estimate(Duration::from_micros(30), true);
        s.record_batch();
        let snap = s.snapshot(CacheCounters {
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        });
        assert_eq!(snap.estimates, 2);
        assert_eq!(snap.query_cache_hits, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.mean_latency(), Duration::from_micros(20));
        assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 2);
        // Display must not panic and must mention the headline counter.
        assert!(snap.to_string().contains("estimates: 2"));
    }
}

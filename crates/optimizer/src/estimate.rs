//! Coupling `getSelectivity` with the memo (§4.2).
//!
//! Every memo entry `E` in the group for `Sel_R(P)` splits `P` into (i) its
//! own parameters `p_E` and (ii) the predicates `Q_E = P − p_E` contributed
//! by its inputs, inducing the atomic decomposition
//!
//! ```text
//! Sel_R(P) = Sel_R(p_E | Q_E) · Sel_R(Q_E)
//! ```
//!
//! `Sel(p_E|Q_E)` is approximated with the best available SITs (reusing the
//! core estimator's factor machinery, which in a production system would be
//! the optimizer's view-matching subroutine); `Sel(Q_E)` is the product of
//! the *input groups'* current estimates, which for every operator is
//! separable into per-input factors (§4.2's closing observation). Each
//! group keeps the most accurate alternative seen so far, so the set of
//! decompositions explored is exactly the set of entries the optimizer's
//! own search creates — a pruned, nearly-free approximation of the full
//! `getSelectivity` search.

use std::collections::HashMap;

use sqe_core::{ErrorMode, PredSet, SelectivityEstimator, SitCatalog};
use sqe_engine::{Database, SpjQuery};

use crate::memo::{GroupId, Memo};

/// Per-group estimation state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEstimate {
    /// Estimated selectivity of the group's predicate set.
    pub selectivity: f64,
    /// Estimated error (same scale as the core error functions).
    pub error: f64,
    /// Estimated output cardinality.
    pub cardinality: f64,
}

/// Memo-coupled selectivity estimation.
pub struct MemoEstimator<'a> {
    inner: SelectivityEstimator<'a>,
    estimates: HashMap<GroupId, GroupEstimate>,
}

impl<'a> MemoEstimator<'a> {
    /// Creates the coupled estimator for one query.
    pub fn new(
        db: &'a Database,
        query: &SpjQuery,
        catalog: &'a SitCatalog,
        mode: ErrorMode,
    ) -> Self {
        MemoEstimator {
            inner: SelectivityEstimator::new(db, query, catalog, mode),
            estimates: HashMap::new(),
        }
    }

    /// Estimates every group of the memo, processing entries bottom-up and
    /// keeping, per group, the most accurate decomposition induced by its
    /// entries. Iterates to fixpoint (new entries from later exploration
    /// rounds can be folded in by calling this again).
    pub fn estimate_memo(&mut self, memo: &Memo) {
        // Bottom-up: iterate until every group has an estimate and no
        // estimate improves. Group graphs are acyclic, so this terminates
        // in at most `group_count` rounds; in practice 2–3.
        let ids: Vec<GroupId> = memo.group_ids().collect();
        loop {
            let mut changed = false;
            for &gid in &ids {
                let group = memo.group(gid);
                for entry in &group.entries {
                    let inputs = entry.op.inputs();
                    // All inputs must be estimated first.
                    let input_est: Option<Vec<GroupEstimate>> = inputs
                        .iter()
                        .map(|g| self.estimates.get(g).copied())
                        .collect();
                    let Some(input_est) = input_est else {
                        continue;
                    };
                    let (sel_q, err_q) = input_est
                        .iter()
                        .fold((1.0, 0.0), |(s, e), g| (s * g.selectivity, e + g.error));
                    let (sel, err) = match entry.op.own_pred() {
                        None => (1.0, 0.0),
                        Some(p) => {
                            let q_e = group.preds.minus(PredSet::singleton(p));
                            self.inner.conditional_factor(PredSet::singleton(p), q_e)
                        }
                    };
                    let candidate = GroupEstimate {
                        selectivity: (sel * sel_q).clamp(0.0, 1.0),
                        error: err + err_q,
                        cardinality: 0.0,
                    };
                    let better = match self.estimates.get(&gid) {
                        None => true,
                        Some(cur) => candidate.error < cur.error,
                    };
                    if better {
                        self.estimates.insert(gid, candidate);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Fill cardinalities.
        for &gid in &ids {
            if let Some(est) = self.estimates.get(&gid).copied() {
                let group = memo.group(gid);
                let card = est.selectivity * cross_product_of_mask(memo, group.table_mask) as f64;
                self.estimates.insert(
                    gid,
                    GroupEstimate {
                        cardinality: card,
                        ..est
                    },
                );
            }
        }
    }

    /// The estimate for a group, if computed.
    pub fn group_estimate(&self, id: GroupId) -> Option<GroupEstimate> {
        self.estimates.get(&id).copied()
    }

    /// The full (uncoupled) `getSelectivity` answer for the same query —
    /// used to quantify what the memo-pruned search loses.
    pub fn full_get_selectivity(&mut self, p: PredSet) -> (f64, f64) {
        self.inner.get_selectivity(p)
    }

    /// Access to the inner estimator (for stats).
    pub fn inner(&self) -> &SelectivityEstimator<'a> {
        &self.inner
    }
}

/// Cross-product size of the tables in `mask` (group table slots align with
/// the context's table list).
fn cross_product_of_mask(memo: &Memo, mask: u32) -> u128 {
    memo.context().cross_product_of_table_mask(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::explore;
    use sqe_core::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CardinalityOracle, CmpOp, ColRef, Predicate, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .column("b", vec![1, 2, 3, 4, 5, 6])
                .build()
                .unwrap(),
        );
        db
    }

    fn catalog(db: &Database) -> SitCatalog {
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
            cat.add(Sit::build(db, col, vec![join]).unwrap());
        }
        cat
    }

    fn query(db: &Database) -> SpjQuery {
        let _ = db;
        SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        ])
        .unwrap()
    }

    #[test]
    fn every_group_gets_an_estimate() {
        let db = skewed_db();
        let q = query(&db);
        let cat = catalog(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.estimate_memo(&memo);
        for gid in memo.group_ids() {
            let e = est.group_estimate(gid).expect("group estimated");
            assert!((0.0..=1.0).contains(&e.selectivity), "{gid}: {e:?}");
            assert!(e.cardinality >= 0.0);
        }
    }

    #[test]
    fn coupled_estimate_fixes_skew_through_exploration() {
        // After filter pull-up, the root group contains the entry
        // σ_{a=1}(r ⋈ s) whose decomposition Sel(a=1|join)·Sel(join) uses
        // SIT(a|join) — the accurate alternative.
        let db = skewed_db();
        let q = query(&db);
        let cat = catalog(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.estimate_memo(&memo);
        let root = est.group_estimate(memo.root()).unwrap();
        let mut oracle = CardinalityOracle::new(&db);
        let truth = oracle.selectivity(&q.tables, &q.predicates).unwrap();
        assert!(
            (root.selectivity - truth).abs() < 0.05,
            "coupled estimate {} vs truth {truth}",
            root.selectivity
        );
    }

    #[test]
    fn repeated_estimation_is_idempotent() {
        let db = skewed_db();
        let q = query(&db);
        let cat = catalog(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        est.estimate_memo(&memo);
        let first = est.group_estimate(memo.root()).unwrap();
        est.estimate_memo(&memo);
        let second = est.group_estimate(memo.root()).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn estimates_are_monotone_under_more_exploration() {
        // More entries = more decompositions = the per-group error can only
        // stay equal or improve.
        let db = skewed_db();
        let q = query(&db);
        let cat = catalog(&db);
        let mut memo = Memo::new(&db, &q);
        let mut seed_est = MemoEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        seed_est.estimate_memo(&memo);
        let seed_err = seed_est.group_estimate(memo.root()).unwrap().error;
        explore(&mut memo);
        let mut full_est = MemoEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        full_est.estimate_memo(&memo);
        let full_err = full_est.group_estimate(memo.root()).unwrap().error;
        assert!(full_err <= seed_err + 1e-9, "{full_err} vs {seed_err}");
    }

    #[test]
    fn coupled_never_beats_full_search() {
        let db = skewed_db();
        let q = query(&db);
        let cat = catalog(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.estimate_memo(&memo);
        let root = est.group_estimate(memo.root()).unwrap();
        let all = memo.context().all();
        let (_, full_err) = est.full_get_selectivity(all);
        assert!(
            full_err <= root.error + 1e-9,
            "full search error {full_err} must be ≤ coupled {}",
            root.error
        );
    }
}

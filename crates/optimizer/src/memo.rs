//! The Cascades memo: equivalence groups of logical sub-plans (§4.1).

use std::collections::HashMap;
use std::fmt;

use sqe_core::{PredSet, QueryContext};
use sqe_engine::{Database, SpjQuery};

/// Identifier of a memo group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A logical operator entry `[op, {params}, {inputs}]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Scan of one base table (identified by its slot in the query's table
    /// list).
    Scan {
        /// Index into the query's (sorted) table list.
        table_slot: usize,
    },
    /// Filter: applies predicate `pred` to the input group.
    Select {
        /// Index of the filter predicate within the query.
        pred: usize,
        /// Input group.
        input: GroupId,
    },
    /// Join: applies join predicate `pred` across two input groups.
    Join {
        /// Index of the join predicate within the query.
        pred: usize,
        /// Left input.
        left: GroupId,
        /// Right input.
        right: GroupId,
    },
}

impl LogicalOp {
    /// The predicate this entry applies (`p_E` of §4.2), if any.
    pub fn own_pred(&self) -> Option<usize> {
        match *self {
            LogicalOp::Scan { .. } => None,
            LogicalOp::Select { pred, .. } | LogicalOp::Join { pred, .. } => Some(pred),
        }
    }

    /// Input groups.
    pub fn inputs(&self) -> Vec<GroupId> {
        match *self {
            LogicalOp::Scan { .. } => Vec::new(),
            LogicalOp::Select { input, .. } => vec![input],
            LogicalOp::Join { left, right, .. } => vec![left, right],
        }
    }
}

/// One alternative within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Entry {
    /// The logical operator.
    pub op: LogicalOp,
}

/// An equivalence class of sub-plans: all entries produce
/// `σ_preds(tables^×)`.
#[derive(Debug, Clone)]
pub struct Group {
    /// Bitmask over the query's table list.
    pub table_mask: u32,
    /// Predicates applied so far.
    pub preds: PredSet,
    /// Logically equivalent alternatives explored so far.
    pub entries: Vec<Entry>,
}

/// The memoization table of a Cascades-based optimizer.
#[derive(Debug, Clone)]
pub struct Memo {
    ctx: QueryContext,
    groups: Vec<Group>,
    index: HashMap<(u32, u32), GroupId>,
    root: GroupId,
}

impl Memo {
    /// Builds the memo for a query, seeded with a canonical initial plan:
    /// filters pushed onto scans, then a left-deep join tree in table
    /// order.
    pub fn new(db: &Database, query: &SpjQuery) -> Self {
        let ctx = QueryContext::new(db, query);
        let mut memo = Memo {
            ctx,
            groups: Vec::new(),
            index: HashMap::new(),
            root: GroupId(0),
        };
        memo.root = memo.seed(query);
        memo
    }

    /// The query context the memo is defined over.
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }

    /// The root group (the full query).
    pub fn root(&self) -> GroupId {
        self.root
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of entries across groups.
    pub fn entry_count(&self) -> usize {
        self.groups.iter().map(|g| g.entries.len()).sum()
    }

    /// The group with the given id.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    /// All group ids.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> {
        (0..self.groups.len() as u32).map(GroupId)
    }

    /// Finds or creates the group for `(table_mask, preds)`.
    pub fn intern_group(&mut self, table_mask: u32, preds: PredSet) -> GroupId {
        *self.index.entry((table_mask, preds.0)).or_insert_with(|| {
            let id = GroupId(self.groups.len() as u32);
            self.groups.push(Group {
                table_mask,
                preds,
                entries: Vec::new(),
            });
            id
        })
    }

    /// Adds an entry to a group unless structurally present. Returns true
    /// when the entry is new.
    pub fn add_entry(&mut self, group: GroupId, op: LogicalOp) -> bool {
        let entries = &mut self.groups[group.0 as usize].entries;
        if entries.iter().any(|e| e.op == op) {
            false
        } else {
            entries.push(Entry { op });
            true
        }
    }

    /// Seeds the memo with the canonical initial plan and returns the root
    /// group.
    fn seed(&mut self, query: &SpjQuery) -> GroupId {
        // 1. Scans, with single-table predicates pushed down on top.
        let n_tables = query.tables.len();
        let mut current: Vec<(u32, PredSet, GroupId)> = Vec::with_capacity(n_tables);
        for slot in 0..n_tables {
            let mask = 1u32 << slot;
            let scan = self.intern_group(mask, PredSet::EMPTY);
            self.add_entry(scan, LogicalOp::Scan { table_slot: slot });
            let mut top = (mask, PredSet::EMPTY, scan);
            for (i, _) in query.predicates.iter().enumerate() {
                if self.ctx.joins().contains(i) {
                    continue;
                }
                if self.ctx.table_mask(PredSet::singleton(i)) == mask {
                    let preds = top.1.union(PredSet::singleton(i));
                    let g = self.intern_group(mask, preds);
                    self.add_entry(
                        g,
                        LogicalOp::Select {
                            pred: i,
                            input: top.2,
                        },
                    );
                    top = (mask, preds, g);
                }
            }
            current.push(top);
        }

        // 2. Left-deep joins: repeatedly pick an unapplied join predicate
        //    connecting the accumulated plan to a new table (or within it).
        let mut remaining: Vec<usize> = self.ctx.joins().iter().collect();
        let (mut mask, mut preds, mut top) = current[0];
        let mut pending_tables: Vec<(u32, PredSet, GroupId)> = current[1..].to_vec();
        while !remaining.is_empty() {
            let pos = remaining
                .iter()
                .position(|&j| {
                    let jm = self.ctx.table_mask(PredSet::singleton(j));
                    jm & mask != 0
                })
                .unwrap_or(0);
            let j = remaining.remove(pos);
            let jm = self.ctx.table_mask(PredSet::singleton(j));
            let missing = jm & !mask;
            if missing == 0 {
                // Both sides already joined: model as a residual select.
                let new_preds = preds.union(PredSet::singleton(j));
                let g = self.intern_group(mask, new_preds);
                self.add_entry(
                    g,
                    LogicalOp::Select {
                        pred: j,
                        input: top,
                    },
                );
                preds = new_preds;
                top = g;
                continue;
            }
            // Bring in each missing table (tree schemas miss exactly one).
            for slot in 0..n_tables {
                if missing & (1 << slot) == 0 {
                    continue;
                }
                let idx = pending_tables
                    .iter()
                    .position(|&(m, _, _)| m == (1 << slot))
                    .expect("table not yet joined");
                let (rmask, rpreds, rgroup) = pending_tables.remove(idx);
                let new_mask = mask | rmask;
                let new_preds = preds.union(rpreds).union(PredSet::singleton(j));
                let g = self.intern_group(new_mask, new_preds);
                self.add_entry(
                    g,
                    LogicalOp::Join {
                        pred: j,
                        left: top,
                        right: rgroup,
                    },
                );
                mask = new_mask;
                preds = new_preds;
                top = g;
            }
        }

        // 3. Any tables never referenced by joins are cross products; the
        //    canonical queries of this reproduction do not produce them, but
        //    handle them as predicate-free joins... they cannot be expressed
        //    without a predicate, so assert instead.
        assert!(
            pending_tables.is_empty(),
            "disconnected queries are not supported by the mini optimizer"
        );
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Predicate, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db3() -> Database {
        let mut db = Database::new();
        for name in ["r", "s", "t"] {
            db.add_table(
                TableBuilder::new(name)
                    .column("a", vec![1, 2, 3])
                    .column("b", vec![1, 2, 3])
                    .build()
                    .unwrap(),
            );
        }
        db
    }

    fn query3(db: &Database) -> SpjQuery {
        let _ = db;
        SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 2),
            Predicate::filter(c(2, 1), CmpOp::Ge, 2),
        ])
        .unwrap()
    }

    #[test]
    fn seed_builds_root_with_all_predicates() {
        let db = db3();
        let q = query3(&db);
        let memo = Memo::new(&db, &q);
        let root = memo.group(memo.root());
        assert_eq!(root.preds, memo.context().all());
        assert_eq!(root.table_mask, 0b111);
        assert!(!root.entries.is_empty());
    }

    #[test]
    fn seed_creates_scan_and_filter_groups() {
        let db = db3();
        let q = query3(&db);
        let memo = Memo::new(&db, &q);
        // Scans for 3 tables + filtered variants for r and t + joins.
        assert!(memo.group_count() >= 7, "groups: {}", memo.group_count());
        let scans = memo
            .group_ids()
            .filter(|&g| {
                memo.group(g)
                    .entries
                    .iter()
                    .any(|e| matches!(e.op, LogicalOp::Scan { .. }))
            })
            .count();
        assert_eq!(scans, 3);
    }

    #[test]
    fn intern_group_is_idempotent() {
        let db = db3();
        let q = query3(&db);
        let mut memo = Memo::new(&db, &q);
        let before = memo.group_count();
        let a = memo.intern_group(0b1, PredSet::EMPTY);
        let b = memo.intern_group(0b1, PredSet::EMPTY);
        assert_eq!(a, b);
        assert_eq!(memo.group_count(), before);
    }

    #[test]
    fn duplicate_entries_are_rejected() {
        let db = db3();
        let q = query3(&db);
        let mut memo = Memo::new(&db, &q);
        let g = memo.intern_group(0b1, PredSet::EMPTY);
        let op = LogicalOp::Scan { table_slot: 0 };
        assert!(!memo.add_entry(g, op), "seed already added this scan");
        let fresh = memo.intern_group(0b10000, PredSet::EMPTY);
        assert!(memo.add_entry(fresh, LogicalOp::Scan { table_slot: 4 }));
    }

    #[test]
    fn entry_metadata_accessors() {
        let op = LogicalOp::Join {
            pred: 3,
            left: GroupId(1),
            right: GroupId(2),
        };
        assert_eq!(op.own_pred(), Some(3));
        assert_eq!(op.inputs(), vec![GroupId(1), GroupId(2)]);
        let scan = LogicalOp::Scan { table_slot: 0 };
        assert_eq!(scan.own_pred(), None);
        assert!(scan.inputs().is_empty());
    }
}

//! Cost model, best-plan extraction, and true-cost evaluation.
//!
//! The cost model is deliberately simple — the **sum of estimated
//! intermediate-result cardinalities** — because the paper's thesis is
//! about cardinality *estimation*, not about cost modelling: with this
//! model, plan choice responds directly to the cardinality estimates, so
//! experiments can show that SIT-aware estimation changes (and improves)
//! the chosen plan. [`evaluate_true_cost`] replays a plan against the
//! engine's exact cardinality oracle to score what the optimizer actually
//! picked.

use std::collections::HashMap;
use std::fmt;

use sqe_core::PredSet;
use sqe_engine::{CardinalityOracle, Predicate, Result as EngineResult};

use crate::estimate::MemoEstimator;
use crate::memo::{GroupId, LogicalOp, Memo};

/// An extracted physical-ish plan (operator tree).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base-table scan.
    Scan {
        /// Slot in the query's table list.
        table_slot: usize,
    },
    /// Filter.
    Select {
        /// Predicate index.
        pred: usize,
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Join.
    Join {
        /// Predicate index.
        pred: usize,
        /// Left input plan.
        left: Box<PlanNode>,
        /// Right input plan.
        right: Box<PlanNode>,
    },
}

impl PlanNode {
    /// The predicate set applied by this plan.
    pub fn preds(&self) -> PredSet {
        match self {
            PlanNode::Scan { .. } => PredSet::EMPTY,
            PlanNode::Select { pred, input } => input.preds().union(PredSet::singleton(*pred)),
            PlanNode::Join { pred, left, right } => left
                .preds()
                .union(right.preds())
                .union(PredSet::singleton(*pred)),
        }
    }

    /// Number of operators.
    pub fn size(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Select { input, .. } => 1 + input.size(),
            PlanNode::Join { left, right, .. } => 1 + left.size() + right.size(),
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanNode::Scan { table_slot } => write!(f, "scan(t{table_slot})"),
            PlanNode::Select { pred, input } => write!(f, "σ[p{pred}]({input})"),
            PlanNode::Join { pred, left, right } => {
                write!(f, "({left} ⋈[p{pred}] {right})")
            }
        }
    }
}

/// Extracts the minimum-cost plan from an estimated memo, where the cost of
/// an entry is the sum of its inputs' costs plus the group's estimated
/// output cardinality (scans cost their table's cardinality).
pub fn extract_best_plan(memo: &Memo, est: &MemoEstimator<'_>) -> Option<(PlanNode, f64)> {
    let mut cache: HashMap<GroupId, Option<(PlanNode, f64)>> = HashMap::new();
    best_plan_rec(memo, est, memo.root(), &mut cache)
}

fn best_plan_rec(
    memo: &Memo,
    est: &MemoEstimator<'_>,
    gid: GroupId,
    cache: &mut HashMap<GroupId, Option<(PlanNode, f64)>>,
) -> Option<(PlanNode, f64)> {
    if let Some(hit) = cache.get(&gid) {
        return hit.clone();
    }
    // Mark as in-progress to cut cycles (groups can reference each other
    // through rule-generated alternatives; any cyclic alternative is
    // ignored).
    cache.insert(gid, None);
    let group = memo.group(gid);
    let out_card = est
        .group_estimate(gid)
        .map(|e| e.cardinality)
        .unwrap_or(f64::INFINITY);
    let mut best: Option<(PlanNode, f64)> = None;
    for entry in &group.entries {
        let candidate = match entry.op {
            LogicalOp::Scan { table_slot } => Some((PlanNode::Scan { table_slot }, out_card)),
            LogicalOp::Select { pred, input } => {
                best_plan_rec(memo, est, input, cache).map(|(plan, cost)| {
                    (
                        PlanNode::Select {
                            pred,
                            input: Box::new(plan),
                        },
                        cost + out_card,
                    )
                })
            }
            LogicalOp::Join { pred, left, right } => {
                match (
                    best_plan_rec(memo, est, left, cache),
                    best_plan_rec(memo, est, right, cache),
                ) {
                    (Some((lp, lc)), Some((rp, rc))) => Some((
                        PlanNode::Join {
                            pred,
                            left: Box::new(lp),
                            right: Box::new(rp),
                        },
                        lc + rc + out_card,
                    )),
                    _ => None,
                }
            }
        };
        if let Some((plan, cost)) = candidate {
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
    }
    cache.insert(gid, best.clone());
    best
}

/// Replays a plan against the exact cardinality oracle: the *true* cost
/// under the same Σ-of-intermediates model. This is how experiments score
/// the plans different estimators choose.
pub fn evaluate_true_cost(
    memo: &Memo,
    oracle: &mut CardinalityOracle<'_>,
    plan: &PlanNode,
) -> EngineResult<f64> {
    let ctx = memo.context();
    let mut total = 0.0;
    let mut stack = vec![plan];
    while let Some(node) = stack.pop() {
        let preds: Vec<Predicate> = ctx.predicates_of(node.preds());
        let tables = match node {
            PlanNode::Scan { table_slot } => {
                vec![ctx.tables_of_slots(1 << table_slot)[0]]
            }
            _ => {
                let mask = node_table_mask(node);
                ctx.tables_of_slots(mask)
            }
        };
        total += oracle.cardinality(&tables, &preds)? as f64;
        match node {
            PlanNode::Scan { .. } => {}
            PlanNode::Select { input, .. } => stack.push(input),
            PlanNode::Join { left, right, .. } => {
                stack.push(left);
                stack.push(right);
            }
        }
    }
    Ok(total)
}

fn node_table_mask(node: &PlanNode) -> u32 {
    match node {
        PlanNode::Scan { table_slot } => 1 << table_slot,
        PlanNode::Select { input, .. } => node_table_mask(input),
        PlanNode::Join { left, right, .. } => node_table_mask(left) | node_table_mask(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::MemoEstimator;
    use crate::rules::explore;
    use sqe_core::{ErrorMode, Sit, SitCatalog};
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Database, SpjQuery, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .column("b", vec![1, 2, 3, 4, 5, 6])
                .build()
                .unwrap(),
        );
        db
    }

    fn setup(db: &Database) -> (SpjQuery, SitCatalog) {
        let join = Predicate::join(c(0, 1), c(1, 0));
        let q = SpjQuery::from_predicates(vec![join, Predicate::filter(c(0, 0), CmpOp::Eq, 1)])
            .unwrap();
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
            cat.add(Sit::build(db, col, vec![join]).unwrap());
        }
        (q, cat)
    }

    #[test]
    fn extracts_a_complete_plan() {
        let db = db();
        let (q, cat) = setup(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.estimate_memo(&memo);
        let (plan, cost) = extract_best_plan(&memo, &est).expect("plan exists");
        assert_eq!(plan.preds(), memo.context().all());
        assert!(cost.is_finite() && cost > 0.0);
        assert!(plan.size() >= 3);
        let shown = plan.to_string();
        assert!(shown.contains('⋈'), "{shown}");
    }

    #[test]
    fn true_cost_matches_manual_computation() {
        let db = db();
        let (q, cat) = setup(&db);
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.estimate_memo(&memo);
        let (plan, _) = extract_best_plan(&memo, &est).unwrap();
        let mut oracle = CardinalityOracle::new(&db);
        let cost = evaluate_true_cost(&memo, &mut oracle, &plan).unwrap();
        // Whatever the shape, cost must include the two scans (6 + 6) and
        // the root (true card 8).
        assert!(cost >= 6.0 + 6.0 + 8.0, "cost {cost}");
    }

    #[test]
    fn plan_display_is_readable() {
        let plan = PlanNode::Join {
            pred: 0,
            left: Box::new(PlanNode::Select {
                pred: 1,
                input: Box::new(PlanNode::Scan { table_slot: 0 }),
            }),
            right: Box::new(PlanNode::Scan { table_slot: 1 }),
        };
        assert_eq!(plan.to_string(), "(σ[p1](scan(t0)) ⋈[p0] scan(t1))");
        assert_eq!(plan.size(), 4);
        assert_eq!(plan.preds(), PredSet(0b11));
    }
}

//! Transformation rules and exploration to fixpoint (§4.1).
//!
//! Three classic rule families populate the memo:
//!
//! * **Join commutativity**: `A ⋈ B ⇒ B ⋈ A`.
//! * **Join associativity**: `(A ⋈_{p2} B) ⋈_{p1} C ⇒ A ⋈_{p2} (B ⋈_{p1}
//!   C)` whenever `p1`'s tables are available in `B ∪ C`.
//! * **Filter pull-up / push-down**: `σ_f(A) ⋈ B ⇔ σ_f(A ⋈ B)` (the
//!   paper's example rule `[T1] ⋈ (σ_P[T2]) ⇒ σ_P([T1] ⋈ [T2])` and its
//!   inverse).
//!
//! Exploration repeatedly applies every rule to every entry until no new
//! entry or group appears. Each new entry is exactly one new atomic
//! decomposition for the §4.2 coupled estimator.

use sqe_core::PredSet;

use crate::memo::{GroupId, LogicalOp, Memo};

/// Applies all transformation rules to fixpoint. Returns the number of
/// entries added.
pub fn explore(memo: &mut Memo) -> usize {
    let mut added_total = 0;
    loop {
        let mut added = 0;
        for gid in memo.group_ids().collect::<Vec<_>>() {
            let entries: Vec<LogicalOp> = memo.group(gid).entries.iter().map(|e| e.op).collect();
            for op in entries {
                added += apply_rules(memo, gid, op);
            }
        }
        if added == 0 {
            return added_total;
        }
        added_total += added;
    }
}

fn apply_rules(memo: &mut Memo, gid: GroupId, op: LogicalOp) -> usize {
    let mut added = 0;
    match op {
        LogicalOp::Join { pred, left, right } => {
            // Commutativity.
            if memo.add_entry(
                gid,
                LogicalOp::Join {
                    pred,
                    left: right,
                    right: left,
                },
            ) {
                added += 1;
            }
            added += associate(memo, gid, pred, left, right);
            added += pull_filter_above_join(memo, gid, pred, left, right);
        }
        LogicalOp::Select { pred, input } => {
            added += push_filter_below_join(memo, gid, pred, input);
        }
        LogicalOp::Scan { .. } => {}
    }
    added
}

/// `(A ⋈_{p2} B) ⋈_{p1} C ⇒ A ⋈_{p2} (B ⋈_{p1} C)` when valid.
fn associate(memo: &mut Memo, gid: GroupId, p1: usize, left: GroupId, right: GroupId) -> usize {
    let mut added = 0;
    let inner_ops: Vec<LogicalOp> = memo.group(left).entries.iter().map(|e| e.op).collect();
    for inner in inner_ops {
        let LogicalOp::Join {
            pred: p2,
            left: a,
            right: b,
        } = inner
        else {
            continue;
        };
        // New right side: B ⋈_{p1} C. Valid when p1's tables are all within
        // B ∪ C.
        let (b_mask, b_preds) = {
            let g = memo.group(b);
            (g.table_mask, g.preds)
        };
        let (c_mask, c_preds) = {
            let g = memo.group(right);
            (g.table_mask, g.preds)
        };
        let p1_mask = memo.context().table_mask(PredSet::singleton(p1));
        if p1_mask & !(b_mask | c_mask) != 0 {
            continue;
        }
        let bc_mask = b_mask | c_mask;
        let bc_preds = b_preds.union(c_preds).union(PredSet::singleton(p1));
        let bc = memo.intern_group(bc_mask, bc_preds);
        if memo.add_entry(
            bc,
            LogicalOp::Join {
                pred: p1,
                left: b,
                right,
            },
        ) {
            added += 1;
        }
        // p2 must span A ∪ (B ∪ C) — it already did (it spanned A ∪ B).
        if memo.add_entry(
            gid,
            LogicalOp::Join {
                pred: p2,
                left: a,
                right: bc,
            },
        ) {
            added += 1;
        }
    }
    added
}

/// `σ_f(A) ⋈ B ⇒ σ_f(A ⋈ B)`: filters on a join input move above the join.
fn pull_filter_above_join(
    memo: &mut Memo,
    gid: GroupId,
    pred: usize,
    left: GroupId,
    right: GroupId,
) -> usize {
    let mut added = 0;
    for (filtered, other, is_left) in [(left, right, true), (right, left, false)] {
        let ops: Vec<LogicalOp> = memo.group(filtered).entries.iter().map(|e| e.op).collect();
        for op in ops {
            let LogicalOp::Select {
                pred: f,
                input: below,
            } = op
            else {
                continue;
            };
            // New join without the filter...
            let below_info = {
                let g = memo.group(below);
                (g.table_mask, g.preds)
            };
            let other_info = {
                let g = memo.group(other);
                (g.table_mask, g.preds)
            };
            let join_mask = below_info.0 | other_info.0;
            let join_preds = below_info
                .1
                .union(other_info.1)
                .union(PredSet::singleton(pred));
            let join_group = memo.intern_group(join_mask, join_preds);
            let join_op = if is_left {
                LogicalOp::Join {
                    pred,
                    left: below,
                    right: other,
                }
            } else {
                LogicalOp::Join {
                    pred,
                    left: other,
                    right: below,
                }
            };
            if memo.add_entry(join_group, join_op) {
                added += 1;
            }
            // ... and the filter on top, landing in this group.
            if memo.add_entry(
                gid,
                LogicalOp::Select {
                    pred: f,
                    input: join_group,
                },
            ) {
                added += 1;
            }
        }
    }
    added
}

/// `σ_f(A ⋈ B) ⇒ σ_f(A) ⋈ B` when `f` only references tables of `A`.
fn push_filter_below_join(memo: &mut Memo, gid: GroupId, f: usize, input: GroupId) -> usize {
    let mut added = 0;
    let f_mask = memo.context().table_mask(PredSet::singleton(f));
    let ops: Vec<LogicalOp> = memo.group(input).entries.iter().map(|e| e.op).collect();
    for op in ops {
        let LogicalOp::Join { pred, left, right } = op else {
            continue;
        };
        for (side, other, is_left) in [(left, right, true), (right, left, false)] {
            let side_info = {
                let g = memo.group(side);
                (g.table_mask, g.preds)
            };
            if f_mask & !side_info.0 != 0 {
                continue;
            }
            let filtered_preds = side_info.1.union(PredSet::singleton(f));
            let filtered = memo.intern_group(side_info.0, filtered_preds);
            if memo.add_entry(
                filtered,
                LogicalOp::Select {
                    pred: f,
                    input: side,
                },
            ) {
                added += 1;
            }
            let join_op = if is_left {
                LogicalOp::Join {
                    pred,
                    left: filtered,
                    right: other,
                }
            } else {
                LogicalOp::Join {
                    pred,
                    left: other,
                    right: filtered,
                }
            };
            if memo.add_entry(gid, join_op) {
                added += 1;
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Database, Predicate, SpjQuery, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db3() -> Database {
        let mut db = Database::new();
        for name in ["r", "s", "t"] {
            db.add_table(
                TableBuilder::new(name)
                    .column("a", vec![1, 2, 3])
                    .column("b", vec![1, 2, 3])
                    .build()
                    .unwrap(),
            );
        }
        db
    }

    fn chain_query() -> SpjQuery {
        SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 2),
        ])
        .unwrap()
    }

    #[test]
    fn exploration_reaches_fixpoint_and_grows_memo() {
        let db = db3();
        let q = chain_query();
        let mut memo = Memo::new(&db, &q);
        let before_entries = memo.entry_count();
        let added = explore(&mut memo);
        assert!(added > 0);
        assert_eq!(memo.entry_count(), before_entries + added);
        // Idempotent: a second exploration adds nothing.
        assert_eq!(explore(&mut memo), 0);
    }

    #[test]
    fn commutativity_doubles_join_entries() {
        let db = db3();
        let q = SpjQuery::from_predicates(vec![Predicate::join(c(0, 1), c(1, 0))]).unwrap();
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let root = memo.group(memo.root());
        let joins = root
            .entries
            .iter()
            .filter(|e| matches!(e.op, LogicalOp::Join { .. }))
            .count();
        assert_eq!(joins, 2, "A⋈B and B⋈A");
    }

    #[test]
    fn associativity_creates_alternative_join_orders() {
        let db = db3();
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
        ])
        .unwrap();
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        // Some group must represent s ⋈ t (mask 0b110) — the alternative
        // inner join the seed plan (left-deep from r) never built.
        let exists = memo
            .group_ids()
            .any(|g| memo.group(g).table_mask == 0b110 && !memo.group(g).entries.is_empty());
        assert!(exists, "associativity must expose the s⋈t sub-join");
    }

    #[test]
    fn filter_pull_up_materializes_paper_example() {
        // The paper's example rule: [T1] ⋈ (σ_P [T2]) ⇒ σ_P([T1] ⋈ [T2]).
        let db = db3();
        let q = chain_query();
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        // The group for {join0, filter2} over tables {r,s} must now contain
        // BOTH a join entry (filter pushed) and a select entry (filter
        // pulled above the join).
        let ctx_all = memo.context().all();
        let _ = ctx_all;
        let target = memo.group_ids().find(|&g| {
            let gr = memo.group(g);
            gr.table_mask == 0b011 && gr.preds.len() == 2
        });
        let gr = memo.group(target.expect("joint group exists"));
        let has_join = gr
            .entries
            .iter()
            .any(|e| matches!(e.op, LogicalOp::Join { .. }));
        let has_select = gr
            .entries
            .iter()
            .any(|e| matches!(e.op, LogicalOp::Select { .. }));
        assert!(has_join && has_select, "both alternatives must coexist");
    }

    #[test]
    fn exploration_preserves_root_semantics() {
        // Every entry of every group must decompose the group's predicate
        // set into its own predicate plus its inputs' sets — the invariant
        // the §4.2 coupled estimator relies on.
        let db = db3();
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 2),
            Predicate::filter(c(2, 1), CmpOp::Ge, 2),
        ])
        .unwrap();
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        let root = memo.group(memo.root());
        assert_eq!(root.preds, memo.context().all());
        // Exploration must have created several alternatives at the root.
        assert!(
            root.entries.len() >= 3,
            "root entries: {}",
            root.entries.len()
        );
    }

    #[test]
    fn two_table_query_explores_minimal_space() {
        let db = db3();
        let q = SpjQuery::from_predicates(vec![Predicate::join(c(0, 1), c(1, 0))]).unwrap();
        let mut memo = Memo::new(&db, &q);
        let added = explore(&mut memo);
        // Only commutativity applies: one new entry.
        assert_eq!(added, 1);
        assert_eq!(memo.group_count(), 3, "two scans + the join group");
    }

    #[test]
    fn groups_stay_consistent_after_exploration() {
        let db = db3();
        let q = chain_query();
        let mut memo = Memo::new(&db, &q);
        explore(&mut memo);
        for gid in memo.group_ids() {
            let g = memo.group(gid);
            for e in &g.entries {
                // Entry inputs must compose to exactly the group's content.
                let (mut mask, mut preds) = (0u32, PredSet::EMPTY);
                for input in e.op.inputs() {
                    let ig = memo.group(input);
                    mask |= ig.table_mask;
                    preds = preds.union(ig.preds);
                }
                match e.op {
                    LogicalOp::Scan { table_slot } => {
                        assert_eq!(g.table_mask, 1 << table_slot);
                        assert!(g.preds.is_empty());
                    }
                    LogicalOp::Select { pred, .. } | LogicalOp::Join { pred, .. } => {
                        assert_eq!(
                            g.preds,
                            preds.union(PredSet::singleton(pred)),
                            "group {gid} entry {:?}",
                            e.op
                        );
                        assert_eq!(g.table_mask, mask, "group {gid} entry {:?}", e.op);
                    }
                }
            }
        }
    }
}

//! # sqe-optimizer — a mini Cascades-style optimizer with coupled
//! `getSelectivity` estimation (§4 of the paper)
//!
//! A Cascades-based optimizer keeps logically equivalent sub-plans grouped
//! in a *memo*: each group is an equivalence class of expressions; each
//! entry is `[op, {params}, {inputs}]` where inputs point at other groups
//! (§4.1, Figure 4). This crate implements:
//!
//! * [`memo`] — the memo structure: groups keyed by `(tables, applied
//!   predicates)`, logical operators (scan / select / join), and initial
//!   plan construction from an SPJ query;
//! * [`rules`] — transformation rules (join commutativity, join
//!   associativity, filter push-down and pull-up) applied to fixpoint;
//! * [`estimate`] — the §4.2 coupling: each memo entry `E` in the group for
//!   `Sel(P)` induces the atomic decomposition `Sel(p_E|Q_E)·Sel(Q_E)`
//!   (its parameters conditioned on its inputs); the group keeps the most
//!   accurate alternative seen so far. The search is thus pruned by the
//!   optimizer's own exploration, trading a little accuracy for a trivial
//!   integration;
//! * [`cost`] — a simple cost model (sum of intermediate cardinalities),
//!   best-plan extraction, and true-cost evaluation against the engine's
//!   cardinality oracle, which lets experiments show that SIT-aware
//!   estimates change the chosen plan.

pub mod cost;
pub mod estimate;
pub mod memo;
pub mod rules;

pub use cost::{evaluate_true_cost, extract_best_plan, PlanNode};
pub use estimate::MemoEstimator;
pub use memo::{Entry, Group, GroupId, LogicalOp, Memo};
pub use rules::explore;

//! # sqe-oracle — ground truth and the differential accuracy harness
//!
//! Everything in this workspace ultimately claims to approximate one number:
//! the true selectivity `Sel(P)` of a conjunctive SPJ predicate set. This
//! crate owns the *ground truth* side of that claim and the harness that
//! holds the estimator to it:
//!
//! * [`exec::ExactExecutor`] — a second, independently implemented exact
//!   relational executor (backtracking join enumeration over per-column
//!   value indexes, not the engine's pairwise hash joins). Two executors
//!   built from different algorithms agreeing on every count is the
//!   differential guarantee that "truth" in this harness is actually true;
//! * [`workload`] — seeded, deterministic accuracy scenarios: snowflake
//!   databases swept across skew / correlation / dangling-FK knobs plus
//!   wide queries up to n = 12 predicates, each pinned by a byte-exact
//!   database fingerprint;
//! * [`invariants`] — exactness checks to float tolerance: the atomic
//!   decomposition `Sel(P,Q) = Sel(P|Q)·Sel(Q)` on oracle truth (Property
//!   1), executor differentials, Lemma 1 decomposition counts against the
//!   exhaustive enumerator, error-mode laws, and a from-scratch reference
//!   implementation of the `getSelectivity` recurrence that the optimized
//!   DP engines must match bit for bit;
//! * [`accuracy`] — the measurement pass: q-error and relative error of
//!   every estimator variant (error mode × SIT pool × pruning) against
//!   oracle truth, emitted as the committed `ACCURACY.json` report;
//! * [`beam_envelope`] — the beam engine's error envelope: q-error of the
//!   width-swept approximate DP vs truth *and* vs the exact engine on the
//!   wide scenarios (n = 12, 16), gated like every other accuracy metric;
//! * [`staleness`] — accuracy under mutation: replay a seeded delta
//!   stream through a live catalog, measure q-error against exact truth
//!   over the *current* (mutated) database at fresh / mid-stream /
//!   drained / refreshed checkpoints, reported in the `staleness`
//!   section of `ACCURACY.json`;
//! * [`gate`] — the regression gate comparing a fresh report against the
//!   committed baseline (`results/ACCURACY.baseline.json`), run in CI by
//!   the `accuracy_gate` binary.
//!
//! The split matters: `sqe-engine` already has a [`CardinalityOracle`]
//! (memoized hash joins), and the estimator is *tested against it* — so a
//! shared bug in the engine's join semantics would silently poison both
//! sides. [`exec::ExactExecutor`] shares no code with that path.
//!
//! [`CardinalityOracle`]: sqe_engine::CardinalityOracle

pub mod accuracy;
pub mod beam_envelope;
pub mod exec;
pub mod gate;
pub mod invariants;
pub mod staleness;
pub mod workload;

pub use accuracy::{
    measure_accuracy, AccuracyReport, BoundsScenario, ScenarioAccuracy, VariantResult,
};
pub use beam_envelope::{measure_beam_envelope, BeamEnvelopePoint, BeamEnvelopeScenario};
pub use exec::ExactExecutor;
pub use gate::{compare_reports, GateConfig};
pub use staleness::{measure_staleness, StalenessPoint, StalenessScenario};
pub use workload::{scenarios, OracleScenario, OracleTier};

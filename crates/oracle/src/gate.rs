//! The regression gate: a fresh [`AccuracyReport`] vs the committed
//! baseline.
//!
//! The gate is deliberately one-sided — it only fails when accuracy gets
//! *worse*. Improvements pass silently (and should be followed by
//! re-baselining with `accuracy --write-baseline`). Before comparing any
//! numbers it proves the two runs are comparable at all: same tier, same
//! scenario set, byte-identical generated databases (fingerprints).
//!
//! Tolerance model: a metric regresses when
//! `current > baseline · max_ratio + abs_slack`. The multiplicative part
//! absorbs proportional noise on large q-errors; the additive slack keeps
//! near-1.0 medians (where a 10% ratio is only ±0.1) from flapping on
//! float-level drift.

use crate::accuracy::AccuracyReport;

/// Gate tolerances. [`GateConfig::default`] is what CI runs.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Multiplicative headroom on every gated metric.
    pub max_ratio: f64,
    /// Additive slack on every gated metric.
    pub abs_slack: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            max_ratio: 1.10,
            abs_slack: 0.05,
        }
    }
}

/// Compares `current` against `baseline`; returns one human-readable
/// violation per problem, empty when the gate passes.
pub fn compare_reports(
    baseline: &AccuracyReport,
    current: &AccuracyReport,
    cfg: GateConfig,
) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.tier != current.tier {
        violations.push(format!(
            "tier mismatch: baseline is '{}', current is '{}' — reports are not comparable",
            baseline.tier, current.tier
        ));
        return violations;
    }
    for base_sc in &baseline.scenarios {
        let Some(cur_sc) = current
            .scenarios
            .iter()
            .find(|s| s.scenario == base_sc.scenario)
        else {
            violations.push(format!(
                "scenario '{}' present in baseline but missing from current run",
                base_sc.scenario
            ));
            continue;
        };
        if base_sc.fingerprint != cur_sc.fingerprint {
            violations.push(format!(
                "scenario '{}': database fingerprint changed ({:#x} -> {:#x}); \
                 the runs measured different data — re-baseline instead of gating",
                base_sc.scenario, base_sc.fingerprint, cur_sc.fingerprint
            ));
            continue;
        }
        for base_v in &base_sc.variants {
            let Some(cur_v) = cur_sc.variants.iter().find(|v| v.variant == base_v.variant) else {
                violations.push(format!(
                    "scenario '{}': variant '{}' missing from current run",
                    base_sc.scenario, base_v.variant
                ));
                continue;
            };
            if cur_v.queries != base_v.queries {
                violations.push(format!(
                    "scenario '{}' variant '{}': query count changed ({} -> {})",
                    base_sc.scenario, base_v.variant, base_v.queries, cur_v.queries
                ));
            }
            if cur_v.non_full_samples > 0 {
                violations.push(format!(
                    "scenario '{}' variant '{}': {} of {} samples were measured below \
                     Full quality — accuracy baselines must be unbudgeted",
                    base_sc.scenario, base_v.variant, cur_v.non_full_samples, cur_v.queries
                ));
            }
            for (metric, base_m, cur_m) in [
                (
                    "median q-error",
                    base_v.median_q_error,
                    cur_v.median_q_error,
                ),
                ("p95 q-error", base_v.p95_q_error, cur_v.p95_q_error),
            ] {
                let limit = base_m * cfg.max_ratio + cfg.abs_slack;
                if cur_m > limit {
                    violations.push(format!(
                        "scenario '{}' variant '{}': {metric} regressed \
                         {base_m} -> {cur_m} (limit {limit:.6})",
                        base_sc.scenario, base_v.variant
                    ));
                }
            }
        }
    }
    gate_staleness(baseline, current, cfg, &mut violations);
    gate_beam(baseline, current, cfg, &mut violations);
    gate_bn(current, &mut violations);
    gate_bound(baseline, current, cfg, &mut violations);
    violations
}

/// Gates the Bayesian-network backend's raison d'être: on every
/// correlated-family scenario (`corr-*`) of the **current** report,
/// `bn-j2` must beat `diff-j2`'s worst-case q-error. This is an absolute,
/// within-report property — not a baseline diff — so it keeps holding
/// right through a re-baseline, and a report that dropped the correlated
/// family entirely fails rather than passing vacuously.
fn gate_bn(current: &AccuracyReport, violations: &mut Vec<String>) {
    let mut seen = false;
    for sc in current
        .scenarios
        .iter()
        .filter(|s| s.scenario.starts_with("corr"))
    {
        seen = true;
        let find = |name: &str| sc.variants.iter().find(|v| v.variant == name);
        let (Some(bn), Some(diff)) = (find("bn-j2"), find("diff-j2")) else {
            violations.push(format!(
                "scenario '{}': correlated-family scenarios must measure both                  'bn-j2' and 'diff-j2'",
                sc.scenario
            ));
            continue;
        };
        if bn.max_q_error >= diff.max_q_error {
            violations.push(format!(
                "scenario '{}': BN backend failed to beat diff's worst case                  (bn-j2 max q-error {} >= diff-j2 {}) — the correlated family                  exists to prove the opposite",
                sc.scenario, bn.max_q_error, diff.max_q_error
            ));
        }
    }
    if !seen {
        violations.push(
            "no 'corr-*' scenario in current report: the BN-vs-diff gate has nothing to gate"
                .to_string(),
        );
    }
}

/// Gates the pessimistic bound sketch. Soundness is absolute: any query in
/// the **current** report whose "guaranteed" upper bound fell below the
/// true cardinality fails the gate, baseline or not. Tightness (the
/// bound/truth ratio aggregates) is gated against the baseline with the
/// standard tolerance envelope, fingerprints checked first.
fn gate_bound(
    baseline: &AccuracyReport,
    current: &AccuracyReport,
    cfg: GateConfig,
    violations: &mut Vec<String>,
) {
    for sc in &current.bounds {
        if sc.underestimates > 0 {
            violations.push(format!(
                "bounds scenario '{}': {} of {} upper bounds fell below the true                  cardinality — the pessimistic sketch is unsound",
                sc.scenario, sc.underestimates, sc.queries
            ));
        }
    }
    for base_sc in &baseline.bounds {
        let Some(cur_sc) = current
            .bounds
            .iter()
            .find(|s| s.scenario == base_sc.scenario)
        else {
            violations.push(format!(
                "bounds scenario '{}' present in baseline but missing from current run",
                base_sc.scenario
            ));
            continue;
        };
        if base_sc.fingerprint != cur_sc.fingerprint || base_sc.queries != cur_sc.queries {
            violations.push(format!(
                "bounds scenario '{}': database fingerprint or query count changed                  — the runs bounded different workloads; re-baseline instead of gating",
                base_sc.scenario
            ));
            continue;
        }
        for (metric, base_m, cur_m) in [
            ("max bound ratio", base_sc.max_ratio, cur_sc.max_ratio),
            (
                "median bound ratio",
                base_sc.median_ratio,
                cur_sc.median_ratio,
            ),
        ] {
            let limit = base_m * cfg.max_ratio + cfg.abs_slack;
            if cur_m > limit {
                violations.push(format!(
                    "bounds scenario '{}': {metric} loosened                      {base_m} -> {cur_m} (limit {limit:.6})",
                    base_sc.scenario
                ));
            }
        }
    }
}

/// Gates the accuracy-under-staleness section with the same tolerance
/// model, checkpoint by checkpoint. Stream fingerprints must match first:
/// a changed mutation generator means the runs replayed different churn
/// and must be re-baselined, not gated.
fn gate_staleness(
    baseline: &AccuracyReport,
    current: &AccuracyReport,
    cfg: GateConfig,
    violations: &mut Vec<String>,
) {
    for base_sc in &baseline.staleness {
        let Some(cur_sc) = current
            .staleness
            .iter()
            .find(|s| s.scenario == base_sc.scenario)
        else {
            violations.push(format!(
                "staleness scenario '{}' present in baseline but missing from current run",
                base_sc.scenario
            ));
            continue;
        };
        if base_sc.fingerprint != cur_sc.fingerprint
            || base_sc.stream_fingerprint != cur_sc.stream_fingerprint
        {
            violations.push(format!(
                "staleness scenario '{}': database or mutation-stream fingerprint changed \
                 — the runs replayed different churn; re-baseline instead of gating",
                base_sc.scenario
            ));
            continue;
        }
        for base_p in &base_sc.points {
            let Some(cur_p) = cur_sc.points.iter().find(|p| p.point == base_p.point) else {
                violations.push(format!(
                    "staleness scenario '{}': checkpoint '{}' missing from current run",
                    base_sc.scenario, base_p.point
                ));
                continue;
            };
            for (metric, base_m, cur_m) in [
                (
                    "median q-error",
                    base_p.median_q_error,
                    cur_p.median_q_error,
                ),
                ("p95 q-error", base_p.p95_q_error, cur_p.p95_q_error),
            ] {
                let limit = base_m * cfg.max_ratio + cfg.abs_slack;
                if cur_m > limit {
                    violations.push(format!(
                        "staleness scenario '{}' checkpoint '{}': {metric} regressed \
                         {base_m} -> {cur_m} (limit {limit:.6})",
                        base_sc.scenario, base_p.point
                    ));
                }
            }
        }
    }
}

/// Gates the beam error-envelope section with the same tolerance model,
/// width point by width point. Comparability first: fingerprint, query
/// width `n`, and query count must match — a changed wide workload means
/// the envelopes measured different queries and must be re-baselined. The
/// gated metrics are the beam-vs-truth q-errors *and* the worst per-query
/// ratio against the exact engine, so the beam can neither drift in
/// absolute accuracy nor quietly fall behind the reference it exists to
/// approximate.
fn gate_beam(
    baseline: &AccuracyReport,
    current: &AccuracyReport,
    cfg: GateConfig,
    violations: &mut Vec<String>,
) {
    for base_sc in &baseline.beam {
        let Some(cur_sc) = current.beam.iter().find(|s| s.scenario == base_sc.scenario) else {
            violations.push(format!(
                "beam scenario '{}' present in baseline but missing from current run",
                base_sc.scenario
            ));
            continue;
        };
        if base_sc.fingerprint != cur_sc.fingerprint
            || base_sc.n != cur_sc.n
            || base_sc.queries != cur_sc.queries
        {
            violations.push(format!(
                "beam scenario '{}': database fingerprint, width, or query count changed \
                 — the runs measured different envelopes; re-baseline instead of gating",
                base_sc.scenario
            ));
            continue;
        }
        for base_p in &base_sc.points {
            let Some(cur_p) = cur_sc
                .points
                .iter()
                .find(|p| p.width == base_p.width && p.expansions_cap == base_p.expansions_cap)
            else {
                violations.push(format!(
                    "beam scenario '{}': width {} (cap {}) missing from current run",
                    base_sc.scenario, base_p.width, base_p.expansions_cap
                ));
                continue;
            };
            for (metric, base_m, cur_m) in [
                (
                    "median q-error",
                    base_p.median_q_error,
                    cur_p.median_q_error,
                ),
                ("p95 q-error", base_p.p95_q_error, cur_p.p95_q_error),
                ("max q-error", base_p.max_q_error, cur_p.max_q_error),
                (
                    "q-error ratio vs exact",
                    base_p.max_q_ratio_vs_exact,
                    cur_p.max_q_ratio_vs_exact,
                ),
            ] {
                let limit = base_m * cfg.max_ratio + cfg.abs_slack;
                if cur_m > limit {
                    violations.push(format!(
                        "beam scenario '{}' width {}: {metric} regressed \
                         {base_m} -> {cur_m} (limit {limit:.6})",
                        base_sc.scenario, base_p.width
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{BoundsScenario, ScenarioAccuracy, VariantResult};
    use crate::beam_envelope::{BeamEnvelopePoint, BeamEnvelopeScenario};
    use crate::staleness::{StalenessPoint, StalenessScenario};

    fn variant(name: &str, median: f64, p95: f64) -> VariantResult {
        VariantResult {
            variant: name.to_string(),
            queries: 6,
            median_q_error: median,
            p95_q_error: p95,
            max_q_error: p95 * 2.0,
            median_rel_error: median - 1.0,
            p95_rel_error: p95 - 1.0,
            non_full_samples: 0,
        }
    }

    fn report(fingerprint: u64, median: f64, p95: f64) -> AccuracyReport {
        AccuracyReport {
            tier: "smoke".to_string(),
            scenarios: vec![
                ScenarioAccuracy {
                    scenario: "baseline".to_string(),
                    fingerprint,
                    variants: vec![variant("diff-j2", median, p95)],
                },
                // Fixed metrics: the within-report BN gate is exercised by
                // its own tests, independent of the median/p95 knobs.
                ScenarioAccuracy {
                    scenario: "corr-pair".to_string(),
                    fingerprint: fingerprint.wrapping_add(1),
                    variants: vec![variant("diff-j2", 3.0, 40.0), variant("bn-j2", 1.5, 4.0)],
                },
            ],
            staleness: vec![StalenessScenario {
                scenario: "baseline".to_string(),
                fingerprint,
                stream_fingerprint: 99,
                // Fixed metrics: staleness regressions are exercised by
                // their own tests below, independent of the variant knobs.
                points: vec![StalenessPoint {
                    point: "drained".to_string(),
                    ops_applied: 400,
                    queries: 6,
                    median_q_error: 1.2,
                    p95_q_error: 2.5,
                    max_staleness: 0.08,
                    rebuilds: 3,
                }],
            }],
            beam: vec![BeamEnvelopeScenario {
                scenario: "wide-n16".to_string(),
                fingerprint,
                n: 16,
                queries: 2,
                exact_median_q_error: 1.3,
                exact_max_q_error: 2.0,
                // Fixed metrics, like the staleness fixture: beam
                // regressions are exercised by dedicated tests below.
                points: vec![BeamEnvelopePoint {
                    width: 4,
                    expansions_cap: 512,
                    median_q_error: 1.4,
                    p95_q_error: 2.6,
                    max_q_error: 2.6,
                    max_q_ratio_vs_exact: 1.3,
                }],
            }],
            bounds: vec![BoundsScenario {
                scenario: "baseline".to_string(),
                fingerprint,
                queries: 6,
                underestimates: 0,
                max_ratio: 30.0,
                median_ratio: 8.0,
            }],
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(7, 1.4, 3.0);
        assert!(compare_reports(&r, &r.clone(), GateConfig::default()).is_empty());
    }

    #[test]
    fn improvement_and_tolerated_noise_pass() {
        let base = report(7, 1.4, 3.0);
        assert!(compare_reports(&base, &report(7, 1.1, 2.0), GateConfig::default()).is_empty());
        // Within ratio + slack: 1.4·1.1 + 0.05 = 1.59.
        assert!(compare_reports(&base, &report(7, 1.58, 3.0), GateConfig::default()).is_empty());
    }

    #[test]
    fn regression_is_flagged_per_metric() {
        let base = report(7, 1.4, 3.0);
        let bad = report(7, 2.0, 9.0);
        let v = compare_reports(&base, &bad, GateConfig::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("median q-error"), "{}", v[0]);
        assert!(v[1].contains("p95 q-error"), "{}", v[1]);
    }

    #[test]
    fn non_full_samples_are_rejected() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.scenarios[0].variants[0].non_full_samples = 2;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("2 of 6 samples"), "{}", v[0]);
    }

    #[test]
    fn fingerprint_mismatch_blocks_comparison() {
        let base = report(7, 1.4, 3.0);
        let other = report(8, 1.4, 3.0);
        // Both main scenarios, the staleness replay, the beam envelope,
        // and the bounds audit all carry the database fingerprint, so all
        // five flag the mismatch.
        let v = compare_reports(&base, &other, GateConfig::default());
        assert_eq!(v.len(), 5, "{v:?}");
        assert!(v.iter().all(|m| m.contains("fingerprint")), "{v:?}");
    }

    #[test]
    fn beam_envelope_regression_is_flagged() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.beam[0].points[0].p95_q_error = 9.0;
        cur.beam[0].points[0].max_q_ratio_vs_exact = 4.0;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(
            v[0].contains("beam scenario 'wide-n16' width 4") && v[0].contains("p95 q-error"),
            "{}",
            v[0]
        );
        assert!(v[1].contains("q-error ratio vs exact"), "{}", v[1]);
    }

    #[test]
    fn beam_envelope_comparability_is_checked() {
        let base = report(7, 1.4, 3.0);
        // A changed workload width is not gateable.
        let mut cur = base.clone();
        cur.beam[0].n = 12;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("re-baseline"), "{}", v[0]);

        // A missing width point is a violation, as is a missing scenario.
        let mut cur = base.clone();
        cur.beam[0].points.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("width 4 (cap 512) missing")));

        let mut cur = base.clone();
        cur.beam.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v
            .iter()
            .any(|m| m.contains("beam scenario 'wide-n16' present in baseline")));
    }

    #[test]
    fn staleness_checkpoint_regression_is_flagged() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.staleness[0].points[0].median_q_error = 5.0;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains("staleness scenario 'baseline' checkpoint 'drained'"),
            "{}",
            v[0]
        );
    }

    #[test]
    fn staleness_stream_fingerprint_and_missing_checkpoint_are_violations() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.staleness[0].stream_fingerprint = 100;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("mutation-stream fingerprint"), "{}", v[0]);

        let mut cur = base.clone();
        cur.staleness[0].points.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("checkpoint 'drained' missing")));

        let mut cur = base.clone();
        cur.staleness.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v
            .iter()
            .any(|m| m.contains("staleness scenario 'baseline' present in baseline")));
    }

    #[test]
    fn missing_scenario_variant_and_tier_mismatch_are_violations() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.scenarios[0].variants.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("variant 'diff-j2' missing")));

        let mut cur = base.clone();
        cur.scenarios.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("missing from current run")));

        let mut cur = base.clone();
        cur.tier = "full".to_string();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("tier mismatch"));
    }

    #[test]
    fn bn_must_beat_diff_on_the_correlated_family() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        // bn-j2's worst case creeps up to diff-j2's: no longer a win.
        cur.scenarios[1].variants[1].max_q_error = 80.0;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("failed to beat diff"), "{}", v[0]);

        // A report that silently dropped the correlated family fails too.
        let mut cur = base.clone();
        cur.scenarios.remove(1);
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("nothing to gate")), "{v:?}");

        // As does one measuring the family without the BN variant.
        let mut cur = base.clone();
        cur.scenarios[1].variants.pop();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(v.iter().any(|m| m.contains("must measure both")), "{v:?}");
    }

    #[test]
    fn bound_underestimates_fail_absolutely() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        cur.bounds[0].underestimates = 1;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("unsound"), "{}", v[0]);
    }

    #[test]
    fn bound_tightness_regression_and_comparability_are_gated() {
        let base = report(7, 1.4, 3.0);
        let mut cur = base.clone();
        // Base max ratio 30.0 → limit 30·1.1 + 0.05 = 33.05.
        cur.bounds[0].max_ratio = 50.0;
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("max bound ratio"), "{}", v[0]);

        let mut cur = base.clone();
        cur.bounds.clear();
        let v = compare_reports(&base, &cur, GateConfig::default());
        assert!(
            v.iter()
                .any(|m| m.contains("bounds scenario 'baseline' present in baseline")),
            "{v:?}"
        );
    }
}

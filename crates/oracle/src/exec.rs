//! An exact relational executor, implemented independently of `sqe-engine`.
//!
//! The engine answers true cardinalities with pairwise hash joins
//! ([`sqe_engine::exec`]) memoized per non-separable component
//! ([`sqe_engine::CardinalityOracle`]). This executor computes the same
//! numbers by a different algorithm — depth-first backtracking over the
//! query's tables, binding one row per table and enumerating join matches
//! through per-column value indexes — so the two can serve as differential
//! oracles for each other: any bug in one's join/NULL/cross-product
//! semantics shows up as a count mismatch, not as a silently wrong "truth".
//!
//! Semantics mirror the paper's (and the engine's): values are `i64` with
//! SQL NULLs, a NULL never satisfies any predicate (so dangling foreign
//! keys never join), and `Sel(P)` is the match count over the full
//! cartesian product of the query's tables.
//!
//! Complexity is output-sensitive: disconnected table groups are counted
//! independently and multiplied (Property 2 — the cross product is never
//! enumerated), and within a group the backtracking only walks rows reached
//! through an index probe on an already-bound join side. This is intended
//! for the small, seeded scenario databases of [`crate::workload`], not for
//! production-size data.

use std::collections::HashMap;

use sqe_engine::{ColRef, Database, Predicate, TableId};

/// The backtracking exact executor. Holds lazily built per-column equality
/// indexes (`value → rows with that value`, NULLs excluded), so repeated
/// counts over one database reuse the index work.
pub struct ExactExecutor<'a> {
    db: &'a Database,
    eq_index: HashMap<ColRef, HashMap<i64, Vec<u32>>>,
}

impl<'a> ExactExecutor<'a> {
    /// An executor over `db`. Indexes are built on first use per column.
    pub fn new(db: &'a Database) -> Self {
        ExactExecutor {
            db,
            eq_index: HashMap::new(),
        }
    }

    /// The database this executor counts against.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    fn ensure_index(&mut self, col: ColRef) {
        if self.eq_index.contains_key(&col) {
            return;
        }
        let column = self.db.column(col).expect("predicate column exists");
        let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
        for row in 0..column.len() {
            if let Some(v) = column.get(row) {
                map.entry(v).or_default().push(row as u32);
            }
        }
        self.eq_index.insert(col, map);
    }

    /// Exact number of tuples of `R1 × … × Rn` satisfying every predicate.
    ///
    /// `tables` may include tables no predicate touches; each contributes
    /// its full row count as a factor (the paper's canonical form keeps
    /// them in the product). Every predicate must reference only tables in
    /// the set.
    pub fn cardinality(&mut self, tables: &[TableId], preds: &[Predicate]) -> u128 {
        let mut tabs = tables.to_vec();
        tabs.sort_unstable();
        tabs.dedup();
        debug_assert!(
            preds
                .iter()
                .all(|p| p.tables().iter().all(|t| tabs.contains(&t))),
            "predicate references a table outside the set"
        );
        let mut total: u128 = 1;
        for group in table_groups(&tabs, preds) {
            let group_preds: Vec<Predicate> = preds
                .iter()
                .filter(|p| p.tables().iter().all(|t| group.contains(&t)))
                .copied()
                .collect();
            total = total.saturating_mul(self.count_group(&group, &group_preds));
        }
        total
    }

    /// `cardinality / |R1 × … × Rn|`, or `None` when some table is empty
    /// (the selectivity denominator vanishes).
    pub fn selectivity(&mut self, tables: &[TableId], preds: &[Predicate]) -> Option<f64> {
        let cross = self.db.cross_product_size(tables).ok()?;
        if cross == 0 {
            return None;
        }
        Some(self.cardinality(tables, preds) as f64 / cross as f64)
    }

    /// True conditional selectivity `Sel(P|Q) = Sel(P,Q) / Sel(Q)` over the
    /// given table set (Definition 1). `None` when `Q` has no qualifying
    /// tuples (the conditional is undefined).
    pub fn conditional_selectivity(
        &mut self,
        tables: &[TableId],
        p: &[Predicate],
        q: &[Predicate],
    ) -> Option<f64> {
        let denom = self.cardinality(tables, q);
        if denom == 0 {
            return None;
        }
        let mut all = p.to_vec();
        all.extend(q.iter().copied());
        Some(self.cardinality(tables, &all) as f64 / denom as f64)
    }

    /// Counts matches within one connected table group.
    fn count_group(&mut self, tables: &[TableId], preds: &[Predicate]) -> u128 {
        // Rows of each table passing all of its single-table predicates.
        let mut cand: Vec<Vec<u32>> = Vec::with_capacity(tables.len());
        for &t in tables {
            cand.push(self.filtered_rows(t, preds));
        }
        if tables.len() == 1 {
            return cand[0].len() as u128;
        }

        // Visit order: smallest candidate list first, then greedily extend
        // through join edges (within a group some edge always exists).
        let order = visit_order(tables, preds, &cand);
        let tables_ord: Vec<TableId> = order.iter().map(|&i| tables[i]).collect();
        let cand_ord: Vec<Vec<u32>> = order.iter().map(|&i| cand[i].clone()).collect();
        let in_cand: Vec<Vec<bool>> = tables_ord
            .iter()
            .zip(&cand_ord)
            .map(|(&t, rows)| {
                let n = self.db.row_count(t).expect("table exists");
                let mut mask = vec![false; n];
                for &r in rows {
                    mask[r as usize] = true;
                }
                mask
            })
            .collect();

        // Cross-table joins binding position k to earlier positions, as
        // (my column, earlier position, earlier column).
        let mut bound_joins: Vec<Vec<(u16, usize, u16)>> = vec![Vec::new(); tables_ord.len()];
        for p in preds {
            if let Predicate::Join { left, right } = p {
                if left.table == right.table {
                    continue; // single-table, already in `cand`
                }
                let li = pos_of(&tables_ord, left.table);
                let ri = pos_of(&tables_ord, right.table);
                let (late, early, late_col, early_col) = if li > ri {
                    (li, ri, left.column, right.column)
                } else {
                    (ri, li, right.column, left.column)
                };
                bound_joins[late].push((late_col, early, early_col));
            }
        }
        // The first binding join per position drives an index probe.
        for (pos, joins) in bound_joins.iter().enumerate() {
            if let Some(&(col, _, _)) = joins.first() {
                self.ensure_index(ColRef::new(tables_ord[pos], col));
            }
        }

        let search = GroupSearch {
            db: self.db,
            eq_index: &self.eq_index,
            tables: &tables_ord,
            cand: &cand_ord,
            in_cand: &in_cand,
            bound_joins: &bound_joins,
        };
        let mut assignment = Vec::with_capacity(tables_ord.len());
        search.count(0, &mut assignment)
    }

    /// Rows of `t` satisfying every single-table predicate on `t` (filters,
    /// ranges, and same-table joins; NULLs never qualify).
    fn filtered_rows(&self, t: TableId, preds: &[Predicate]) -> Vec<u32> {
        let table = self.db.table(t).expect("table exists");
        let local: Vec<&Predicate> = preds
            .iter()
            .filter(|p| {
                let mut it = p.tables().iter();
                it.next() == Some(t) && it.next().is_none()
            })
            .collect();
        (0..table.row_count() as u32)
            .filter(|&row| {
                local.iter().all(|p| match p {
                    Predicate::Filter { col, op, value } => table
                        .column(col.column)
                        .and_then(|c| c.get(row as usize))
                        .is_some_and(|v| op.eval(v, *value)),
                    Predicate::Range { col, lo, hi } => table
                        .column(col.column)
                        .and_then(|c| c.get(row as usize))
                        .is_some_and(|v| *lo <= v && v <= *hi),
                    Predicate::Join { left, right } => {
                        let l = table.column(left.column).and_then(|c| c.get(row as usize));
                        let r = table.column(right.column).and_then(|c| c.get(row as usize));
                        matches!((l, r), (Some(a), Some(b)) if a == b)
                    }
                })
            })
            .collect()
    }
}

/// The per-group backtracking state: immutable context threaded through the
/// recursion.
struct GroupSearch<'b> {
    db: &'b Database,
    eq_index: &'b HashMap<ColRef, HashMap<i64, Vec<u32>>>,
    tables: &'b [TableId],
    cand: &'b [Vec<u32>],
    in_cand: &'b [Vec<bool>],
    bound_joins: &'b [Vec<(u16, usize, u16)>],
}

impl GroupSearch<'_> {
    fn value(&self, pos: usize, row: u32, col: u16) -> Option<i64> {
        self.db
            .table(self.tables[pos])
            .expect("table exists")
            .column(col)
            .and_then(|c| c.get(row as usize))
    }

    /// True when `row` at `pos` satisfies the binding joins in `joins`
    /// against the current partial assignment.
    fn joins_ok(&self, pos: usize, row: u32, joins: &[(u16, usize, u16)], assign: &[u32]) -> bool {
        joins.iter().all(|&(my_col, epos, ecol)| {
            match (
                self.value(pos, row, my_col),
                self.value(epos, assign[epos], ecol),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        })
    }

    fn count(&self, pos: usize, assign: &mut Vec<u32>) -> u128 {
        if pos == self.tables.len() {
            return 1;
        }
        let mut total: u128 = 0;
        match self.bound_joins[pos].split_first() {
            None => {
                // Unconstrained by earlier tables (only the group's first
                // position, by construction of the visit order).
                for &row in &self.cand[pos] {
                    assign.push(row);
                    total += self.count(pos + 1, assign);
                    assign.pop();
                }
            }
            Some((&(my_col, epos, ecol), rest)) => {
                // Probe the index with the bound side's value; a NULL on
                // the bound side can never join.
                let Some(v) = self.value(epos, assign[epos], ecol) else {
                    return 0;
                };
                let col = ColRef::new(self.tables[pos], my_col);
                let index = self
                    .eq_index
                    .get(&col)
                    .expect("driver indexes pre-built per group");
                let Some(rows) = index.get(&v) else {
                    return 0;
                };
                for &row in rows {
                    if !self.in_cand[pos][row as usize] {
                        continue;
                    }
                    if !self.joins_ok(pos, row, rest, assign) {
                        continue;
                    }
                    assign.push(row);
                    total += self.count(pos + 1, assign);
                    assign.pop();
                }
            }
        }
        total
    }
}

fn pos_of(tables: &[TableId], t: TableId) -> usize {
    tables
        .iter()
        .position(|&x| x == t)
        .expect("join table is in the group")
}

/// Splits the table set into groups connected through cross-table join
/// predicates (Property 2: disconnected groups factor exactly). Tables no
/// join touches form singleton groups.
fn table_groups(tables: &[TableId], preds: &[Predicate]) -> Vec<Vec<TableId>> {
    let mut group_of: HashMap<TableId, usize> =
        tables.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    for p in preds {
        if let Predicate::Join { left, right } = p {
            if left.table == right.table {
                continue;
            }
            let a = group_of[&left.table];
            let b = group_of[&right.table];
            if a != b {
                let (keep, merge) = (a.min(b), a.max(b));
                for g in group_of.values_mut() {
                    if *g == merge {
                        *g = keep;
                    }
                }
            }
        }
    }
    let mut groups: Vec<Vec<TableId>> = Vec::new();
    let mut label_to_idx: HashMap<usize, usize> = HashMap::new();
    for &t in tables {
        let label = group_of[&t];
        let idx = *label_to_idx.entry(label).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[idx].push(t);
    }
    groups
}

/// Visit order within a connected group: start at the table with the fewest
/// filtered candidates, then repeatedly take the join-reachable table with
/// the fewest candidates, so every later position is driven by an index
/// probe.
fn visit_order(tables: &[TableId], preds: &[Predicate], cand: &[Vec<u32>]) -> Vec<usize> {
    let n = tables.len();
    let mut adjacent = vec![vec![false; n]; n];
    for p in preds {
        if let Predicate::Join { left, right } = p {
            if left.table == right.table {
                continue;
            }
            let a = pos_of(tables, left.table);
            let b = pos_of(tables, right.table);
            adjacent[a][b] = true;
            adjacent[b][a] = true;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let start = (0..n)
        .min_by_key(|&i| (cand[i].len(), tables[i]))
        .expect("group is non-empty");
    order.push(start);
    used[start] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&i| !used[i])
            .filter(|&i| order.iter().any(|&j| adjacent[i][j]))
            .min_by_key(|&i| (cand[i].len(), tables[i]))
            // A connected group always has a reachable next table; the
            // fallback keeps the walk total just in case.
            .unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("tables remain"));
        order.push(next);
        used[next] = true;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::brute::{count_brute_force, DEFAULT_LIMIT};
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{execute, CardinalityOracle, CmpOp};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn two_table_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 2, 3])
                .nullable_column("fk", vec![Some(10), Some(20), None, Some(20)])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("pk", vec![10, 20, 30])
                .column("b", vec![5, 6, 7])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn filters_ranges_and_nulls_count_by_hand() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let t = [TableId(0)];
        assert_eq!(
            exec.cardinality(&t, &[Predicate::filter(c(0, 0), CmpOp::Eq, 2)]),
            2
        );
        assert_eq!(exec.cardinality(&t, &[Predicate::range(c(0, 0), 2, 3)]), 3);
        // NULL fk never satisfies anything, even `<>`.
        assert_eq!(
            exec.cardinality(&t, &[Predicate::filter(c(0, 1), CmpOp::Neq, 999)]),
            3
        );
    }

    #[test]
    fn join_with_dangling_fk_counts_by_hand() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let t = [TableId(0), TableId(1)];
        let j = Predicate::join(c(0, 1), c(1, 0));
        // fk=10 matches pk=10; two fk=20 rows match pk=20; NULL drops out.
        assert_eq!(exec.cardinality(&t, &[j]), 3);
        assert_eq!(exec.selectivity(&t, &[j]), Some(3.0 / 12.0));
    }

    #[test]
    fn free_tables_multiply_into_the_product() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let p = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        // Table 1 is untouched: factor 3.
        assert_eq!(exec.cardinality(&[TableId(0), TableId(1)], &[p]), 3);
        assert_eq!(exec.cardinality(&[TableId(0), TableId(1)], &[]), 12);
    }

    #[test]
    fn conditional_selectivity_is_a_count_ratio() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let t = [TableId(0), TableId(1)];
        let j = Predicate::join(c(0, 1), c(1, 0));
        let f = Predicate::filter(c(1, 1), CmpOp::Eq, 6);
        let cond = exec.conditional_selectivity(&t, &[f], &[j]).unwrap();
        // Of the 3 join tuples, the two fk=20 rows see b=6.
        assert!((cond - 2.0 / 3.0).abs() < 1e-15);
        // Empty conditioning set: Sel(P|∅) = Sel(P).
        let uncond = exec.conditional_selectivity(&t, &[j], &[]).unwrap();
        assert_eq!(uncond, exec.selectivity(&t, &[j]).unwrap());
    }

    #[test]
    fn undefined_denominators_are_none() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let t = [TableId(0)];
        let never = Predicate::filter(c(0, 0), CmpOp::Eq, 999);
        assert_eq!(exec.conditional_selectivity(&t, &[], &[never]), None);

        let mut empty_db = Database::new();
        empty_db.add_table(TableBuilder::new("e").column("a", vec![]).build().unwrap());
        let mut exec2 = ExactExecutor::new(&empty_db);
        assert_eq!(exec2.selectivity(&[TableId(0)], &[]), None);
    }

    #[test]
    fn same_table_join_is_a_row_level_filter() {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("t")
                .nullable_column("a", vec![Some(1), Some(2), None])
                .nullable_column("b", vec![Some(1), Some(3), None])
                .build()
                .unwrap(),
        );
        let mut exec = ExactExecutor::new(&db);
        let p = Predicate::join(c(0, 0), c(0, 1));
        // Only row 0 has a = b with both non-NULL.
        assert_eq!(exec.cardinality(&[TableId(0)], &[p]), 1);
    }

    #[test]
    fn agrees_with_engine_and_brute_force_on_a_three_way_join() {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("x")
                .column("k", vec![1, 1, 2, 3, 3, 3])
                .column("v", vec![0, 1, 2, 3, 4, 5])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("y")
                .column("k", vec![1, 2, 2, 3])
                .column("w", vec![7, 8, 9, 7])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("z")
                .column("w", vec![7, 7, 9])
                .build()
                .unwrap(),
        );
        let preds = vec![
            Predicate::join(c(0, 0), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::range(c(0, 1), 0, 4),
        ];
        let tables = [TableId(0), TableId(1), TableId(2)];
        let mut exec = ExactExecutor::new(&db);
        let mine = exec.cardinality(&tables, &preds);
        let engine = execute(&db, &tables, &preds).unwrap();
        let brute = count_brute_force(&db, &tables, &preds, DEFAULT_LIMIT).unwrap();
        let mut oracle = CardinalityOracle::new(&db);
        let memoized = oracle.cardinality(&tables, &preds).unwrap();
        assert_eq!(mine, engine);
        assert_eq!(mine, brute as u128);
        assert_eq!(mine, memoized);
    }

    #[test]
    fn disconnected_groups_factor_exactly() {
        let db = two_table_db();
        let mut exec = ExactExecutor::new(&db);
        let t = [TableId(0), TableId(1)];
        let p0 = Predicate::filter(c(0, 0), CmpOp::Eq, 2);
        let p1 = Predicate::filter(c(1, 1), CmpOp::Ge, 6);
        let joint = exec.cardinality(&t, &[p0, p1]);
        let a = exec.cardinality(&[TableId(0)], &[p0]);
        let b = exec.cardinality(&[TableId(1)], &[p1]);
        assert_eq!(joint, a * b);
    }
}

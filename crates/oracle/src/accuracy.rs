//! The measurement pass: every estimator variant against oracle truth.
//!
//! For each scenario in the tier, the harness computes the *true*
//! selectivity of every workload query (engine [`CardinalityOracle`],
//! cross-checked against the independent [`ExactExecutor`] on every third
//! query) and then runs a fixed grid of estimator variants — error mode ×
//! SIT pool × §3.4 pruning — recording per-query q-error and relative
//! error. Both DP engines are run for every estimate and must agree bit
//! for bit; the measurement doubles as a differential test.
//!
//! Aggregates use the *nearest-rank* percentile (deterministic, no
//! interpolation) and every reported float is rounded to six decimals so
//! the committed `ACCURACY.json` is byte-stable across platforms with
//! identical math.
//!
//! [`CardinalityOracle`]: sqe_engine::CardinalityOracle

use std::sync::Arc;

use sqe_core::{
    build_pool, BackendKind, BnBackend, BnCatalog, BoundSketch, Budget, DiffBackend, DpStrategy,
    ErrorMode, Ladder, PessimisticBackend, PoolSpec, Quality, SelectivityBackend,
    SelectivityEstimator, SitCatalog,
};
use sqe_engine::CardinalityOracle;

use crate::exec::ExactExecutor;
use crate::workload::{scenarios, OracleScenario, OracleTier};

/// Accuracy of one estimator variant over one scenario's workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariantResult {
    /// Variant key, e.g. `"diff-j2-pruned"` (error mode, SIT pool,
    /// pruning).
    pub variant: String,
    /// Number of queries measured.
    pub queries: usize,
    /// Median q-error (`max(est/true, true/est)`), nearest rank.
    pub median_q_error: f64,
    /// 95th-percentile q-error, nearest rank.
    pub p95_q_error: f64,
    /// Worst q-error in the scenario.
    pub max_q_error: f64,
    /// Median relative error `|est − true| / true`, nearest rank.
    pub median_rel_error: f64,
    /// 95th-percentile relative error, nearest rank.
    pub p95_rel_error: f64,
    /// Estimates that came back below `Full` quality from the budgeted
    /// path. Accuracy is only meaningful for unbudgeted answers, so the
    /// gate rejects any report where this is nonzero.
    pub non_full_samples: u64,
}

/// All variant results for one generated scenario.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioAccuracy {
    /// Scenario name from [`crate::workload`].
    pub scenario: String,
    /// Database fingerprint; the gate refuses to compare runs that
    /// measured different data.
    pub fingerprint: u64,
    /// One entry per estimator variant, in the fixed grid order.
    pub variants: Vec<VariantResult>,
}

/// The full report, serialized as `ACCURACY.json`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AccuracyReport {
    /// `"smoke"` or `"full"` — reports from different tiers are not
    /// comparable (different query counts and scenario sets).
    pub tier: String,
    /// One entry per scenario.
    pub scenarios: Vec<ScenarioAccuracy>,
    /// Accuracy under incremental maintenance: one mutation-stream replay
    /// per scenario family (see [`crate::staleness`]).
    pub staleness: Vec<crate::staleness::StalenessScenario>,
    /// Beam-search error envelope on the wide scenarios (see
    /// [`crate::beam_envelope`]). Defaults empty so reports written before
    /// the beam engine existed still deserialize.
    #[serde(default)]
    pub beam: Vec<crate::beam_envelope::BeamEnvelopeScenario>,
    /// Soundness audit of the pessimistic bound sketch: one entry per
    /// scenario, counting queries whose "guaranteed" upper bound came in
    /// below the true cardinality (must be zero — `gate_bound`). Defaults
    /// empty so pre-backend reports still deserialize.
    #[serde(default)]
    pub bounds: Vec<BoundsScenario>,
}

/// Pessimistic-bound soundness and tightness over one scenario's workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoundsScenario {
    /// Scenario name from [`crate::workload`].
    pub scenario: String,
    /// Database fingerprint (comparability check, as for accuracy).
    pub fingerprint: u64,
    /// Number of queries audited.
    pub queries: usize,
    /// Queries with `bound < true cardinality`. Any nonzero value means
    /// the sketch is unsound; the gate fails the run.
    pub underestimates: u64,
    /// Worst `bound / truth` ratio — tightness, `>= 1` whenever sound.
    pub max_ratio: f64,
    /// Median `bound / truth` ratio, nearest rank.
    pub median_ratio: f64,
}

struct VariantSpec {
    name: &'static str,
    mode: ErrorMode,
    pool_joins: usize,
    pruned: bool,
    backend: BackendKind,
}

/// The fixed variant grid. `nind-j0` is the no-SIT floor (base histograms
/// with independence), `nind-j2` isolates what SITs buy the syntactic
/// ranking, `diff-j2` the paper's best practical mode, `diff-j2-pruned`
/// proves §3.4 pruning does not wreck accuracy, and `bn-j2` swaps in the
/// Bayesian-network backend over the same pool — `gate_bn` holds it to a
/// better worst case than `diff-j2` on the `corr-*` family.
const VARIANTS: &[VariantSpec] = &[
    VariantSpec {
        name: "nind-j0",
        mode: ErrorMode::NInd,
        pool_joins: 0,
        pruned: false,
        backend: BackendKind::Diff,
    },
    VariantSpec {
        name: "nind-j2",
        mode: ErrorMode::NInd,
        pool_joins: 2,
        pruned: false,
        backend: BackendKind::Diff,
    },
    VariantSpec {
        name: "diff-j2",
        mode: ErrorMode::Diff,
        pool_joins: 2,
        pruned: false,
        backend: BackendKind::Diff,
    },
    VariantSpec {
        name: "diff-j2-pruned",
        mode: ErrorMode::Diff,
        pool_joins: 2,
        pruned: true,
        backend: BackendKind::Diff,
    },
    VariantSpec {
        name: "bn-j2",
        mode: ErrorMode::Diff,
        pool_joins: 2,
        pruned: false,
        backend: BackendKind::Bn,
    },
];

/// Runs the whole measurement for a tier. Panics on any internal
/// inconsistency (executor disagreement, engine divergence, empty truth) —
/// in this harness an inconsistency is a bug, not a data point.
pub fn measure_accuracy(tier: OracleTier) -> AccuracyReport {
    let mut report_scenarios = Vec::new();
    let mut bounds = Vec::new();
    for sc in &scenarios(tier) {
        let (acc, bd) = measure_scenario(sc);
        report_scenarios.push(acc);
        bounds.push(bd);
    }
    AccuracyReport {
        tier: tier.label().to_string(),
        scenarios: report_scenarios,
        staleness: crate::staleness::measure_staleness(tier),
        beam: crate::beam_envelope::measure_beam_envelope(tier),
        bounds,
    }
}

fn measure_scenario(sc: &OracleScenario) -> (ScenarioAccuracy, BoundsScenario) {
    let db = &sc.db;
    let pool_j0 = build_pool(db, &sc.queries, PoolSpec::ji(0)).expect("J0 pool");
    let pool_j2 = build_pool(db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
    // Backend state, built once per scenario database.
    let bn = Arc::new(BnCatalog::build(db));
    let sketch = Arc::new(BoundSketch::build(db));

    // True selectivities and cardinalities, differentially validated.
    let mut oracle = CardinalityOracle::new(db);
    let mut exact = ExactExecutor::new(db);
    let mut truths = Vec::with_capacity(sc.queries.len());
    let mut cards = Vec::with_capacity(sc.queries.len());
    for (i, q) in sc.queries.iter().enumerate() {
        let card = oracle
            .cardinality(&q.tables, &q.predicates)
            .expect("oracle cardinality");
        if i % 3 == 0 {
            let mine = exact.cardinality(&q.tables, &q.predicates);
            assert_eq!(mine, card, "{}: executors disagree on query {i}", sc.name);
        }
        let cross = db.cross_product_size(&q.tables).expect("cross product");
        assert!(card > 0, "{}: workload query {i} is empty", sc.name);
        truths.push(card as f64 / cross as f64);
        cards.push(card as f64);
    }

    let variants = VARIANTS
        .iter()
        .map(|v| {
            let pool = if v.pool_joins == 0 {
                &pool_j0
            } else {
                &pool_j2
            };
            let backend: Arc<dyn SelectivityBackend> = match v.backend {
                BackendKind::Diff => Arc::new(DiffBackend),
                BackendKind::Bn => Arc::new(BnBackend::new(Arc::clone(&bn))),
                BackendKind::Pessimistic => Arc::new(PessimisticBackend::new(Arc::clone(&sketch))),
            };
            measure_variant(sc, pool, v, &truths, &backend)
        })
        .collect();

    let accuracy = ScenarioAccuracy {
        scenario: sc.name.to_string(),
        fingerprint: sc.fingerprint,
        variants,
    };
    (accuracy, measure_bounds(sc, &sketch, &cards))
}

/// Audits the bound sketch against true cardinalities: soundness means
/// every ratio is `>= 1`; the aggregate ratios track tightness over time.
fn measure_bounds(sc: &OracleScenario, sketch: &BoundSketch, cards: &[f64]) -> BoundsScenario {
    let mut underestimates = 0u64;
    let mut ratios = Vec::with_capacity(cards.len());
    for (q, &card) in sc.queries.iter().zip(cards) {
        let bound = sketch
            .upper_bound(q)
            .expect("sketch was built from the scenario database");
        if bound < card {
            underestimates += 1;
        }
        ratios.push(bound / card);
    }
    ratios.sort_by(f64::total_cmp);
    BoundsScenario {
        scenario: sc.name.to_string(),
        fingerprint: sc.fingerprint,
        queries: cards.len(),
        underestimates,
        max_ratio: round6(*ratios.last().expect("non-empty workload")),
        median_ratio: round6(percentile(&ratios, 50.0)),
    }
}

fn measure_variant(
    sc: &OracleScenario,
    pool: &SitCatalog,
    spec: &VariantSpec,
    truths: &[f64],
    backend: &Arc<dyn SelectivityBackend>,
) -> VariantResult {
    let mut q_errors = Vec::with_capacity(truths.len());
    let mut rel_errors = Vec::with_capacity(truths.len());
    let mut non_full_samples = 0u64;
    for (q, &truth) in sc.queries.iter().zip(truths) {
        let dense = estimate(sc, pool, spec, q, DpStrategy::Dense, backend);
        let recursive = estimate(sc, pool, spec, q, DpStrategy::Recursive, backend);
        assert_eq!(
            dense.to_bits(),
            recursive.to_bits(),
            "{}/{}: DP engines diverged",
            sc.name,
            spec.name
        );
        // Third leg of the differential: the budgeted ladder with an
        // unlimited budget must answer at Full quality, bit-identical to
        // the direct estimator. Anything else is either a ladder bug or a
        // sign the measurement ran under a budget — the gate rejects it.
        let budgeted = budgeted_estimate(sc, pool, spec, q, backend);
        if budgeted.quality == Quality::Full {
            assert_eq!(
                budgeted.selectivity.to_bits(),
                dense.to_bits(),
                "{}/{}: budgeted Full answer diverged from the direct estimator",
                sc.name,
                spec.name
            );
        } else {
            non_full_samples += 1;
        }
        // q-error is undefined at 0; clamp the estimate to a subnormal
        // floor so a (wrong) zero estimate shows up as a huge-but-finite
        // q-error instead of poisoning the aggregate with inf.
        let est = dense.max(1e-300);
        q_errors.push((est / truth).max(truth / est));
        rel_errors.push((dense - truth).abs() / truth);
    }
    q_errors.sort_by(f64::total_cmp);
    rel_errors.sort_by(f64::total_cmp);
    VariantResult {
        variant: spec.name.to_string(),
        queries: truths.len(),
        median_q_error: round6(percentile(&q_errors, 50.0)),
        p95_q_error: round6(percentile(&q_errors, 95.0)),
        max_q_error: round6(*q_errors.last().expect("non-empty workload")),
        median_rel_error: round6(percentile(&rel_errors, 50.0)),
        p95_rel_error: round6(percentile(&rel_errors, 95.0)),
        non_full_samples,
    }
}

fn budgeted_estimate(
    sc: &OracleScenario,
    pool: &SitCatalog,
    spec: &VariantSpec,
    q: &sqe_engine::SpjQuery,
    backend: &Arc<dyn SelectivityBackend>,
) -> sqe_core::BudgetedEstimate {
    let mut ladder = Ladder::new(&sc.db, pool, spec.mode)
        .with_strategy(DpStrategy::Dense)
        .with_dp_threads(1)
        .with_backend(Arc::clone(backend));
    if spec.pruned {
        ladder = ladder.with_sit_driven_pruning();
    }
    ladder.estimate(q, &Budget::unlimited())
}

fn estimate(
    sc: &OracleScenario,
    pool: &SitCatalog,
    spec: &VariantSpec,
    q: &sqe_engine::SpjQuery,
    strategy: DpStrategy,
    backend: &Arc<dyn SelectivityBackend>,
) -> f64 {
    let mut est = SelectivityEstimator::new(&sc.db, q, pool, spec.mode)
        .with_strategy(strategy)
        .with_backend(Arc::clone(backend));
    if spec.pruned {
        est = est.with_sit_driven_pruning();
    }
    let all = est.context().all();
    est.get_selectivity(all).0
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Rounds to six decimals so reports are byte-stable to serialize.
pub(crate) fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentile() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn rounding_is_stable_and_lossless_for_large_values() {
        assert_eq!(round6(0.123_456_789), 0.123_457);
        assert_eq!(round6(1e15), 1e15);
        let r = round6(2.0);
        assert_eq!(r.to_bits(), 2.0f64.to_bits());
    }
}

//! Beam-search error envelope: the approximate engine measured against
//! truth on the wide scenario family.
//!
//! The beam engine answers widths the exact engines cannot afford — but at
//! widths the exact engines *can* still handle (`n ≤ 16`), its error is
//! measurable against both the oracle truth and the exact `getSelectivity`
//! answer. This module sweeps [`BeamConfig::width`] over each wide
//! scenario and records, per width, the beam-vs-truth q-error aggregates
//! plus the worst per-query ratio of beam q-error to exact q-error — the
//! *envelope* CI gates against the committed baseline (see
//! [`crate::gate`]), so a regression in the beam's candidate generation or
//! selection shows up as a gate failure, not a silent accuracy drift at
//! the widths nobody can double-check.

use sqe_core::{build_pool, BeamConfig, DpStrategy, ErrorMode, PoolSpec, SelectivityEstimator};
use sqe_engine::CardinalityOracle;

use crate::accuracy::{percentile, round6};
use crate::workload::{scenarios, OracleScenario, OracleTier};

/// The width sweep every wide scenario is measured at. Includes the
/// default width and both cheaper and pricier settings so the committed
/// envelope shows the knob's whole accuracy curve.
pub const BEAM_WIDTHS: &[usize] = &[1, 2, 4, 8];

/// One beam width's accuracy on one wide scenario.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BeamEnvelopePoint {
    /// [`BeamConfig::width`] this point was measured at.
    pub width: usize,
    /// [`BeamConfig::expansions_cap`] in force (the default cap).
    pub expansions_cap: u64,
    /// Median beam-vs-truth q-error, nearest rank.
    pub median_q_error: f64,
    /// 95th-percentile beam-vs-truth q-error, nearest rank.
    pub p95_q_error: f64,
    /// Worst beam-vs-truth q-error in the scenario.
    pub max_q_error: f64,
    /// Worst per-query `beam q-error / exact q-error` — how much the
    /// bounded frontier gives up against the full DP on the same query,
    /// at the query where it gives up the most.
    pub max_q_ratio_vs_exact: f64,
}

/// The beam envelope of one wide scenario: the exact engine's reference
/// accuracy plus one [`BeamEnvelopePoint`] per swept width.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BeamEnvelopeScenario {
    /// Scenario name from [`crate::workload`].
    pub scenario: String,
    /// Database fingerprint; the gate refuses to compare runs that
    /// measured different data.
    pub fingerprint: u64,
    /// Predicates per query (uniform within a wide scenario).
    pub n: usize,
    /// Number of queries measured.
    pub queries: usize,
    /// Median exact-vs-truth q-error (the reference the ratio column is
    /// against), nearest rank.
    pub exact_median_q_error: f64,
    /// Worst exact-vs-truth q-error in the scenario.
    pub exact_max_q_error: f64,
    /// One entry per entry of [`BEAM_WIDTHS`], ascending.
    pub points: Vec<BeamEnvelopePoint>,
}

/// Measures the beam envelope for every wide scenario of the tier (the
/// scenarios whose name starts with `wide-`; only those carry widths
/// where the beam's bounded frontier actually bites).
pub fn measure_beam_envelope(tier: OracleTier) -> Vec<BeamEnvelopeScenario> {
    scenarios(tier)
        .iter()
        .filter(|s| s.name.starts_with("wide-"))
        .map(measure_scenario)
        .collect()
}

fn measure_scenario(sc: &OracleScenario) -> BeamEnvelopeScenario {
    let pool = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
    let n = sc.queries[0].predicates.len();
    assert!(
        sc.queries.iter().all(|q| q.predicates.len() == n),
        "{}: wide scenarios are uniform-width",
        sc.name
    );

    let mut oracle = CardinalityOracle::new(&sc.db);
    let truths: Vec<f64> = sc
        .queries
        .iter()
        .map(|q| {
            let card = oracle
                .cardinality(&q.tables, &q.predicates)
                .expect("oracle cardinality");
            let cross = sc.db.cross_product_size(&q.tables).expect("cross product");
            assert!(card > 0, "{}: workload query is empty", sc.name);
            card as f64 / cross as f64
        })
        .collect();

    // Exact reference: the full DP in the paper's best practical mode.
    let exact_q: Vec<f64> = sc
        .queries
        .iter()
        .zip(&truths)
        .map(|(q, &truth)| {
            let mut est = SelectivityEstimator::new(&sc.db, q, &pool, ErrorMode::Diff)
                .with_strategy(DpStrategy::Dense);
            let all = est.context().all();
            q_error(est.get_selectivity(all).0, truth)
        })
        .collect();
    let mut exact_sorted = exact_q.clone();
    exact_sorted.sort_by(f64::total_cmp);

    let cap = BeamConfig::default().expansions_cap;
    let points = BEAM_WIDTHS
        .iter()
        .map(|&width| {
            let cfg = BeamConfig {
                width,
                expansions_cap: cap,
            };
            let mut beam_q = Vec::with_capacity(truths.len());
            let mut max_ratio = 0.0f64;
            for ((q, &truth), &eq) in sc.queries.iter().zip(&truths).zip(&exact_q) {
                let mut est = SelectivityEstimator::new(&sc.db, q, &pool, ErrorMode::Diff)
                    .with_strategy(DpStrategy::Beam)
                    .with_beam_config(cfg);
                let all = est.context().all();
                let bq = q_error(est.get_selectivity(all).0, truth);
                max_ratio = max_ratio.max(bq / eq);
                beam_q.push(bq);
            }
            beam_q.sort_by(f64::total_cmp);
            BeamEnvelopePoint {
                width,
                expansions_cap: cap,
                median_q_error: round6(percentile(&beam_q, 50.0)),
                p95_q_error: round6(percentile(&beam_q, 95.0)),
                max_q_error: round6(*beam_q.last().expect("non-empty workload")),
                max_q_ratio_vs_exact: round6(max_ratio),
            }
        })
        .collect();

    BeamEnvelopeScenario {
        scenario: sc.name.to_string(),
        fingerprint: sc.fingerprint,
        n,
        queries: truths.len(),
        exact_median_q_error: round6(percentile(&exact_sorted, 50.0)),
        exact_max_q_error: round6(*exact_sorted.last().expect("non-empty")),
        points,
    }
}

/// `max(est/true, true/est)` with the zero-estimate clamp of
/// [`crate::accuracy`].
fn q_error(est: f64, truth: f64) -> f64 {
    let est = est.max(1e-300);
    (est / truth).max(truth / est)
}

//! Accuracy under staleness: how much estimate quality decays when the
//! catalog is maintained incrementally instead of rebuilt.
//!
//! For each scenario family the harness replays a seeded TPC-C-flavoured
//! mutation stream ([`sqe_datagen::generate_mutations`]) through a
//! [`LiveCatalog`] and, at fixed checkpoints, measures the q-error of the
//! *maintained* catalog against oracle truth over the **current** (mutated)
//! database:
//!
//! * `fresh` — before any mutation; the cold-built catalog, the same
//!   number the main accuracy pass reports for `diff-j2`;
//! * `mid-stream` — half the batches ingested, merges and deferred
//!   rebuilds in flight;
//! * `drained` — the whole stream ingested, every SIT within its
//!   declared staleness bound;
//! * `refreshed` — after [`LiveCatalog::refresh_all`], which is
//!   bit-identical to a cold build from the final database state, so this
//!   point is the floor the maintained catalog is allowed to decay from.
//!
//! Queries whose true selectivity drops to zero under churn are skipped
//! (q-error is undefined at zero truth); the per-point `queries` count
//! makes the skip visible. Everything is pinned by the database and
//! mutation-stream fingerprints, so the regression gate can first prove
//! two runs replayed identical churn.

use sqe_core::{build_pool, DeltaConfig, ErrorMode, LiveCatalog, PoolSpec, SelectivityEstimator};
use sqe_datagen::{generate_mutations, MutationConfig};
use sqe_engine::{CardinalityOracle, Database, SpjQuery};

use crate::accuracy::{percentile, round6};
use crate::workload::{scenarios, OracleTier};

/// One checkpoint of a staleness replay.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StalenessPoint {
    /// Checkpoint name: `fresh`, `mid-stream`, `drained`, or `refreshed`.
    pub point: String,
    /// Row ops applied to the database by this checkpoint.
    pub ops_applied: u64,
    /// Queries measured (zero-truth queries under churn are skipped).
    pub queries: usize,
    /// Median q-error against truth over the *current* database.
    pub median_q_error: f64,
    /// 95th-percentile q-error, nearest rank.
    pub p95_q_error: f64,
    /// Largest per-SIT staleness at this checkpoint (must stay under the
    /// configured bound except transiently at measurement instants).
    pub max_staleness: f64,
    /// Cumulative SIT rebuilds (drift- plus staleness-triggered) so far.
    pub rebuilds: usize,
}

/// The staleness replay of one scenario family.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StalenessScenario {
    /// Scenario name from [`crate::workload`].
    pub scenario: String,
    /// Fingerprint of the *initial* database (same as the main accuracy
    /// section's, proving both measured the same seed data).
    pub fingerprint: u64,
    /// Fingerprint of the mutation stream; equal fingerprints mean two
    /// runs replayed byte-identical churn.
    pub stream_fingerprint: u64,
    /// The four checkpoints, in replay order.
    pub points: Vec<StalenessPoint>,
}

/// Ops per tier: enough churn to force both merge maintenance and
/// drift/staleness rebuilds on the tiny oracle databases.
fn stream_ops(tier: OracleTier) -> usize {
    match tier {
        OracleTier::Smoke => 400,
        OracleTier::Full => 1000,
    }
}

/// Replays the mutation stream for every scenario family in the tier.
pub fn measure_staleness(tier: OracleTier) -> Vec<StalenessScenario> {
    scenarios(tier)
        .into_iter()
        .map(|sc| {
            let catalog = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
            let stream = generate_mutations(
                &sc.db,
                MutationConfig {
                    ops: stream_ops(tier),
                    batch_size: 50,
                    seed: sc.fingerprint ^ 0x5741_1E0F_F00D_CAFE,
                    drift: 0.5,
                },
            );

            let mut live = LiveCatalog::new(sc.db.clone(), catalog, DeltaConfig::default());
            let mut points = Vec::with_capacity(4);
            let mut rebuilds = 0usize;
            points.push(measure_point("fresh", &live, &sc.queries, rebuilds));

            let half = stream.batches.len().div_ceil(2);
            for batch in &stream.batches[..half] {
                rebuilds += live.ingest(batch).expect("ingest").rebuilds();
            }
            points.push(measure_point("mid-stream", &live, &sc.queries, rebuilds));

            for batch in &stream.batches[half..] {
                rebuilds += live.ingest(batch).expect("ingest").rebuilds();
            }
            points.push(measure_point("drained", &live, &sc.queries, rebuilds));

            rebuilds += live.refresh_all().expect("refresh").len();
            points.push(measure_point("refreshed", &live, &sc.queries, rebuilds));

            StalenessScenario {
                scenario: sc.name.to_string(),
                fingerprint: sc.fingerprint,
                stream_fingerprint: stream.fingerprint,
                points,
            }
        })
        .collect()
}

/// Measures one checkpoint: q-error of the maintained catalog against
/// truth over the live (mutated) database.
fn measure_point(
    name: &str,
    live: &LiveCatalog,
    queries: &[SpjQuery],
    rebuilds: usize,
) -> StalenessPoint {
    let db = live.db();
    let mut oracle = CardinalityOracle::new(db);
    let mut q_errors = Vec::with_capacity(queries.len());
    for q in queries {
        let card = oracle
            .cardinality(&q.tables, &q.predicates)
            .expect("oracle cardinality");
        if card == 0 {
            continue; // churn emptied the result; q-error undefined
        }
        let cross = db.cross_product_size(&q.tables).expect("cross product");
        let truth = card as f64 / cross as f64;
        let est = estimate(db, live, q).max(1e-300);
        q_errors.push((est / truth).max(truth / est));
    }
    assert!(
        !q_errors.is_empty(),
        "staleness point '{name}': churn emptied every workload query"
    );
    q_errors.sort_by(f64::total_cmp);
    StalenessPoint {
        point: name.to_string(),
        ops_applied: live.ops_ingested(),
        queries: q_errors.len(),
        median_q_error: round6(percentile(&q_errors, 50.0)),
        p95_q_error: round6(percentile(&q_errors, 95.0)),
        max_staleness: round6(live.max_staleness_observed()),
        rebuilds,
    }
}

fn estimate(db: &Database, live: &LiveCatalog, q: &SpjQuery) -> f64 {
    let mut est = SelectivityEstimator::new(db, q, live.catalog(), ErrorMode::Diff);
    let all = est.context().all();
    est.get_selectivity(all).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap scenario end-to-end; the full sweep runs in the accuracy
    /// binary, not under `cargo test`.
    #[test]
    fn baseline_scenario_replays_and_recovers() {
        let sc = scenarios(OracleTier::Smoke)
            .into_iter()
            .find(|s| s.name == "baseline")
            .expect("baseline scenario");
        let catalog = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).unwrap();
        let stream = generate_mutations(
            &sc.db,
            MutationConfig {
                ops: 200,
                batch_size: 50,
                seed: 7,
                drift: 0.5,
            },
        );
        let mut live = LiveCatalog::new(sc.db.clone(), catalog, DeltaConfig::default());
        let fresh = measure_point("fresh", &live, &sc.queries, 0);
        assert_eq!(fresh.ops_applied, 0);
        assert_eq!(fresh.max_staleness, 0.0);
        for b in &stream.batches {
            live.ingest(b).unwrap();
        }
        let drained = measure_point("drained", &live, &sc.queries, 0);
        assert_eq!(drained.ops_applied, 200);
        assert!(
            drained.max_staleness <= live.config().max_staleness + 1e-12,
            "staleness bound violated: {}",
            drained.max_staleness
        );
        live.refresh_all().unwrap();
        let refreshed = measure_point("refreshed", &live, &sc.queries, 0);
        assert_eq!(refreshed.max_staleness, 0.0);
        assert!(refreshed.median_q_error.is_finite());
    }

    #[test]
    fn replays_are_deterministic() {
        // Two measurements of the same seeds must be byte-identical —
        // this is what makes the committed baseline meaningful.
        let a = measure_staleness(OracleTier::Smoke);
        let b = measure_staleness(OracleTier::Smoke);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for sc in &a {
            assert_eq!(sc.points.len(), 4);
            assert_eq!(sc.points[0].point, "fresh");
            assert_eq!(sc.points[3].point, "refreshed");
            assert_eq!(sc.points[3].max_staleness, 0.0, "{}", sc.scenario);
        }
    }
}

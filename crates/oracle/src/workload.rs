//! Seeded, deterministic accuracy scenarios.
//!
//! Each scenario is a `(snowflake config, workload config)` pair chosen to
//! stress one axis the paper cares about: foreign-key skew (Zipf `theta`),
//! attribute–fan-out correlation (the [`SnowflakeConfig::correlation`]
//! knob), dangling foreign keys, and query width up to **n = 12**
//! predicates (7 joins + 5 filters — the full snowflake with the paper's
//! maximum filter load). Everything derives from fixed seeds, and the
//! generated database is pinned by a byte-exact fingerprint
//! ([`database_fingerprint`]) so a baseline comparison can first prove both
//! runs measured the same data.
//!
//! Tables are kept deliberately tiny (tens of rows): the harness runs two
//! exact executors over every query, and their cost is bounded by true
//! result sizes, not estimate quality.

use sqe_datagen::snowflake::JoinEdge;
use sqe_datagen::{
    correlated_star, database_fingerprint, generate_workload, CorrelatedStarConfig, Snowflake,
    SnowflakeConfig, WorkloadConfig,
};
use sqe_engine::{ColRef, Database, SpjQuery};

/// How much work the harness does: `Smoke` is the CI tier (a few queries
/// per scenario, every scenario family represented), `Full` the
/// local/baseline tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleTier {
    /// CI tier: every scenario family, few queries each.
    Smoke,
    /// Full tier: more queries and the heavier scenario variants.
    Full,
}

impl OracleTier {
    /// Parses `"smoke"` / `"full"` (the `--tier` flag of the accuracy
    /// binary).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(OracleTier::Smoke),
            "full" => Some(OracleTier::Full),
            _ => None,
        }
    }

    /// The canonical name, as written into the report.
    pub fn label(self) -> &'static str {
        match self {
            OracleTier::Smoke => "smoke",
            OracleTier::Full => "full",
        }
    }
}

/// One generated scenario: a database, its join graph, and a non-empty
/// query workload, all pinned by seeds.
pub struct OracleScenario {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// The generated database.
    pub db: Database,
    /// Join edges of the schema (pool construction needs them).
    pub join_edges: Vec<JoinEdge>,
    /// Columns eligible for filter predicates.
    pub filter_columns: Vec<ColRef>,
    /// The workload, every query non-empty by construction.
    pub queries: Vec<SpjQuery>,
    /// FNV-1a fingerprint of the canonical database export — two runs with
    /// equal fingerprints measured byte-identical data.
    pub fingerprint: u64,
}

/// Which generator builds the scenario database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// The 8-table snowflake of §5 ([`Snowflake::generate`]).
    Snowflake,
    /// The high-correlation star ([`correlated_star`]): near-duplicate
    /// same-table filter attributes, the shape the Bayesian-network
    /// backend exists for. `theta` maps to the join fan-out exponent;
    /// `correlation` and `dangling_frac` are not knobs of this generator.
    CorrelatedStar,
}

struct Spec {
    name: &'static str,
    family: Family,
    theta: f64,
    correlation: f64,
    dangling_frac: f64,
    min_rows: usize,
    db_seed: u64,
    joins: usize,
    filters: usize,
    queries_full: usize,
    wl_seed: u64,
    full_only: bool,
}

const SPECS: &[Spec] = &[
    // The paper's default setting: skewed fan out, full correlation.
    Spec {
        name: "baseline",
        family: Family::Snowflake,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.10,
        min_rows: 90,
        db_seed: 0xACC0_0001,
        joins: 3,
        filters: 3,
        queries_full: 12,
        wl_seed: 0x0A11_0001,
        full_only: false,
    },
    // Independence actually holds: SITs should stop mattering and every
    // technique should look alike.
    Spec {
        name: "uniform-independent",
        family: Family::Snowflake,
        theta: 0.0,
        correlation: 0.0,
        dangling_frac: 0.0,
        min_rows: 90,
        db_seed: 0xACC0_0002,
        joins: 2,
        filters: 2,
        queries_full: 12,
        wl_seed: 0x0A11_0002,
        full_only: false,
    },
    // Heavy Zipf skew: the regime where base-histogram independence is
    // most wrong.
    Spec {
        name: "heavy-skew",
        family: Family::Snowflake,
        theta: 2.0,
        correlation: 1.0,
        dangling_frac: 0.10,
        min_rows: 90,
        db_seed: 0xACC0_0003,
        joins: 3,
        filters: 2,
        queries_full: 12,
        wl_seed: 0x0A11_0003,
        full_only: false,
    },
    // A quarter of the fact-side join keys dangle: join selectivities
    // shrink and NULL handling errors would show immediately.
    Spec {
        name: "dangling-heavy",
        family: Family::Snowflake,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.25,
        min_rows: 90,
        db_seed: 0xACC0_0004,
        joins: 3,
        filters: 3,
        queries_full: 10,
        wl_seed: 0x0A11_0004,
        full_only: true,
    },
    // The widest shape the bitset estimator supports in one query here:
    // 7 joins spanning all 8 tables plus 5 filters — n = 12 predicates.
    Spec {
        name: "wide-n12",
        family: Family::Snowflake,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.10,
        min_rows: 70,
        db_seed: 0xACC0_0005,
        joins: 7,
        filters: 5,
        queries_full: 4,
        wl_seed: 0x0A11_0005,
        full_only: false,
    },
    // The exact engines' last affordable width: 7 joins + 9 filters —
    // n = 16, the top of the dense auto range. Wide enough that the beam
    // engine's bounded frontier really prunes, narrow enough that the
    // exact DP still provides the reference the beam error envelope (see
    // `beam_envelope`) is gated against.
    Spec {
        name: "wide-n16",
        family: Family::Snowflake,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.10,
        min_rows: 70,
        db_seed: 0xACC0_0006,
        joins: 7,
        filters: 9,
        queries_full: 4,
        wl_seed: 0x0A11_0006,
        full_only: false,
    },
    // The correlated-attribute family: pairs of near-duplicate same-table
    // filters. Independence between same-table filters (the diff path has
    // no statistic connecting them) underestimates the conjunction badly;
    // the BN backend's Chow-Liu conditioning is gated to beat diff here
    // (`gate_bn`).
    Spec {
        name: "corr-pair",
        family: Family::CorrelatedStar,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.0,
        min_rows: 160,
        db_seed: 0xACC0_0007,
        joins: 1,
        filters: 2,
        queries_full: 12,
        wl_seed: 0x0A11_0007,
        full_only: false,
    },
    // Same structure, three stacked correlated filters: the conjunction
    // error compounds once per redundant factor, so the diff/BN gap grows.
    Spec {
        name: "corr-triple",
        family: Family::CorrelatedStar,
        theta: 1.0,
        correlation: 1.0,
        dangling_frac: 0.0,
        min_rows: 160,
        db_seed: 0xACC0_0008,
        joins: 1,
        filters: 3,
        queries_full: 10,
        wl_seed: 0x0A11_0008,
        full_only: false,
    },
];

/// Builds the scenario set for a tier, deterministically.
pub fn scenarios(tier: OracleTier) -> Vec<OracleScenario> {
    SPECS
        .iter()
        .filter(|s| !s.full_only || tier == OracleTier::Full)
        .map(|s| build(s, tier))
        .collect()
}

fn build(spec: &Spec, tier: OracleTier) -> OracleScenario {
    let sf = match spec.family {
        Family::Snowflake => Snowflake::generate(SnowflakeConfig {
            scale: 0.0,
            theta: spec.theta,
            dangling_frac: spec.dangling_frac,
            correlation: spec.correlation,
            seed: spec.db_seed,
            min_rows: spec.min_rows,
        }),
        Family::CorrelatedStar => correlated_star(CorrelatedStarConfig {
            rows: spec.min_rows,
            theta: spec.theta,
            seed: spec.db_seed,
            ..CorrelatedStarConfig::default()
        }),
    };
    let queries = match tier {
        OracleTier::Full => spec.queries_full,
        OracleTier::Smoke => (spec.queries_full / 2).max(2),
    };
    let wl = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries,
            joins: spec.joins,
            filters: spec.filters,
            target_selectivity: 0.05,
            seed: spec.wl_seed,
        },
    );
    let fingerprint = database_fingerprint(&sf.db);
    OracleScenario {
        name: spec.name,
        db: sf.db,
        join_edges: sf.join_edges,
        filter_columns: sf.filter_columns,
        queries: wl,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_is_a_prefix_of_full_per_scenario() {
        let smoke = scenarios(OracleTier::Smoke);
        let full = scenarios(OracleTier::Full);
        assert!(smoke.len() < full.len(), "full adds scenario families");
        for s in &smoke {
            let f = full
                .iter()
                .find(|f| f.name == s.name)
                .expect("smoke scenarios exist in full");
            // Same seed, fewer queries: the generator walks the same RNG
            // stream, so the smoke workload is a prefix of the full one.
            assert_eq!(s.fingerprint, f.fingerprint, "{}", s.name);
            assert_eq!(&f.queries[..s.queries.len()], &s.queries[..], "{}", s.name);
        }
    }

    #[test]
    fn scenarios_are_reproducible_and_distinct() {
        let a = scenarios(OracleTier::Smoke);
        let b = scenarios(OracleTier::Smoke);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.fingerprint, y.fingerprint);
            assert_eq!(x.queries, y.queries);
        }
        // Different knobs produce different data.
        let mut prints: Vec<u64> = a.iter().map(|s| s.fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), a.len(), "scenario databases must differ");
    }

    #[test]
    fn wide_scenarios_reach_their_advertised_widths() {
        let all = scenarios(OracleTier::Smoke);
        for (name, n) in [("wide-n12", 12), ("wide-n16", 16)] {
            let wide = all.iter().find(|s| s.name == name).expect("present");
            for q in &wide.queries {
                assert_eq!(q.predicates.len(), n, "{name}");
                assert_eq!(q.tables.len(), 8, "{name}");
            }
        }
    }
}

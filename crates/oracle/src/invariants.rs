//! Exactness invariants: checks that must hold to float tolerance (or to
//! the bit), phrased as `Result<(), String>` so callers can aggregate
//! failures with context instead of dying on the first assert.
//!
//! The checks fall into three families:
//!
//! * **truth is true** — [`check_executor_differential`] runs the engine's
//!   hash-join executor, its memoized [`CardinalityOracle`], the
//!   independent backtracking [`ExactExecutor`], and (when the cross
//!   product is small) the brute-force odometer over the same query and
//!   demands identical integer counts;
//! * **the paper's identities hold on truth** —
//!   [`check_atomic_decomposition`] verifies Property 1
//!   (`Sel(P,Q) = Sel(P|Q)·Sel(Q)`) as an exact count identity,
//!   [`check_lemma1`] pins `T(n)` against the exhaustive enumerator and
//!   the Lemma 1 bounds, [`check_error_mode_laws`] pins the monotonic /
//!   algebraic structure of the error functions that makes the DP optimal;
//! * **the optimized DP is the recurrence it claims to be** —
//!   [`check_reference_dp`] recomputes `getSelectivity` with a 40-line
//!   from-scratch implementation of the Figure 3 recurrence (plain
//!   `HashMap` memo, no dense lattice, no pruning, no parallelism) and
//!   requires both production engines to match it bit for bit;
//!   [`check_chosen_decomposition`] replays the DP's chosen chain and
//!   requires the links to partition the query and reproduce the DP error.
//!
//! [`CardinalityOracle`]: sqe_engine::CardinalityOracle

use std::collections::HashMap;

use sqe_core::decomposition::enumerate_decompositions;
use sqe_core::{
    count_decompositions, decomposition_bounds, DpStrategy, ErrorMode, PredSet,
    SelectivityEstimator, SitCatalog,
};
use sqe_engine::brute::{count_brute_force, DEFAULT_LIMIT};
use sqe_engine::{execute, CardinalityOracle, Database, Predicate, SpjQuery, TableId};

use crate::exec::ExactExecutor;

/// Cross-product ceiling under which the brute-force odometer joins the
/// differential (it enumerates the full product).
const BRUTE_CROSS_LIMIT: u128 = 2_000_000;

/// All four exact counters agree on `preds` over `tables`.
pub fn check_executor_differential(
    db: &Database,
    tables: &[TableId],
    preds: &[Predicate],
) -> Result<(), String> {
    let mut exec = ExactExecutor::new(db);
    let mine = exec.cardinality(tables, preds);
    let engine = execute(db, tables, preds).map_err(|e| format!("engine execute failed: {e:?}"))?;
    if mine != engine {
        return Err(format!(
            "backtracking executor says {mine}, engine hash join says {engine}"
        ));
    }
    let mut oracle = CardinalityOracle::new(db);
    let memoized = oracle
        .cardinality(tables, preds)
        .map_err(|e| format!("cardinality oracle failed: {e:?}"))?;
    if mine != memoized {
        return Err(format!(
            "backtracking executor says {mine}, memoized oracle says {memoized}"
        ));
    }
    let cross = db
        .cross_product_size(tables)
        .map_err(|e| format!("cross product failed: {e:?}"))?;
    if cross <= BRUTE_CROSS_LIMIT {
        let brute = count_brute_force(db, tables, preds, DEFAULT_LIMIT)
            .map_err(|e| format!("brute force failed: {e:?}"))?;
        if mine != brute as u128 {
            return Err(format!(
                "backtracking executor says {mine}, brute force says {brute}"
            ));
        }
    }
    Ok(())
}

/// Property 1 on oracle truth: for every split of the query into `(P, Q)`
/// drawn from a deterministic family (each singleton as `P`, plus every
/// prefix split), `Sel(P,Q) = Sel(P|Q)·Sel(Q)` to float tolerance — and,
/// as integer counts, `card(P∪Q)·card(∅) = …` exactly (the float identity
/// only rounds).
pub fn check_atomic_decomposition(db: &Database, query: &SpjQuery) -> Result<(), String> {
    let mut exec = ExactExecutor::new(db);
    let preds = &query.predicates;
    let joint_card = exec.cardinality(&query.tables, preds);
    let mut splits: Vec<(Vec<Predicate>, Vec<Predicate>)> = Vec::new();
    for i in 0..preds.len() {
        let p = vec![preds[i]];
        let q: Vec<Predicate> = preds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &x)| x)
            .collect();
        splits.push((p, q));
    }
    for cut in 1..preds.len() {
        splits.push((preds[..cut].to_vec(), preds[cut..].to_vec()));
    }
    for (p, q) in splits {
        let q_card = exec.cardinality(&query.tables, &q);
        if q_card == 0 {
            continue; // conditional undefined; nothing to check
        }
        let joint = exec
            .selectivity(&query.tables, preds)
            .ok_or("empty cross product")?;
        let cond = exec
            .conditional_selectivity(&query.tables, &p, &q)
            .expect("q_card > 0");
        let marginal = exec
            .selectivity(&query.tables, &q)
            .ok_or("empty cross product")?;
        let product = cond * marginal;
        let tol = 1e-12 * joint.abs().max(1e-300);
        if (joint - product).abs() > tol {
            return Err(format!(
                "Sel(P,Q) = {joint} but Sel(P|Q)·Sel(Q) = {product} for split P={p:?}"
            ));
        }
        // The exact integer form: card(P∪Q)/card(Q) · card(Q) = card(P∪Q).
        let pq: Vec<Predicate> = p.iter().chain(q.iter()).copied().collect();
        if exec.cardinality(&query.tables, &pq) != joint_card {
            return Err("predicate order changed an exact count".to_string());
        }
    }
    Ok(())
}

/// Lemma 1 for every `n ≤ max_n`: the exhaustive enumerator produces
/// exactly `T(n)` distinct decomposition chains, all valid ordered
/// partitions, and `T(n)` sits inside `[0.5·(n+1)!, 1.5ⁿ·n!]`.
pub fn check_lemma1(max_n: usize) -> Result<(), String> {
    for n in 1..=max_n {
        let chains = enumerate_decompositions(PredSet::full(n));
        let t = count_decompositions(n);
        if chains.len() as u128 != t {
            return Err(format!(
                "n={n}: enumerator found {} chains, recurrence says T(n)={t}",
                chains.len()
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for chain in &chains {
            let mut union = PredSet(0);
            for &part in chain {
                if part.is_empty() {
                    return Err(format!("n={n}: chain contains an empty factor"));
                }
                if !union.intersect(part).is_empty() {
                    return Err(format!("n={n}: chain factors overlap"));
                }
                union = union.union(part);
            }
            if union != PredSet::full(n) {
                return Err(format!("n={n}: chain does not cover the set"));
            }
            if !seen.insert(chain.clone()) {
                return Err(format!("n={n}: duplicate chain"));
            }
        }
        let (lo, hi) = decomposition_bounds(n);
        if t < lo || t > hi {
            return Err(format!(
                "n={n}: T(n)={t} outside Lemma 1 bounds [{lo},{hi}]"
            ));
        }
    }
    Ok(())
}

/// The error functions have the structure Definition 3 requires for the
/// principle of optimality: per-predicate costs are non-negative,
/// non-increasing as SIT coverage grows, and the no-statistic fallback is
/// strictly worse than any SIT-based estimate.
pub fn check_error_mode_laws() -> Result<(), String> {
    for mode in [ErrorMode::NInd, ErrorMode::Diff, ErrorMode::Opt] {
        for cond_len in 0..6usize {
            let fallback = mode.fallback_error(cond_len);
            let mut prev = f64::INFINITY;
            for covered in 0..=cond_len {
                for &diff in &[0.0, 0.3, 1.0] {
                    let e = mode.sit_error(cond_len, covered, diff);
                    if e < 0.0 {
                        return Err(format!("{mode:?}: negative error {e}"));
                    }
                    if e >= fallback {
                        return Err(format!(
                            "{mode:?}: SIT error {e} not better than fallback {fallback} \
                             (cond {cond_len}, covered {covered}, diff {diff})"
                        ));
                    }
                }
                // Monotonicity in coverage (at fixed diff): more covered
                // conditioning predicates never cost more.
                let e = mode.sit_error(cond_len, covered, 0.5);
                if e > prev {
                    return Err(format!(
                        "{mode:?}: error grew with coverage ({prev} -> {e})"
                    ));
                }
                prev = e;
            }
        }
        // Diff must reward divergence: a SIT that captures more
        // distribution change costs less.
        if matches!(mode, ErrorMode::Diff) {
            let low = mode.sit_error(3, 1, 0.9);
            let high = mode.sit_error(3, 1, 0.1);
            if low >= high {
                return Err("Diff: higher divergence should cost less".to_string());
            }
        }
    }
    Ok(())
}

/// From-scratch reference implementation of the Figure 3 recurrence:
/// standard decomposition for separable sets, the full atomic-decomposition
/// argmin otherwise, with a plain `HashMap` memo. Uses the estimator's
/// public [`SelectivityEstimator::conditional_factor`] for the per-factor
/// values (the factor model is shared; the *search* is what's being
/// verified), and iterates subsets in the same order with the same
/// strict-`<` tie-break, so agreement must be bit-exact.
fn reference_dp(
    est: &mut SelectivityEstimator<'_>,
    p: PredSet,
    memo: &mut HashMap<u32, (f64, f64)>,
) -> (f64, f64) {
    if p.is_empty() {
        return (1.0, 0.0);
    }
    if let Some(&r) = memo.get(&p.0) {
        return r;
    }
    let first = est.context().first_component(p);
    let result = if first != p {
        let mut sel = 1.0;
        let mut err = 0.0;
        let mut rest = p;
        while !rest.is_empty() {
            let c = est.context().first_component(rest);
            rest = rest.minus(c);
            let (s, e) = reference_dp(est, c, memo);
            sel *= s;
            err += e;
        }
        (sel, err)
    } else {
        let mut best_err = f64::INFINITY;
        let mut best_sel = f64::NAN;
        for p_prime in p.subsets() {
            let q = p.minus(p_prime);
            let (sel_q, err_q) = reference_dp(est, q, memo);
            let (sel_f, err_f) = est.conditional_factor(p_prime, q);
            let total = err_f + err_q;
            if total < best_err {
                best_err = total;
                best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
            }
        }
        (best_sel, best_err)
    };
    memo.insert(p.0, result);
    result
}

/// Both production DP engines reproduce the reference recurrence bit for
/// bit on the full query (unpruned; §3.4 pruning changes the explored
/// space by design and is checked separately for engine agreement).
pub fn check_reference_dp(
    db: &Database,
    query: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
) -> Result<(), String> {
    let mut reference_est =
        SelectivityEstimator::new(db, query, catalog, mode).with_strategy(DpStrategy::Recursive);
    let all = reference_est.context().all();
    let mut memo = HashMap::new();
    let (ref_sel, ref_err) = reference_dp(&mut reference_est, all, &mut memo);

    for (label, strategy) in [
        ("dense", DpStrategy::Dense),
        ("recursive", DpStrategy::Recursive),
    ] {
        let mut est = SelectivityEstimator::new(db, query, catalog, mode).with_strategy(strategy);
        let (sel, err) = est.get_selectivity(all);
        if sel.to_bits() != ref_sel.to_bits() || err.to_bits() != ref_err.to_bits() {
            return Err(format!(
                "{label} engine ({sel}, {err}) != reference recurrence ({ref_sel}, {ref_err})"
            ));
        }
    }
    Ok(())
}

/// The replayed chosen decomposition partitions the query and its factor
/// errors re-add to the DP error (same additions, same order), for both
/// engines and with pruning both off and on.
pub fn check_chosen_decomposition(
    db: &Database,
    query: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
) -> Result<(), String> {
    for (label, strategy, pruned) in [
        ("dense", DpStrategy::Dense, false),
        ("recursive", DpStrategy::Recursive, false),
        ("dense+pruning", DpStrategy::Dense, true),
    ] {
        let mut est = SelectivityEstimator::new(db, query, catalog, mode).with_strategy(strategy);
        if pruned {
            est = est.with_sit_driven_pruning();
        }
        let all = est.context().all();
        let (_, dp_err) = est.get_selectivity(all);
        let links = est.chosen_decomposition(all);
        let mut union = PredSet(0);
        let mut err_sum = 0.0;
        for &(p_prime, q) in &links {
            if !union.intersect(p_prime).is_empty() {
                return Err(format!("{label}: chosen P′ masks overlap"));
            }
            union = union.union(p_prime);
            err_sum += est.conditional_factor(p_prime, q).1;
        }
        if union != all {
            return Err(format!("{label}: chosen P′ masks do not cover the query"));
        }
        let tol = 1e-12 * dp_err.abs().max(1.0);
        if (err_sum - dp_err).abs() > tol {
            return Err(format!(
                "{label}: replayed chain error {err_sum} != DP error {dp_err}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_holds_through_n6() {
        check_lemma1(6).unwrap();
    }

    #[test]
    fn error_mode_laws_hold() {
        check_error_mode_laws().unwrap();
    }
}

//! The differential suite: every exactness invariant, run over the smoke
//! tier's generated scenarios, plus a property test pitting the
//! backtracking executor against brute-force enumeration on random tiny
//! databases (random NULLs, random join/filter/range mixes — shapes the
//! seeded scenarios cannot produce).
//!
//! CI runs exactly this (`cargo test -p sqe-oracle --test differential`);
//! the full tier adds queries but no new check kinds.

use proptest::prelude::*;
use sqe_core::{build_pool, ErrorMode, PoolSpec};
use sqe_engine::brute::{count_brute_force, DEFAULT_LIMIT};
use sqe_engine::table::TableBuilder;
use sqe_engine::{CmpOp, ColRef, Database, Predicate, TableId};
use sqe_oracle::invariants::{
    check_atomic_decomposition, check_chosen_decomposition, check_executor_differential,
    check_lemma1, check_reference_dp,
};
use sqe_oracle::{scenarios, ExactExecutor, OracleTier};

/// Reference DP is the unmemoized-search blow-up (`Σ 3^n` subset pairs);
/// cap it so `wide-n12` doesn't dominate the suite. Wider queries are
/// still covered by [`check_chosen_decomposition`], which runs the
/// production engines only.
const REFERENCE_DP_MAX_PREDS: usize = 10;

#[test]
fn executors_agree_on_every_smoke_query() {
    for sc in scenarios(OracleTier::Smoke) {
        for (i, q) in sc.queries.iter().enumerate() {
            check_executor_differential(&sc.db, &q.tables, &q.predicates)
                .unwrap_or_else(|e| panic!("{} query {i}: {e}", sc.name));
        }
    }
}

#[test]
fn atomic_decomposition_holds_on_oracle_truth() {
    for sc in scenarios(OracleTier::Smoke) {
        for (i, q) in sc.queries.iter().enumerate() {
            check_atomic_decomposition(&sc.db, q)
                .unwrap_or_else(|e| panic!("{} query {i}: {e}", sc.name));
        }
    }
}

#[test]
fn lemma1_counts_match_the_enumerator() {
    check_lemma1(6).unwrap();
}

#[test]
fn production_dp_engines_match_the_reference_recurrence() {
    for sc in scenarios(OracleTier::Smoke) {
        let pool = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
        for (i, q) in sc.queries.iter().enumerate() {
            if q.predicates.len() > REFERENCE_DP_MAX_PREDS {
                continue;
            }
            for mode in [ErrorMode::NInd, ErrorMode::Diff] {
                check_reference_dp(&sc.db, q, &pool, mode)
                    .unwrap_or_else(|e| panic!("{} query {i} {mode:?}: {e}", sc.name));
            }
        }
    }
}

#[test]
fn chosen_decompositions_replay_to_the_dp_error() {
    for sc in scenarios(OracleTier::Smoke) {
        let pool = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
        for (i, q) in sc.queries.iter().enumerate() {
            for mode in [ErrorMode::NInd, ErrorMode::Diff] {
                check_chosen_decomposition(&sc.db, q, &pool, mode)
                    .unwrap_or_else(|e| panic!("{} query {i} {mode:?}: {e}", sc.name));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Random tiny databases: executor vs brute force.
// ---------------------------------------------------------------------------

/// Rows of one 3-table database: per table, `(val_a, null_a, val_b,
/// null_b)` tuples (a value is NULL when its `null_*` byte is < 2, i.e.
/// with probability 0.2).
type RawTable = Vec<(i64, u8, i64, u8)>;

fn build_db(tables: &[RawTable; 3]) -> Database {
    let mut db = Database::new();
    for (i, rows) in tables.iter().enumerate() {
        let a: Vec<Option<i64>> = rows
            .iter()
            .map(|&(v, n, _, _)| (n >= 2).then_some(v))
            .collect();
        let b: Vec<Option<i64>> = rows
            .iter()
            .map(|&(_, _, v, n)| (n >= 2).then_some(v))
            .collect();
        db.add_table(
            TableBuilder::new(format!("t{i}"))
                .nullable_column("a", a)
                .nullable_column("b", b)
                .build()
                .expect("columns have equal length"),
        );
    }
    db
}

/// Decodes one raw predicate tuple into a join, filter, or range over the
/// 3-table schema.
fn decode_pred(kind: u8, t: u8, t2: u8, col: u8, col2: u8, x: i64, y: i64) -> Predicate {
    let t = u32::from(t % 3);
    let col = u16::from(col % 2);
    match kind % 3 {
        0 => {
            // Cross-table join; degrade to the next table when both ends
            // landed on the same one.
            let other = u32::from(t2 % 3);
            let other = if other == t { (t + 1) % 3 } else { other };
            Predicate::join(
                ColRef::new(TableId(t), col),
                ColRef::new(TableId(other), u16::from(col2 % 2)),
            )
        }
        1 => {
            let op = [
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Neq,
            ][(t2 % 6) as usize];
            Predicate::filter(ColRef::new(TableId(t), col), op, x)
        }
        _ => Predicate::range(ColRef::new(TableId(t), col), x.min(y), x.max(y)),
    }
}

fn raw_table() -> impl Strategy<Value = RawTable> {
    prop::collection::vec((0i64..5, 0u8..10, 0i64..5, 0u8..10), 1..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_databases_count_like_brute_force(
        tables in (raw_table(), raw_table(), raw_table()),
        raw_preds in prop::collection::vec(
            (0u8..3, 0u8..3, 0u8..3, 0u8..2, 0u8..2, -1i64..6, -1i64..6),
            0..5,
        ),
    ) {
        let db = build_db(&[tables.0, tables.1, tables.2]);
        let preds: Vec<Predicate> = raw_preds
            .into_iter()
            .map(|(k, t, t2, c, c2, x, y)| decode_pred(k, t, t2, c, c2, x, y))
            .collect();
        let all = [TableId(0), TableId(1), TableId(2)];

        let mut exec = ExactExecutor::new(&db);
        let mine = exec.cardinality(&all, &preds);
        let brute = count_brute_force(&db, &all, &preds, DEFAULT_LIMIT)
            .expect("cross product is tiny");
        prop_assert_eq!(mine, u128::from(brute));

        // And the full four-way differential on the same input.
        check_executor_differential(&db, &all, &preds)?;
    }
}

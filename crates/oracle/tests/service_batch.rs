//! Pins `estimate_batch` determinism: across `batch_threads ∈ {1, 2, 8}`
//! every [`Estimate`] field except `cached` is bit-identical — and equal
//! to a fresh single-threaded [`SelectivityEstimator`] over the same
//! catalog — and the answers are sane against oracle ground truth.
//!
//! `cached` is excluded by design: it reports whether the whole-query
//! cache answered, which depends on which worker got to a duplicate key
//! first (see the field's rustdoc in `sqe-service`). The batches here
//! contain each query twice precisely to exercise those races.

use std::num::NonZeroUsize;
use std::sync::Arc;

use sqe_core::{build_pool, ErrorMode, PoolSpec, SelectivityEstimator};
use sqe_engine::{CardinalityOracle, SpjQuery};
use sqe_oracle::{scenarios, OracleTier};
use sqe_service::{Estimate, EstimationService, ServiceConfig};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A fresh service (fresh snapshot, cold cache) with the given worker
/// count, so every thread-count run starts from identical cache state.
fn fresh_service(
    db: &Arc<sqe_engine::Database>,
    catalog: &sqe_core::SitCatalog,
    threads: usize,
) -> EstimationService {
    EstimationService::new(
        Arc::clone(db),
        catalog.clone(),
        ServiceConfig {
            mode: ErrorMode::Diff,
            batch_threads: Some(NonZeroUsize::new(threads).expect("non-zero")),
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn batch_is_deterministic_across_thread_counts() {
    for sc in scenarios(OracleTier::Smoke) {
        let catalog = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
        // Duplicate every query so parallel runs race the whole-query
        // cache key; append reversed so duplicates land on far-apart slots.
        let mut batch: Vec<SpjQuery> = sc.queries.clone();
        batch.extend(sc.queries.iter().rev().cloned());
        let db = Arc::new(sc.db);

        let runs: Vec<Vec<Estimate>> = THREAD_COUNTS
            .iter()
            .map(|&t| fresh_service(&db, &catalog, t).estimate_batch(&batch))
            .collect();

        let reference = &runs[0];
        for (run, &threads) in runs.iter().zip(&THREAD_COUNTS).skip(1) {
            assert_eq!(run.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(run).enumerate() {
                assert_eq!(
                    a.selectivity.to_bits(),
                    b.selectivity.to_bits(),
                    "{}: selectivity diverged at query {i} with {threads} threads",
                    sc.name
                );
                assert_eq!(
                    a.error.to_bits(),
                    b.error.to_bits(),
                    "{}: error diverged at query {i} with {threads} threads",
                    sc.name
                );
                assert_eq!(
                    a.cardinality.to_bits(),
                    b.cardinality.to_bits(),
                    "{}: cardinality diverged at query {i} with {threads} threads",
                    sc.name
                );
                assert_eq!(a.epoch, b.epoch, "{}: epoch diverged at query {i}", sc.name);
                // `cached` is deliberately NOT compared: it is the one
                // scheduling-dependent field.
            }
        }
    }
}

#[test]
fn batch_matches_a_fresh_single_threaded_estimator_and_oracle_truth() {
    let sc = scenarios(OracleTier::Smoke)
        .into_iter()
        .next()
        .expect("baseline scenario exists");
    let catalog = build_pool(&sc.db, &sc.queries, PoolSpec::ji(2)).expect("J2 pool");
    let db = Arc::new(sc.db);
    let estimates = fresh_service(&db, &catalog, 8).estimate_batch(&sc.queries);

    let mut oracle = CardinalityOracle::new(&db);
    for (q, est) in sc.queries.iter().zip(&estimates) {
        // Bit-identical to a from-scratch estimator over the same catalog:
        // the service's sharing layers must not perturb the math.
        let mut solo = SelectivityEstimator::new(&db, q, &catalog, ErrorMode::Diff);
        let all = solo.context().all();
        let (sel, err) = solo.get_selectivity(all);
        assert_eq!(est.selectivity.to_bits(), sel.to_bits());
        assert_eq!(est.error.to_bits(), err.to_bits());
        assert_eq!(est.cardinality.to_bits(), solo.cardinality(all).to_bits());
        assert_eq!(est.epoch, 0, "fresh service answers from epoch 0");

        // Sane against ground truth: on this tiny seeded scenario the
        // J2 Diff estimator stays within a generous q-error envelope.
        let truth = oracle
            .cardinality(&q.tables, &q.predicates)
            .expect("oracle cardinality") as f64;
        assert!(
            truth > 0.0,
            "workload queries are non-empty by construction"
        );
        let q_error =
            (est.cardinality.max(1e-300) / truth).max(truth / est.cardinality.max(1e-300));
        assert!(
            q_error < 50.0,
            "estimate {} vs truth {truth}: q-error {q_error}",
            est.cardinality
        );
    }
}

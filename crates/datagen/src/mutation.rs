//! Seeded mutation streams: TPC-C-flavoured churn over a generated
//! database.
//!
//! The live-catalog subsystem needs a realistic write workload to soak
//! against. This generator produces a deterministic stream of
//! [`DeltaBatch`]es mimicking the shape of TPC-C's transaction mix over
//! whatever schema it is pointed at:
//!
//! * **new-order inserts** (~50%) append rows to the *fact* table (the
//!   largest table — `sales` on the snowflake schema). Each new row clones
//!   a live row's attribute values — foreign keys stay valid by
//!   construction — bumps the id column past the current maximum, and
//!   applies a progressive upward shift to one "measure" column, so a long
//!   stream genuinely moves that column's distribution (this is what makes
//!   drift-triggered rebuilds reachable rather than theoretical);
//! * **payment-style updates** (~30%) nudge a numeric attribute of a
//!   random dimension row by a small signed delta;
//! * **delivery-style deletes** (~10%) drop a random fact row;
//! * **fact updates** (~10%) rewrite a fact measure in place.
//!
//! The generator maintains a shadow copy of the database (batches applied
//! as they are sealed, via [`sqe_engine::delta::apply_batch`]), so every
//! row index it emits is valid at its position in the stream, and the
//! whole stream is pinned by an FNV-1a [`MutationStream::fingerprint`]
//! over the op encoding — the oracle replays *exactly* this stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqe_engine::delta::{apply_batch, DeltaBatch, RowOp, TableDelta};
use sqe_engine::{Database, TableId};

/// Knobs for [`generate_mutations`]. Everything derives from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationConfig {
    /// Total row ops in the stream.
    pub ops: usize,
    /// Ops per [`DeltaBatch`] (the last batch may be shorter).
    pub batch_size: usize,
    /// RNG seed; equal seeds over equal databases give byte-equal streams.
    pub seed: u64,
    /// How far the drifting fact measure shifts over the whole stream, as
    /// a fraction of its initial value range (default 0.5): the knob that
    /// decides whether a stream stays under the drift threshold or blows
    /// through it.
    pub drift: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            ops: 1_000,
            batch_size: 100,
            seed: 0xC0FFEE,
            drift: 0.5,
        }
    }
}

/// A generated stream: the batches, the database state after applying all
/// of them, and a fingerprint pinning the exact op sequence.
#[derive(Debug, Clone)]
pub struct MutationStream {
    /// Batches in application order, `seq` numbered from 0.
    pub batches: Vec<DeltaBatch>,
    /// The database after every batch is applied — what a fully drained
    /// consumer must converge to.
    pub final_db: Database,
    /// FNV-1a over the canonical op encoding. Two streams with equal
    /// fingerprints apply identical mutations.
    pub fingerprint: u64,
    /// The fact-table measure column the stream drifts upward — the column
    /// to watch when asserting that drift-triggered rebuilds fire.
    pub measure: sqe_engine::ColRef,
}

/// Generates a seeded mutation stream against `db` (which is not
/// modified).
///
/// Panics if `db` has no table with at least one row or `batch_size == 0`
/// — a mutation stream over nothing is a caller bug.
pub fn generate_mutations(db: &Database, config: MutationConfig) -> MutationStream {
    assert!(config.batch_size > 0, "batch_size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Fact table: most rows, ties broken by arity (fact tables are wide —
    // at scale 0 every snowflake table has `min_rows` rows, and `sales`
    // wins on its 8 attributes). Dimensions: everything else with rows.
    let fact = (0..db.table_count())
        .map(|t| TableId(t as u32))
        .max_by_key(|&t| {
            (
                db.row_count(t).expect("dense ids"),
                db.schema(t).expect("dense ids").arity(),
            )
        })
        .expect("non-empty database");
    assert!(
        db.row_count(fact).expect("dense ids") > 0,
        "mutation stream needs at least one non-empty table"
    );
    let dims: Vec<TableId> = (0..db.table_count())
        .map(|t| TableId(t as u32))
        .filter(|&t| t != fact && db.row_count(t).unwrap_or(0) > 0)
        .collect();

    let fact_arity = db.schema(fact).expect("dense ids").arity();
    // The drifting measure: last column of the fact table (snowflake:
    // `sales.priority` is last, but `amount` is more interesting — pick
    // the column with the widest value range among non-id columns).
    let measure = (1..fact_arity as u16)
        .max_by_key(|&c| {
            db.column(sqe_engine::ColRef::new(fact, c))
                .ok()
                .and_then(|col| col.min_max())
                .map_or(0, |(lo, hi)| hi.saturating_sub(lo))
        })
        .unwrap_or(0);
    let measure_span = db
        .column(sqe_engine::ColRef::new(fact, measure))
        .ok()
        .and_then(|c| c.min_max())
        .map_or(100, |(lo, hi)| (hi - lo).max(1));
    let mut next_id = db
        .column(sqe_engine::ColRef::new(fact, 0))
        .ok()
        .and_then(|c| c.min_max())
        .map_or(0, |(_, hi)| hi + 1);

    let mut shadow = db.clone();
    let mut batches = Vec::new();
    let mut fp = Fnv::new();

    // Live row counts per table, tracked intra-batch so emitted row
    // indices are valid exactly where they apply.
    let mut rows: Vec<usize> = (0..db.table_count())
        .map(|t| db.row_count(TableId(t as u32)).expect("dense ids"))
        .collect();

    let mut emitted = 0usize;
    let mut seq = 0u64;
    while emitted < config.ops {
        let take = config.batch_size.min(config.ops - emitted);
        // One TableDelta per touched table, in first-touch order.
        let mut deltas: Vec<TableDelta> = Vec::new();
        for _ in 0..take {
            let progress = emitted as f64 / config.ops.max(1) as f64;
            let (table, op) = next_op(
                &mut rng,
                &shadow,
                fact,
                &dims,
                measure,
                measure_span,
                &mut next_id,
                &mut rows,
                progress,
                config.drift,
            );
            fp.op(table, &op);
            match deltas.iter_mut().find(|d| d.table == table) {
                Some(d) => d.ops.push(op),
                None => deltas.push(TableDelta {
                    table,
                    ops: vec![op],
                }),
            }
            emitted += 1;
        }
        let batch = DeltaBatch { seq, deltas };
        let (next, _log) = apply_batch(&shadow, &batch).expect("generated batch applies");
        shadow = next;
        batches.push(batch);
        seq += 1;
    }

    MutationStream {
        batches,
        final_db: shadow,
        fingerprint: fp.finish(),
        measure: sqe_engine::ColRef::new(fact, measure),
    }
}

/// Emits one op of the TPC-C-flavoured mix, updating the intra-batch row
/// counts.
#[allow(clippy::too_many_arguments)]
fn next_op(
    rng: &mut StdRng,
    shadow: &Database,
    fact: TableId,
    dims: &[TableId],
    measure: u16,
    measure_span: i64,
    next_id: &mut i64,
    rows: &mut [usize],
    progress: f64,
    drift: f64,
) -> (TableId, RowOp) {
    let fact_rows = rows[fact.0 as usize];
    let roll = rng.gen_range(0..100u32);
    // Deletes and dimension updates need live rows to hit; degrade to
    // inserts when the stream has drained a table empty.
    if roll < 50 || fact_rows == 0 {
        // New-order insert: clone a live fact row's attributes (FKs stay
        // valid), fresh id, drifted measure.
        let template = shadow
            .table(fact)
            .expect("fact exists")
            .columns()
            .iter()
            .map(|c| {
                if c.is_empty() {
                    None
                } else {
                    c.get(rng.gen_range(0..c.len()))
                }
            })
            .collect::<Vec<_>>();
        let mut values = template;
        values[0] = Some(*next_id);
        *next_id += 1;
        let shift = (drift * progress * measure_span as f64) as i64;
        values[measure as usize] = Some(
            values[measure as usize].unwrap_or(0) + shift + rng.gen_range(0..=measure_span / 20),
        );
        rows[fact.0 as usize] += 1;
        (fact, RowOp::Insert { values })
    } else if roll < 80 && !dims.is_empty() {
        // Payment-style dimension update: nudge a numeric attribute.
        let dim = dims[rng.gen_range(0..dims.len())];
        let arity = shadow.schema(dim).expect("dim exists").arity() as u16;
        let column = if arity > 1 {
            rng.gen_range(1..arity)
        } else {
            0
        };
        let row = rng.gen_range(0..rows[dim.0 as usize]);
        let old = shadow
            .column(sqe_engine::ColRef::new(dim, column))
            .ok()
            .and_then(|c| c.get(row.min(c.len().saturating_sub(1))))
            .unwrap_or(0);
        let value = Some(old + rng.gen_range(-10..=10));
        (dim, RowOp::Update { row, column, value })
    } else if roll < 90 {
        // Delivery-style delete from the fact table.
        let row = rng.gen_range(0..fact_rows);
        rows[fact.0 as usize] -= 1;
        (fact, RowOp::Delete { row })
    } else {
        // In-place fact measure rewrite.
        let row = rng.gen_range(0..fact_rows);
        let value = Some(rng.gen_range(0..=measure_span));
        (
            fact,
            RowOp::Update {
                row,
                column: measure,
                value,
            },
        )
    }
}

/// Incremental FNV-1a over a canonical op encoding.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn op(&mut self, table: TableId, op: &RowOp) {
        self.i64(table.0 as i64);
        match op {
            RowOp::Insert { values } => {
                self.bytes(b"I");
                for v in values {
                    self.i64(v.map_or(i64::MIN, |x| x));
                    self.bytes(&[v.is_some() as u8]);
                }
            }
            RowOp::Delete { row } => {
                self.bytes(b"D");
                self.i64(*row as i64);
            }
            RowOp::Update { row, column, value } => {
                self.bytes(b"U");
                self.i64(*row as i64);
                self.i64(*column as i64);
                self.i64(value.map_or(i64::MIN, |x| x));
                self.bytes(&[value.is_some() as u8]);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowflake::{Snowflake, SnowflakeConfig};

    fn tiny_db() -> Database {
        Snowflake::generate(SnowflakeConfig {
            scale: 0.0,
            min_rows: 40,
            ..SnowflakeConfig::default()
        })
        .db
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let db = tiny_db();
        let cfg = MutationConfig {
            ops: 300,
            batch_size: 50,
            ..MutationConfig::default()
        };
        let a = generate_mutations(&db, cfg);
        let b = generate_mutations(&db, cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.batches, b.batches);
        assert_eq!(
            crate::export::database_fingerprint(&a.final_db),
            crate::export::database_fingerprint(&b.final_db),
        );
        let c = generate_mutations(&db, MutationConfig { seed: 999, ..cfg });
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn replaying_batches_reaches_final_db() {
        let db = tiny_db();
        let stream = generate_mutations(
            &db,
            MutationConfig {
                ops: 200,
                batch_size: 37,
                ..MutationConfig::default()
            },
        );
        assert_eq!(stream.batches.len(), 200usize.div_ceil(37));
        let mut replay = db.clone();
        for batch in &stream.batches {
            let (next, _) = apply_batch(&replay, batch).expect("replay applies");
            replay = next;
        }
        assert_eq!(
            crate::export::database_fingerprint(&replay),
            crate::export::database_fingerprint(&stream.final_db),
        );
    }

    #[test]
    fn mix_touches_fact_and_dimensions() {
        let db = tiny_db();
        let stream = generate_mutations(
            &db,
            MutationConfig {
                ops: 400,
                batch_size: 100,
                ..MutationConfig::default()
            },
        );
        let mut touched: Vec<TableId> = stream.batches.iter().flat_map(|b| b.tables()).collect();
        touched.sort_unstable();
        touched.dedup();
        assert!(touched.len() > 1, "stream should touch several tables");
        let (_, fact) = db.table_by_name("sales").expect("snowflake fact");
        assert!(touched.contains(&fact));
        // Inserts dominate: the fact table must have grown net.
        assert!(
            stream.final_db.row_count(fact).unwrap() > db.row_count(fact).unwrap(),
            "TPC-C-flavoured mix is insert-heavy"
        );
    }

    #[test]
    fn drift_shifts_the_measure_distribution() {
        let db = tiny_db();
        let stream = generate_mutations(
            &db,
            MutationConfig {
                ops: 1_000,
                batch_size: 100,
                drift: 2.0,
                ..MutationConfig::default()
            },
        );
        let measure = stream.measure;
        let mean = |d: &Database| {
            let c = d.column(measure).unwrap();
            c.iter_valid().sum::<i64>() as f64 / c.len().max(1) as f64
        };
        assert!(
            mean(&stream.final_db) > mean(&db) * 1.2,
            "heavy drift must move the measure's mean visibly"
        );
    }
}

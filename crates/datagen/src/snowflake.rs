//! Snowflake-schema database generator (§5 "Data Sets").
//!
//! Eight tables arranged as a snowflake around a `sales` fact table:
//!
//! ```text
//! sales ──< customer ──< nation
//!   │ ╲──< store    ──< region
//!   ╰───< product   ──< category
//!                    ╲─< supplier
//! ```
//!
//! * Table sizes span 1K–1M at scale 1.0 (the paper's range) and shrink
//!   proportionally with the scale factor.
//! * Foreign keys are sampled from a **Zipfian** distribution over the
//!   referenced table, so join fan-out is skewed.
//! * Selected dimension attributes are **correlated with the Zipf
//!   popularity rank** of their row — exactly the structure that breaks the
//!   independence assumption (a filter on such an attribute selects rows
//!   with systematically higher/lower join fan-out).
//! * Two join edges violate referential integrity: a configurable fraction
//!   of `sales.cust_fk` is NULLed at random, and of `product.supp_fk`
//!   correlated with `product.price` (the paper's "random or correlated"
//!   dangling tuples).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqe_engine::{ColRef, Column, Database, Predicate, Table, TableId, TableSchema};

use crate::dist::{CorrelatedMap, Zipf};

/// One foreign-key join edge of the schema: `fk` references `pk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Referencing (fact-side) column.
    pub fk: ColRef,
    /// Referenced (dimension-side) key column.
    pub pk: ColRef,
}

impl JoinEdge {
    /// The equi-join predicate for this edge.
    pub fn predicate(&self) -> Predicate {
        Predicate::join(self.fk, self.pk)
    }
}

/// Configuration for the snowflake generator.
#[derive(Debug, Clone, Copy)]
pub struct SnowflakeConfig {
    /// Multiplier on the paper's table sizes (1.0 → 1K–1M rows). The
    /// default keeps experiments laptop-friendly.
    pub scale: f64,
    /// Zipf exponent for foreign-key fan-out (0 = uniform; the paper's
    /// motivating example wants noticeable skew).
    pub theta: f64,
    /// Fraction of dangling (NULL) foreign keys on the affected edges,
    /// 0.05–0.20 in the paper.
    pub dangling_frac: f64,
    /// Strength of the rank–attribute correlations, `0.0..=1.0`: every
    /// rank-correlated attribute's slope is scaled by this factor, so `1.0`
    /// (the default) keeps the paper's full correlation structure —
    /// bit-identical to the pre-knob generator — while `0.0` flattens every
    /// such attribute into pure noise around its base value (independence
    /// holds, SITs should stop mattering). Intermediate values
    /// interpolate; the accuracy harness sweeps this knob to verify the
    /// estimator's advantage grows with the correlation it exploits.
    pub correlation: f64,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Minimum rows per table after scaling.
    pub min_rows: usize,
}

impl Default for SnowflakeConfig {
    fn default() -> Self {
        SnowflakeConfig {
            scale: 0.01,
            theta: 1.0,
            dangling_frac: 0.10,
            correlation: 1.0,
            seed: 0x5157_4531,
            min_rows: 200,
        }
    }
}

/// A generated snowflake database with its schema metadata.
#[derive(Debug)]
pub struct Snowflake {
    /// The populated database.
    pub db: Database,
    /// The seven foreign-key edges of the snowflake.
    pub join_edges: Vec<JoinEdge>,
    /// Non-key columns suitable for filter predicates.
    pub filter_columns: Vec<ColRef>,
    /// Table ids in generation order:
    /// `sales, customer, nation, product, category, supplier, store, region`.
    pub tables: Vec<TableId>,
}

impl Snowflake {
    /// Looks up a table id by name.
    pub fn table(&self, name: &str) -> TableId {
        self.db
            .catalog()
            .table_id(name)
            .unwrap_or_else(|| panic!("snowflake table {name} exists"))
    }

    /// Looks up a column by `"table.column"`.
    pub fn col(&self, qualified: &str) -> ColRef {
        self.db
            .col(qualified)
            .unwrap_or_else(|| panic!("snowflake column {qualified} exists"))
    }

    /// Generates the database.
    pub fn generate(config: SnowflakeConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let size =
            |base: usize| -> usize { ((base as f64 * config.scale) as usize).max(config.min_rows) };
        // Every rank-correlated attribute routes through this constructor
        // so `config.correlation` scales its slope; at the default `1.0`
        // the multiplication is exact and the generator stays bit-identical
        // to the pre-knob output (the RNG consumption never changes).
        let corr_map = |base: i64, slope: f64, noise: i64| {
            CorrelatedMap::new(base, slope * config.correlation, noise)
        };

        let mut db = Database::new();
        let mut filter_columns = Vec::new();
        let mut tables = Vec::new();

        // --- Leaf dimensions -------------------------------------------
        // nation(id, continent, gdp, population)
        let n_nation = size(1_000);
        let nation = build_dim(
            "nation",
            n_nation,
            &[
                ("continent", AttrKind::Uniform { lo: 0, hi: 7 }),
                (
                    "gdp",
                    AttrKind::RankCorrelated {
                        map: corr_map(1_000, 9.0, 40),
                    },
                ),
                (
                    "population",
                    AttrKind::Zipfy {
                        domain: 5_000,
                        theta: config.theta,
                    },
                ),
            ],
            &mut rng,
        );
        // region(id, climate, density, wealth)
        let n_region = size(1_000);
        let region = build_dim(
            "region",
            n_region,
            &[
                ("climate", AttrKind::Uniform { lo: 0, hi: 4 }),
                (
                    "density",
                    AttrKind::Zipfy {
                        domain: 2_000,
                        theta: config.theta,
                    },
                ),
                (
                    "wealth",
                    AttrKind::RankCorrelated {
                        map: corr_map(500, 4.0, 25),
                    },
                ),
            ],
            &mut rng,
        );
        // category(id, margin, popularity, tax)
        let n_category = size(1_000);
        let category = build_dim(
            "category",
            n_category,
            &[
                (
                    "margin",
                    AttrKind::RankCorrelated {
                        map: corr_map(100, 2.0, 10),
                    },
                ),
                (
                    "popularity",
                    AttrKind::Zipfy {
                        domain: 1_000,
                        theta: config.theta,
                    },
                ),
                ("tax", AttrKind::Uniform { lo: 0, hi: 25 }),
            ],
            &mut rng,
        );
        // supplier(id, quality, capacity, rating)
        let n_supplier = size(10_000);
        let supplier = build_dim(
            "supplier",
            n_supplier,
            &[
                (
                    "quality",
                    AttrKind::RankCorrelated {
                        map: corr_map(0, 0.01, 3),
                    },
                ),
                (
                    "capacity",
                    AttrKind::Uniform {
                        lo: 100,
                        hi: 10_000,
                    },
                ),
                (
                    "rating",
                    AttrKind::Zipfy {
                        domain: 10,
                        theta: config.theta,
                    },
                ),
            ],
            &mut rng,
        );

        // --- Mid dimensions (with their own FKs) ------------------------
        // customer(id, nation_fk, balance, age, segment)
        let n_customer = size(100_000);
        let customer = build_dim_with_fks(
            "customer",
            n_customer,
            &[("nation_fk", n_nation)],
            &[
                // balance grows with customer popularity rank: popular
                // customers (low rank = low id) have *low* balance, so a
                // high-balance filter selects low-fan-out customers.
                (
                    "balance",
                    AttrKind::RankCorrelated {
                        map: corr_map(0, 0.5, 50),
                    },
                ),
                ("age", AttrKind::Uniform { lo: 18, hi: 90 }),
                (
                    "segment",
                    AttrKind::Zipfy {
                        domain: 8,
                        theta: config.theta,
                    },
                ),
            ],
            config.theta,
            &mut rng,
        );
        // product(id, cat_fk, supp_fk, price, weight, rating)
        let n_product = size(50_000);
        let mut product = build_dim_with_fks(
            "product",
            n_product,
            &[("cat_fk", n_category), ("supp_fk", n_supplier)],
            &[
                // price anti-correlated with popularity: cheap products are
                // the popular (low-rank) ones.
                (
                    "price",
                    AttrKind::RankCorrelated {
                        map: corr_map(100, 0.8, 60),
                    },
                ),
                ("weight", AttrKind::Uniform { lo: 1, hi: 500 }),
                (
                    "rating",
                    AttrKind::Zipfy {
                        domain: 10,
                        theta: config.theta,
                    },
                ),
            ],
            config.theta,
            &mut rng,
        );
        // Correlated dangling FKs: expensive products lose their supplier.
        make_dangling_correlated(
            &mut product,
            "supp_fk",
            "price",
            config.dangling_frac,
            &mut rng,
        );
        // store(id, region_fk, size, revenue, staff)
        let n_store = size(5_000);
        let store = build_dim_with_fks(
            "store",
            n_store,
            &[("region_fk", n_region)],
            &[
                ("size", AttrKind::Uniform { lo: 50, hi: 5_000 }),
                (
                    "revenue",
                    AttrKind::RankCorrelated {
                        map: corr_map(1_000, 3.0, 200),
                    },
                ),
                (
                    "staff",
                    AttrKind::Zipfy {
                        domain: 100,
                        theta: config.theta,
                    },
                ),
            ],
            config.theta,
            &mut rng,
        );

        // --- Fact table --------------------------------------------------
        // sales(id, cust_fk, prod_fk, store_fk, quantity, amount, discount,
        // priority)
        let n_sales = size(1_000_000);
        let zipf_cust = Zipf::new(n_customer, config.theta);
        let zipf_prod = Zipf::new(n_product, config.theta);
        let zipf_store = Zipf::new(n_store, config.theta * 0.5);
        let mut id = Vec::with_capacity(n_sales);
        let mut cust_fk = Vec::with_capacity(n_sales);
        let mut prod_fk = Vec::with_capacity(n_sales);
        let mut store_fk = Vec::with_capacity(n_sales);
        let mut quantity = Vec::with_capacity(n_sales);
        let mut amount = Vec::with_capacity(n_sales);
        let mut discount = Vec::with_capacity(n_sales);
        let mut priority = Vec::with_capacity(n_sales);
        let amount_map = corr_map(10, 0.02, 20);
        for i in 0..n_sales {
            id.push(i as i64);
            // Random dangling on cust_fk.
            if rng.gen_bool(config.dangling_frac) {
                cust_fk.push(None);
            } else {
                cust_fk.push(Some(zipf_cust.sample(&mut rng) as i64));
            }
            let prod = zipf_prod.sample(&mut rng);
            prod_fk.push(Some(prod as i64));
            store_fk.push(Some(zipf_store.sample(&mut rng) as i64));
            let qty = rng.gen_range(1..=50);
            quantity.push(qty);
            // amount correlated with product rank (popular product → cheap).
            amount.push(amount_map.apply(prod as i64, &mut rng).max(1));
            // discount correlated with quantity (bulk discounts): the
            // in-table correlation that multidimensional SITs capture.
            discount.push((qty * 3 / 5 + rng.gen_range(0..=4)).min(30));
            priority.push(rng.gen_range(0..=4));
        }
        let sales = Table::new(
            TableSchema::new(
                "sales",
                &[
                    "id", "cust_fk", "prod_fk", "store_fk", "quantity", "amount", "discount",
                    "priority",
                ],
            ),
            vec![
                Column::from_values(id),
                Column::from_options(cust_fk),
                Column::from_options(prod_fk),
                Column::from_options(store_fk),
                Column::from_values(quantity),
                Column::from_values(amount),
                Column::from_values(discount),
                Column::from_values(priority),
            ],
        )
        .expect("consistent sales table");

        // --- Register everything ---------------------------------------
        for t in [
            sales, customer, nation, product, category, supplier, store, region,
        ] {
            tables.push(db.add_table(t));
        }
        let col = |q: &str| db.col(q).expect("generated column exists");
        let join_edges = vec![
            JoinEdge {
                fk: col("sales.cust_fk"),
                pk: col("customer.id"),
            },
            JoinEdge {
                fk: col("sales.prod_fk"),
                pk: col("product.id"),
            },
            JoinEdge {
                fk: col("sales.store_fk"),
                pk: col("store.id"),
            },
            JoinEdge {
                fk: col("customer.nation_fk"),
                pk: col("nation.id"),
            },
            JoinEdge {
                fk: col("product.cat_fk"),
                pk: col("category.id"),
            },
            JoinEdge {
                fk: col("product.supp_fk"),
                pk: col("supplier.id"),
            },
            JoinEdge {
                fk: col("store.region_fk"),
                pk: col("region.id"),
            },
        ];
        // `sales.discount` is deliberately NOT a default filter column: it
        // is generated correlated with `sales.quantity`, an *intra-table*
        // correlation that no unidimensional SIT can capture (the paper's
        // setting). Workloads that want it (e.g. the multidimensional-SIT
        // experiment) add it explicitly.
        for q in [
            "sales.quantity",
            "sales.amount",
            "sales.priority",
            "customer.balance",
            "customer.age",
            "customer.segment",
            "nation.continent",
            "nation.gdp",
            "nation.population",
            "product.price",
            "product.weight",
            "product.rating",
            "category.margin",
            "category.popularity",
            "category.tax",
            "supplier.quality",
            "supplier.capacity",
            "supplier.rating",
            "store.size",
            "store.revenue",
            "store.staff",
            "region.climate",
            "region.density",
            "region.wealth",
        ] {
            filter_columns.push(col(q));
        }

        Snowflake {
            db,
            join_edges,
            filter_columns,
            tables,
        }
    }
}

/// How a non-key attribute is generated (shared with the TPC-C-flavoured
/// generator in [`crate::tpcc`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum AttrKind {
    /// Uniform over `[lo, hi]`.
    Uniform { lo: i64, hi: i64 },
    /// Zipf-distributed over `0..domain` (value skew, not rank skew).
    Zipfy { domain: usize, theta: f64 },
    /// Correlated with the row's id (= its Zipf popularity rank).
    RankCorrelated { map: CorrelatedMap },
}

fn gen_attr(kind: AttrKind, row: usize, rng: &mut StdRng, zipf_cache: &mut Option<Zipf>) -> i64 {
    match kind {
        AttrKind::Uniform { lo, hi } => rng.gen_range(lo..=hi),
        AttrKind::Zipfy { domain, theta } => {
            let z = zipf_cache.get_or_insert_with(|| Zipf::new(domain, theta));
            z.sample(rng) as i64
        }
        AttrKind::RankCorrelated { map } => map.apply(row as i64, rng),
    }
}

pub(crate) fn build_dim(
    name: &str,
    rows: usize,
    attrs: &[(&str, AttrKind)],
    rng: &mut StdRng,
) -> Table {
    build_dim_with_fks(name, rows, &[], attrs, 0.0, rng)
}

pub(crate) fn build_dim_with_fks(
    name: &str,
    rows: usize,
    fks: &[(&str, usize)],
    attrs: &[(&str, AttrKind)],
    theta: f64,
    rng: &mut StdRng,
) -> Table {
    let mut names: Vec<&str> = vec!["id"];
    names.extend(fks.iter().map(|(n, _)| *n));
    names.extend(attrs.iter().map(|(n, _)| *n));

    let mut columns: Vec<Column> = Vec::with_capacity(names.len());
    columns.push(Column::from_values((0..rows as i64).collect()));
    for &(_, target) in fks {
        let z = Zipf::new(target, theta);
        let vals: Vec<Option<i64>> = (0..rows).map(|_| Some(z.sample(rng) as i64)).collect();
        columns.push(Column::from_options(vals));
    }
    for &(_, kind) in attrs {
        let mut cache = None;
        let vals: Vec<i64> = (0..rows)
            .map(|r| gen_attr(kind, r, rng, &mut cache))
            .collect();
        columns.push(Column::from_values(vals));
    }
    Table::new(TableSchema::new(name, &names), columns).expect("consistent dimension table")
}

/// NULLs out `frac` of `fk_col`, preferring rows with the highest values of
/// `corr_col` (the paper's "correlated with attribute values" variant).
pub(crate) fn make_dangling_correlated(
    table: &mut Table,
    fk_col: &str,
    corr_col: &str,
    frac: f64,
    _rng: &mut StdRng,
) {
    let rows = table.row_count();
    let k = (rows as f64 * frac) as usize;
    if k == 0 {
        return;
    }
    let corr = table
        .column_by_name(corr_col)
        .expect("correlation column exists")
        .clone();
    let mut order: Vec<usize> = (0..rows).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(corr.get(r).unwrap_or(i64::MIN)));
    let drop: std::collections::HashSet<usize> = order.into_iter().take(k).collect();

    let fk_idx = table
        .schema()
        .column_index(fk_col)
        .expect("fk column exists");
    let old = table.column(fk_idx).expect("fk column exists").clone();
    let new_vals: Vec<Option<i64>> = (0..rows)
        .map(|r| if drop.contains(&r) { None } else { old.get(r) })
        .collect();
    let replaced = table.replace_column(fk_idx, Column::from_options(new_vals));
    debug_assert!(replaced, "fk column replacement preserves length");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::pearson;
    use sqe_engine::execute;

    fn small() -> Snowflake {
        Snowflake::generate(SnowflakeConfig {
            scale: 0.002,
            min_rows: 100,
            ..SnowflakeConfig::default()
        })
    }

    #[test]
    fn correlation_knob_default_is_bit_identical() {
        let implicit = small();
        let explicit = Snowflake::generate(SnowflakeConfig {
            scale: 0.002,
            min_rows: 100,
            correlation: 1.0,
            ..SnowflakeConfig::default()
        });
        assert_eq!(
            crate::export::export_database_json(&implicit.db),
            crate::export::export_database_json(&explicit.db),
            "correlation = 1.0 must not perturb a single byte"
        );
    }

    #[test]
    fn correlation_zero_flattens_rank_correlated_attributes() {
        let balances = |sf: &Snowflake| -> Vec<f64> {
            let col = sf.db.column(sf.col("customer.balance")).unwrap();
            col.iter().map(|v| v.unwrap_or(0) as f64).collect()
        };
        let corr_of = |sf: &Snowflake| -> f64 {
            let ys = balances(sf);
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            pearson(&xs, &ys)
        };
        let full = corr_of(&small());
        let flat = corr_of(&Snowflake::generate(SnowflakeConfig {
            scale: 0.002,
            min_rows: 100,
            correlation: 0.0,
            ..SnowflakeConfig::default()
        }));
        assert!(full > 0.5, "full correlation structure present: r = {full}");
        assert!(
            flat.abs() < 0.2,
            "correlation = 0 flattens the map: r = {flat}"
        );
    }

    #[test]
    fn has_eight_tables_with_expected_arity() {
        let sf = small();
        assert_eq!(sf.db.table_count(), 8);
        for (name, arity) in [
            ("sales", 8),
            ("customer", 5),
            ("nation", 4),
            ("product", 6),
            ("category", 4),
            ("supplier", 4),
            ("store", 5),
            ("region", 4),
        ] {
            let (t, _) = sf.db.table_by_name(name).unwrap();
            assert_eq!(t.schema().arity(), arity, "{name}");
            assert!(t.row_count() >= 100, "{name} too small");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        for name in ["sales", "customer", "product"] {
            let (ta, _) = a.db.table_by_name(name).unwrap();
            let (tb, _) = b.db.table_by_name(name).unwrap();
            assert_eq!(ta.columns(), tb.columns(), "{name} differs across runs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = Snowflake::generate(SnowflakeConfig {
            seed: 999,
            scale: 0.002,
            min_rows: 100,
            ..SnowflakeConfig::default()
        });
        let (ta, _) = a.db.table_by_name("sales").unwrap();
        let (tb, _) = b.db.table_by_name("sales").unwrap();
        assert_ne!(ta.columns(), tb.columns());
    }

    #[test]
    fn dangling_fraction_is_respected() {
        let sf = small();
        let (sales, _) = sf.db.table_by_name("sales").unwrap();
        let nulls = sales.column_by_name("cust_fk").unwrap().null_count();
        let frac = nulls as f64 / sales.row_count() as f64;
        assert!((frac - 0.10).abs() < 0.03, "cust_fk dangling frac {frac}");
        let (product, _) = sf.db.table_by_name("product").unwrap();
        let nulls = product.column_by_name("supp_fk").unwrap().null_count();
        let frac = nulls as f64 / product.row_count() as f64;
        assert!((frac - 0.10).abs() < 0.02, "supp_fk dangling frac {frac}");
    }

    #[test]
    fn correlated_dangling_hits_expensive_products() {
        let sf = small();
        let (product, _) = sf.db.table_by_name("product").unwrap();
        let price = product.column_by_name("price").unwrap();
        let supp = product.column_by_name("supp_fk").unwrap();
        // Mean price of dangling rows must exceed mean price of intact rows.
        let (mut sum_d, mut n_d, mut sum_i, mut n_i) = (0f64, 0f64, 0f64, 0f64);
        for r in 0..product.row_count() {
            let p = price.get(r).unwrap() as f64;
            if supp.get(r).is_none() {
                sum_d += p;
                n_d += 1.0;
            } else {
                sum_i += p;
                n_i += 1.0;
            }
        }
        assert!(sum_d / n_d > sum_i / n_i, "dangling not price-correlated");
    }

    #[test]
    fn fk_fanout_is_skewed() {
        let sf = small();
        let (sales, _) = sf.db.table_by_name("sales").unwrap();
        let prod_fk = sales.column_by_name("prod_fk").unwrap();
        let mut counts: std::collections::HashMap<i64, u64> = std::collections::HashMap::new();
        for v in prod_fk.iter_valid() {
            *counts.entry(v).or_default() += 1;
        }
        let max = *counts.values().max().unwrap() as f64;
        let avg = sales.row_count() as f64 / counts.len() as f64;
        assert!(max > 5.0 * avg, "fan-out not skewed: max {max}, avg {avg}");
    }

    #[test]
    fn all_fks_reference_valid_rows() {
        let sf = small();
        for e in &sf.join_edges {
            let fk = sf.db.column(e.fk).unwrap();
            let target_rows = sf.db.row_count(e.pk.table).unwrap() as i64;
            for v in fk.iter_valid() {
                assert!((0..target_rows).contains(&v), "fk {v} out of range");
            }
        }
    }

    #[test]
    fn joins_execute_and_are_nonempty() {
        let sf = small();
        for e in &sf.join_edges {
            let tables = [e.fk.table, e.pk.table];
            let card = execute(&sf.db, &tables, &[e.predicate()]).unwrap();
            assert!(card > 0, "join edge produced empty result");
        }
    }

    #[test]
    fn filter_columns_resolve() {
        let sf = small();
        assert_eq!(sf.filter_columns.len(), 24);
        for &c in &sf.filter_columns {
            assert!(sf.db.column(c).is_ok());
        }
    }
}

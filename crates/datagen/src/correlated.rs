//! High-correlation star scenario for estimator-backend comparisons.
//!
//! A deliberately adversarial-for-independence schema: a small star of
//! `fact(id, dim_fk, a, b, c)` ⋈ `dim(id, d)` where the three fact
//! attributes are *near-duplicates of each other* (`b ≈ a + ε`,
//! `c ≈ a + ε'`) while the join key is drawn independently of all of them.
//! A conjunction of range filters over `{a, b, c}` therefore selects
//! almost exactly the rows the narrowest single filter selects — but any
//! estimator that multiplies per-filter conditionals (the maxDiff/`diff`
//! path has no statistic connecting two filters *on the same table*)
//! underestimates it by the product of the redundant factors.
//!
//! The Bayesian-network backend (`sqe_core::bn`) exists for exactly this
//! shape: its per-table Chow-Liu tree links `a—b—c` with near-maximal
//! mutual information and conditions each filter on its already-applied
//! same-table neighbors. The `corr-*` scenario family in the oracle
//! accuracy harness is built from this generator, and the CI accuracy gate
//! (`gate_bn`) holds the BN backend to a better max q-error than `diff` on
//! it. Keeping the join key independent of `a/b/c` isolates the effect:
//! whatever the DP does with the join factor is identical under both
//! backends, so the measured gap is purely the same-table conditioning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqe_engine::{Column, Database, Table, TableSchema};

use crate::dist::Zipf;
use crate::snowflake::{JoinEdge, Snowflake};

/// Knobs of the correlated star. Everything is deterministic per seed.
#[derive(Debug, Clone, Copy)]
pub struct CorrelatedStarConfig {
    /// Rows of the fact table.
    pub rows: usize,
    /// Rows of the dimension table.
    pub dims: usize,
    /// Value domain of the base attribute `a` (`0..domain`).
    pub domain: i64,
    /// Half-width of the uniform noise tying `b` and `c` to `a`. Small
    /// relative to `domain` ⇒ near-deterministic dependence.
    pub noise: i64,
    /// Zipf exponent of the fact→dim fan-out (skewing the join changes
    /// nothing about the filter correlation — the key stays independent of
    /// `a/b/c` — but keeps the join factor realistic).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorrelatedStarConfig {
    fn default() -> Self {
        CorrelatedStarConfig {
            rows: 160,
            dims: 40,
            domain: 200,
            noise: 6,
            theta: 1.0,
            seed: 0xC0_5217,
        }
    }
}

/// Generates the correlated star, packaged as a [`Snowflake`] so the
/// workload generator and pool builders consume it unchanged. Only the
/// correlated fact attributes are filterable — every generated filter
/// conjunction lands on the dependence structure under test.
pub fn correlated_star(config: CorrelatedStarConfig) -> Snowflake {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.dims.max(1), config.theta);

    let n = config.rows;
    let mut dim_fk = Vec::with_capacity(n);
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    let mut c = Vec::with_capacity(n);
    let eps = |rng: &mut StdRng| rng.gen_range(-config.noise..=config.noise);
    for _ in 0..n {
        dim_fk.push(Some(zipf.sample(&mut rng) as i64));
        let base = rng.gen_range(0..config.domain);
        a.push(base);
        b.push((base + eps(&mut rng)).clamp(0, config.domain - 1));
        c.push((base + eps(&mut rng)).clamp(0, config.domain - 1));
    }
    let fact = Table::new(
        TableSchema::new("fact", &["id", "dim_fk", "a", "b", "c"]),
        vec![
            Column::from_values((0..n as i64).collect()),
            Column::from_options(dim_fk),
            Column::from_values(a),
            Column::from_values(b),
            Column::from_values(c),
        ],
    )
    .expect("consistent fact table");

    let dim = Table::new(
        TableSchema::new("dim", &["id", "d"]),
        vec![
            Column::from_values((0..config.dims as i64).collect()),
            Column::from_values((0..config.dims).map(|_| rng.gen_range(0..100)).collect()),
        ],
    )
    .expect("consistent dim table");

    let mut db = Database::new();
    let tables = vec![db.add_table(fact), db.add_table(dim)];
    let col = |q: &str| db.col(q).expect("generated column exists");

    let join_edges = vec![JoinEdge {
        fk: col("fact.dim_fk"),
        pk: col("dim.id"),
    }];
    let filter_columns = vec![col("fact.a"), col("fact.b"), col("fact.c")];

    Snowflake {
        db,
        join_edges,
        filter_columns,
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::pearson;
    use sqe_engine::execute;

    fn star() -> Snowflake {
        correlated_star(CorrelatedStarConfig::default())
    }

    #[test]
    fn attributes_are_strongly_correlated_and_key_is_not() {
        let sf = star();
        let vals = |q: &str| -> Vec<f64> {
            sf.db
                .column(sf.col(q))
                .unwrap()
                .iter()
                .map(|v| v.unwrap_or(0) as f64)
                .collect()
        };
        let (a, b, c, fk) = (
            vals("fact.a"),
            vals("fact.b"),
            vals("fact.c"),
            vals("fact.dim_fk"),
        );
        assert!(pearson(&a, &b) > 0.95, "a–b r = {}", pearson(&a, &b));
        assert!(pearson(&a, &c) > 0.95, "a–c r = {}", pearson(&a, &c));
        assert!(
            pearson(&a, &fk).abs() < 0.25,
            "join key must stay independent of a: r = {}",
            pearson(&a, &fk)
        );
    }

    #[test]
    fn star_is_deterministic_and_join_is_nonempty() {
        let x = star();
        let y = star();
        let (tx, _) = x.db.table_by_name("fact").unwrap();
        let (ty, _) = y.db.table_by_name("fact").unwrap();
        assert_eq!(tx.columns(), ty.columns());

        let e = x.join_edges[0];
        let card = execute(&x.db, &[e.fk.table, e.pk.table], &[e.predicate()]).unwrap();
        assert!(card > 0);
    }

    #[test]
    fn conjunction_of_matched_ranges_defies_independence() {
        // The defining property: P(a∈W ∧ b∈W) ≈ P(a∈W), far above
        // P(a∈W)·P(b∈W) — the gap the BN backend closes.
        let sf = star();
        let (fact, _) = sf.db.table_by_name("fact").unwrap();
        let (a, b) = (
            fact.column_by_name("a").unwrap(),
            fact.column_by_name("b").unwrap(),
        );
        let win = |v: Option<i64>| matches!(v, Some(x) if (40..=100).contains(&x));
        let n = fact.row_count() as f64;
        let pa = (0..fact.row_count()).filter(|&r| win(a.get(r))).count() as f64 / n;
        let pb = (0..fact.row_count()).filter(|&r| win(b.get(r))).count() as f64 / n;
        let pab = (0..fact.row_count())
            .filter(|&r| win(a.get(r)) && win(b.get(r)))
            .count() as f64
            / n;
        assert!(pab > 0.8 * pa, "conjunction {pab} ≈ marginal {pa}");
        assert!(
            pab > 2.0 * pa * pb,
            "conjunction {pab} must dwarf the independence product {}",
            pa * pb
        );
    }
}

//! Seeded, deterministic database export.
//!
//! The accuracy harness pins its ground truth to *exact bytes*: a scenario
//! is regenerated from `(generator version, seed)` on every run, and this
//! module renders the resulting [`Database`] into a canonical JSON document
//! so two runs (or two machines) can assert they measured the very same
//! data before comparing accuracy numbers. The format is also the escape
//! hatch for debugging a regression: dump the offending scenario once and
//! inspect it without re-running the generator.
//!
//! The rendering is canonical by construction — tables in id order, columns
//! in schema order, rows in storage order, NULLs as JSON `null` — so equal
//! databases always produce byte-equal documents.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use sqe_engine::{Database, TableId};

/// Renders `db` as a canonical JSON document.
///
/// Shape: `{"tables": [{"name": …, "columns": [{"name": …, "values":
/// […, null, …]}]}]}`, everything in deterministic order. Integers only —
/// the engine's storage model — so the document round-trips exactly.
pub fn export_database_json(db: &Database) -> String {
    let mut out = String::new();
    out.push_str("{\"tables\":[");
    for t in 0..db.table_count() {
        if t > 0 {
            out.push(',');
        }
        let id = TableId(t as u32);
        let table = db.table(id).expect("table ids are dense");
        let schema = db.schema(id).expect("table ids are dense");
        write!(out, "{{\"name\":{:?},\"columns\":[", schema.name).expect("string write");
        for (c, col_schema) in schema.columns.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            write!(out, "{{\"name\":{:?},\"values\":[", col_schema.name).expect("string write");
            let column = table.column(c as u16).expect("schema arity matches");
            for (r, v) in column.iter().enumerate() {
                if r > 0 {
                    out.push(',');
                }
                match v {
                    Some(x) => write!(out, "{x}").expect("string write"),
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A short stable fingerprint of [`export_database_json`]'s output (FNV-1a
/// over the canonical bytes), cheap enough to log per scenario. Two
/// databases with equal fingerprints are — for harness purposes — the same
/// generated dataset.
pub fn database_fingerprint(db: &Database) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in export_database_json(db).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes the canonical export to `path`.
pub fn save_database_json(db: &Database, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, export_database_json(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowflake::{Snowflake, SnowflakeConfig};
    use sqe_engine::table::TableBuilder;

    fn tiny_config() -> SnowflakeConfig {
        SnowflakeConfig {
            scale: 0.0,
            min_rows: 30,
            ..SnowflakeConfig::default()
        }
    }

    #[test]
    fn export_is_deterministic_per_seed() {
        let a = Snowflake::generate(tiny_config());
        let b = Snowflake::generate(tiny_config());
        assert_eq!(export_database_json(&a.db), export_database_json(&b.db));
        assert_eq!(database_fingerprint(&a.db), database_fingerprint(&b.db));

        let c = Snowflake::generate(SnowflakeConfig {
            seed: 7,
            ..tiny_config()
        });
        assert_ne!(database_fingerprint(&a.db), database_fingerprint(&c.db));
    }

    #[test]
    fn export_renders_nulls_and_values() {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("t")
                .nullable_column("a", vec![Some(1), None, Some(-3)])
                .build()
                .unwrap(),
        );
        assert_eq!(
            export_database_json(&db),
            "{\"tables\":[{\"name\":\"t\",\"columns\":[{\"name\":\"a\",\"values\":[1,null,-3]}]}]}"
        );
    }

    #[test]
    fn save_round_trips_through_the_filesystem() {
        let sf = Snowflake::generate(tiny_config());
        let dir = std::env::temp_dir().join("sqe_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        save_database_json(&sf.db, &path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            export_database_json(&sf.db)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Random distributions used by the generators.

use rand::Rng;

/// A Zipfian distribution over ranks `0..n`: rank `k` has probability
/// proportional to `1/(k+1)^theta`. `theta = 0` degenerates to uniform;
/// larger values concentrate mass on the first ranks.
///
/// Sampling is O(log n) via binary search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // `new` guarantees n > 0; kept for API symmetry with len().
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// A noisy monotone map used to generate *correlated* attributes: the output
/// is an affine function of the input plus bounded uniform noise. Feeding a
/// rank (e.g. a Zipf popularity rank) through the map produces an attribute
/// whose value is correlated with that rank.
#[derive(Debug, Clone, Copy)]
pub struct CorrelatedMap {
    /// Output at input 0.
    pub base: i64,
    /// Output increase per unit of input.
    pub slope: f64,
    /// Half-width of the uniform noise added to the output.
    pub noise: i64,
}

impl CorrelatedMap {
    /// Creates a map `x ↦ base + slope·x ± noise`.
    pub fn new(base: i64, slope: f64, noise: i64) -> Self {
        CorrelatedMap { base, slope, noise }
    }

    /// Applies the map to `x` with fresh noise.
    pub fn apply<R: Rng + ?Sized>(&self, x: i64, rng: &mut R) -> i64 {
        let noiseless = self.base + (self.slope * x as f64).round() as i64;
        if self.noise == 0 {
            noiseless
        } else {
            noiseless + rng.gen_range(-self.noise..=self.noise)
        }
    }
}

/// Pearson correlation of two equally-long samples; used by tests to verify
/// the generators produce the advertised correlation structure.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.5);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u64; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_high_skew_concentrates_head() {
        let z = Zipf::new(1000, 2.0);
        assert!(z.pmf(0) > 0.5, "theta=2 head mass {}", z.pmf(0));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn correlated_map_is_noisily_monotone() {
        let m = CorrelatedMap::new(100, 2.0, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..500).map(f64::from).collect();
        let ys: Vec<f64> = (0..500)
            .map(|x| m.apply(x as i64, &mut rng) as f64)
            .collect();
        let r = pearson(&xs, &ys);
        assert!(r > 0.99, "correlation too weak: {r}");
    }

    #[test]
    fn correlated_map_zero_noise_is_deterministic() {
        let m = CorrelatedMap::new(10, 3.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.apply(4, &mut rng), 22);
        assert_eq!(m.apply(4, &mut rng), 22);
    }

    #[test]
    fn pearson_detects_perfect_and_zero_correlation() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        let constant = vec![5.0; 100];
        assert_eq!(pearson(&xs, &constant), 0.0);
    }
}

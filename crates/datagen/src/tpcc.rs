//! A TPC-C-flavoured schema for the multi-tenant soak harness.
//!
//! Six tables in the classic order-entry chain:
//!
//! ```text
//! order_line ──< orders ──< customer ──< district ──< warehouse
//!      ╰──────< item
//! ```
//!
//! The shape intentionally differs from the snowflake of §5: a *deep*
//! FK chain (four hops from `order_line` to `warehouse`) instead of a
//! wide star, so tenant workloads generated over it stress long join
//! paths. The correlation structure that makes SITs matter is kept:
//!
//! * order fan-out is Zipfian (popular customers, popular items);
//! * `customer.balance` is rank-correlated — big-balance customers are
//!   the *unpopular* (low-fan-out) ones;
//! * `item.price` is rank-anti-correlated with popularity — cheap items
//!   sell the most — and `order_line.amount` follows the item's rank, so
//!   an amount filter selects systematically skewed join partners;
//! * undelivered orders (`carrier = 0`, ~10%) concentrate on recent ids;
//! * dangling FKs: a random fraction of `orders.c_fk` is NULL (walk-in
//!   customers) and `order_line.i_fk` is NULLed *correlated with amount*
//!   (expensive special-order lines reference no catalog item).
//!
//! Cardinality ratios follow TPC-C's per-warehouse multiplicities
//! (1 warehouse : 10 districts : 3k customers : 3k orders : ~30k order
//! lines : 100k shared items), scaled like the snowflake generator.
//! Everything is deterministic given the seed, and the output plugs
//! directly into [`crate::generate_workload`] (via [`Tpcc::join_edges`] /
//! [`Tpcc::filter_columns`]) and [`crate::generate_mutations`] (whose
//! fact-table heuristic picks `order_line` — most rows, widest).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqe_engine::{ColRef, Column, Database, Table, TableId, TableSchema};

use crate::dist::{CorrelatedMap, Zipf};
use crate::snowflake::{
    build_dim, build_dim_with_fks, make_dangling_correlated, AttrKind, JoinEdge,
};

/// Configuration for the TPC-C-flavoured generator.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Multiplier on the base table sizes (1.0 → 1K warehouses, 1M order
    /// lines). The default keeps a tenant's catalog build sub-second.
    pub scale: f64,
    /// Zipf exponent for order/item popularity skew.
    pub theta: f64,
    /// Fraction of dangling FKs on the two affected edges.
    pub dangling_frac: f64,
    /// RNG seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Minimum rows per table after scaling.
    pub min_rows: usize,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            scale: 0.01,
            theta: 1.0,
            dangling_frac: 0.08,
            seed: 0x7C_C0DE,
            min_rows: 200,
        }
    }
}

/// A generated TPC-C-flavoured database with its schema metadata — the
/// same shape as [`crate::Snowflake`], so workload and mutation
/// generation work unchanged.
#[derive(Debug)]
pub struct Tpcc {
    /// The populated database.
    pub db: Database,
    /// The five FK edges of the order-entry chain.
    pub join_edges: Vec<JoinEdge>,
    /// Non-key columns suitable for filter predicates.
    pub filter_columns: Vec<ColRef>,
    /// Table ids in generation order:
    /// `order_line, orders, customer, district, warehouse, item`.
    pub tables: Vec<TableId>,
}

impl Tpcc {
    /// Looks up a column by `"table.column"`.
    pub fn col(&self, qualified: &str) -> ColRef {
        self.db
            .col(qualified)
            .unwrap_or_else(|| panic!("tpcc column {qualified} exists"))
    }

    /// Generates the database.
    pub fn generate(config: TpccConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let size =
            |base: usize| -> usize { ((base as f64 * config.scale) as usize).max(config.min_rows) };

        let mut db = Database::new();

        // --- Dimensions, root first -------------------------------------
        // warehouse(id, state, tax, ytd)
        let n_warehouse = size(1_000);
        let warehouse = build_dim(
            "warehouse",
            n_warehouse,
            &[
                ("state", AttrKind::Uniform { lo: 0, hi: 49 }),
                ("tax", AttrKind::Uniform { lo: 0, hi: 20 }),
                (
                    "ytd",
                    AttrKind::RankCorrelated {
                        map: CorrelatedMap::new(10_000, 25.0, 500),
                    },
                ),
            ],
            &mut rng,
        );
        // district(id, w_fk, tax, next_o_id)
        let n_district = size(10_000);
        let district = build_dim_with_fks(
            "district",
            n_district,
            &[("w_fk", n_warehouse)],
            &[
                ("tax", AttrKind::Uniform { lo: 0, hi: 20 }),
                (
                    "next_o_id",
                    AttrKind::Zipfy {
                        domain: 3_000,
                        theta: config.theta,
                    },
                ),
            ],
            config.theta,
            &mut rng,
        );
        // item(id, price, im_id, stock_level): cheap items are the popular
        // (low-rank) ones, exactly the snowflake `product.price` pattern.
        let n_item = size(100_000);
        let item = build_dim(
            "item",
            n_item,
            &[
                (
                    "price",
                    AttrKind::RankCorrelated {
                        map: CorrelatedMap::new(100, 0.9, 80),
                    },
                ),
                ("im_id", AttrKind::Uniform { lo: 1, hi: 10_000 }),
                (
                    "stock_level",
                    AttrKind::Zipfy {
                        domain: 500,
                        theta: config.theta,
                    },
                ),
            ],
            &mut rng,
        );
        // customer(id, d_fk, balance, credit_lim, discount)
        let n_customer = size(300_000);
        let customer = build_dim_with_fks(
            "customer",
            n_customer,
            &[("d_fk", n_district)],
            &[
                // Popular (low-rank) customers carry low balances: a
                // high-balance filter selects low-fan-out customers.
                (
                    "balance",
                    AttrKind::RankCorrelated {
                        map: CorrelatedMap::new(0, 0.4, 60),
                    },
                ),
                (
                    "credit_lim",
                    AttrKind::Uniform {
                        lo: 1_000,
                        hi: 50_000,
                    },
                ),
                (
                    "discount",
                    AttrKind::Zipfy {
                        domain: 50,
                        theta: config.theta,
                    },
                ),
            ],
            config.theta,
            &mut rng,
        );

        // --- orders(id, c_fk, carrier, ol_cnt, all_local) ---------------
        // Built by hand: carrier deliveries concentrate on *old* orders
        // (recent ids are the undelivered ~10%), an id-correlated pattern
        // build_dim cannot express.
        let n_orders = size(300_000);
        let zipf_cust = Zipf::new(n_customer, config.theta);
        let mut o_id = Vec::with_capacity(n_orders);
        let mut o_cust = Vec::with_capacity(n_orders);
        let mut o_carrier = Vec::with_capacity(n_orders);
        let mut o_cnt = Vec::with_capacity(n_orders);
        let mut o_local = Vec::with_capacity(n_orders);
        let delivered_upto = n_orders - n_orders / 10;
        for i in 0..n_orders {
            o_id.push(i as i64);
            // Walk-in customers: random dangling c_fk.
            if rng.gen_bool(config.dangling_frac) {
                o_cust.push(None);
            } else {
                o_cust.push(Some(zipf_cust.sample(&mut rng) as i64));
            }
            // carrier 1..=10 for delivered orders, 0 for the recent tail.
            o_carrier.push(if i < delivered_upto {
                rng.gen_range(1..=10)
            } else {
                0
            });
            o_cnt.push(rng.gen_range(5..=15));
            o_local.push(i64::from(rng.gen_bool(0.9)));
        }
        let orders = Table::new(
            TableSchema::new("orders", &["id", "c_fk", "carrier", "ol_cnt", "all_local"]),
            vec![
                Column::from_values(o_id),
                Column::from_options(o_cust),
                Column::from_values(o_carrier),
                Column::from_values(o_cnt),
                Column::from_values(o_local),
            ],
        )
        .expect("consistent orders table");

        // --- order_line fact --------------------------------------------
        // order_line(id, o_fk, i_fk, quantity, amount, supply_delay)
        let n_lines = size(1_000_000);
        let zipf_order = Zipf::new(n_orders, config.theta * 0.5);
        let zipf_item = Zipf::new(n_item, config.theta);
        let amount_map = CorrelatedMap::new(10, 0.03, 25);
        let mut l_id = Vec::with_capacity(n_lines);
        let mut l_order = Vec::with_capacity(n_lines);
        let mut l_item = Vec::with_capacity(n_lines);
        let mut l_qty = Vec::with_capacity(n_lines);
        let mut l_amount = Vec::with_capacity(n_lines);
        let mut l_delay = Vec::with_capacity(n_lines);
        for i in 0..n_lines {
            l_id.push(i as i64);
            l_order.push(Some(zipf_order.sample(&mut rng) as i64));
            let it = zipf_item.sample(&mut rng);
            l_item.push(Some(it as i64));
            let qty = rng.gen_range(1..=10);
            l_qty.push(qty);
            // amount follows the item's popularity rank (popular = cheap),
            // scaled by quantity — the cross-table correlation SITs catch.
            l_amount.push((amount_map.apply(it as i64, &mut rng).max(1)) * qty);
            l_delay.push(rng.gen_range(0..=30));
        }
        let mut order_line = Table::new(
            TableSchema::new(
                "order_line",
                &["id", "o_fk", "i_fk", "quantity", "amount", "supply_delay"],
            ),
            vec![
                Column::from_values(l_id),
                Column::from_options(l_order),
                Column::from_options(l_item),
                Column::from_values(l_qty),
                Column::from_values(l_amount),
                Column::from_values(l_delay),
            ],
        )
        .expect("consistent order_line table");
        // Expensive special-order lines reference no catalog item.
        make_dangling_correlated(
            &mut order_line,
            "i_fk",
            "amount",
            config.dangling_frac,
            &mut rng,
        );

        // --- Register everything ----------------------------------------
        let mut tables = Vec::new();
        for t in [order_line, orders, customer, district, warehouse, item] {
            tables.push(db.add_table(t));
        }
        let col = |q: &str| db.col(q).expect("generated column exists");
        let join_edges = vec![
            JoinEdge {
                fk: col("order_line.o_fk"),
                pk: col("orders.id"),
            },
            JoinEdge {
                fk: col("order_line.i_fk"),
                pk: col("item.id"),
            },
            JoinEdge {
                fk: col("orders.c_fk"),
                pk: col("customer.id"),
            },
            JoinEdge {
                fk: col("customer.d_fk"),
                pk: col("district.id"),
            },
            JoinEdge {
                fk: col("district.w_fk"),
                pk: col("warehouse.id"),
            },
        ];
        let filter_columns = [
            "order_line.quantity",
            "order_line.amount",
            "order_line.supply_delay",
            "orders.carrier",
            "orders.ol_cnt",
            "customer.balance",
            "customer.credit_lim",
            "customer.discount",
            "district.tax",
            "district.next_o_id",
            "warehouse.state",
            "warehouse.tax",
            "warehouse.ytd",
            "item.price",
            "item.im_id",
            "item.stock_level",
        ]
        .iter()
        .map(|q| col(q))
        .collect();

        Tpcc {
            db,
            join_edges,
            filter_columns,
            tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::{generate_mutations, MutationConfig};
    use crate::workload::{generate_workload, WorkloadConfig};
    use sqe_engine::execute;

    fn small() -> Tpcc {
        Tpcc::generate(TpccConfig {
            scale: 0.002,
            min_rows: 100,
            ..TpccConfig::default()
        })
    }

    #[test]
    fn has_six_tables_with_expected_arity() {
        let t = small();
        assert_eq!(t.db.table_count(), 6);
        for (name, arity) in [
            ("order_line", 6),
            ("orders", 5),
            ("customer", 5),
            ("district", 4),
            ("warehouse", 4),
            ("item", 4),
        ] {
            let (tab, _) = t.db.table_by_name(name).unwrap();
            assert_eq!(tab.schema().arity(), arity, "{name}");
            assert!(tab.row_count() >= 100, "{name} too small");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        for name in ["order_line", "orders", "customer"] {
            let (ta, _) = a.db.table_by_name(name).unwrap();
            let (tb, _) = b.db.table_by_name(name).unwrap();
            assert_eq!(ta.columns(), tb.columns(), "{name} differs across runs");
        }
    }

    #[test]
    fn join_chain_executes_nonempty() {
        let t = small();
        for e in &t.join_edges {
            let tables = [e.fk.table, e.pk.table];
            let card = execute(&t.db, &tables, &[e.predicate()]).unwrap();
            assert!(card > 0, "join edge produced empty result");
        }
    }

    #[test]
    fn dangling_lines_are_amount_correlated() {
        let t = small();
        let (lines, _) = t.db.table_by_name("order_line").unwrap();
        let amount = lines.column_by_name("amount").unwrap();
        let item_fk = lines.column_by_name("i_fk").unwrap();
        assert!(item_fk.null_count() > 0, "no dangling order lines");
        let (mut sum_d, mut n_d, mut sum_i, mut n_i) = (0f64, 0f64, 0f64, 0f64);
        for r in 0..lines.row_count() {
            let a = amount.get(r).unwrap() as f64;
            if item_fk.get(r).is_none() {
                sum_d += a;
                n_d += 1.0;
            } else {
                sum_i += a;
                n_i += 1.0;
            }
        }
        assert!(sum_d / n_d > sum_i / n_i, "dangling not amount-correlated");
    }

    #[test]
    fn undelivered_orders_are_the_recent_tail() {
        let t = small();
        let (orders, _) = t.db.table_by_name("orders").unwrap();
        let carrier = orders.column_by_name("carrier").unwrap();
        let n = orders.row_count();
        // Every undelivered order (carrier 0) sits in the last tenth.
        for r in 0..n {
            if carrier.get(r) == Some(0) {
                assert!(r >= n - n / 10, "old order {r} undelivered");
            }
        }
    }

    #[test]
    fn workload_and_mutations_generate_over_tpcc() {
        let t = small();
        let queries = generate_workload(
            &t.db,
            &t.join_edges,
            &t.filter_columns,
            WorkloadConfig {
                queries: 5,
                joins: 3,
                filters: 2,
                ..WorkloadConfig::default()
            },
        );
        assert_eq!(queries.len(), 5);
        let stream = generate_mutations(
            &t.db,
            MutationConfig {
                ops: 200,
                batch_size: 50,
                ..MutationConfig::default()
            },
        );
        assert!(!stream.batches.is_empty());
        // The fact heuristic must pick the widest, biggest table.
        let (order_line_id, _) = {
            let (_, id) = t.db.table_by_name("order_line").unwrap();
            (id, ())
        };
        assert!(
            stream
                .batches
                .iter()
                .flat_map(|b| &b.deltas)
                .any(|d| d.table == order_line_id),
            "mutation stream never touches the order_line fact table"
        );
    }
}

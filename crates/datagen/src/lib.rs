//! # sqe-datagen — synthetic data and workload generation
//!
//! Reproduces the experimental setting of §5 of the paper:
//!
//! * a **snowflake-schema** database of 8 tables with 1K–1M tuples
//!   (adjustable via a scale factor) and 4–8 attributes per table,
//! * attribute values with configurable **skew** (Zipfian foreign-key fan
//!   out) and **correlation** (dimension attributes correlated with join fan
//!   out — the pattern that makes SITs valuable: "expensive orders consist
//!   of many line-items"),
//! * **dangling foreign keys**: 5–20% of fact-side join attributes replaced
//!   by NULL, chosen either at random or correlated with attribute values,
//! * a random **SPJ workload generator**: queries with `J` join predicates
//!   over a connected subgraph of the schema's join graph and `F` filter
//!   predicates with target selectivity ≈ 0.05, ranges stretched until the
//!   query result is non-empty,
//! * the **motivating scenario** of Figures 1–2 (skewed
//!   lineitem/orders/customer).
//!
//! Everything is deterministic given a `u64` seed.

pub mod correlated;
pub mod dist;
pub mod export;
pub mod mutation;
pub mod scenarios;
pub mod snowflake;
pub mod tpcc;
pub mod workload;

pub use correlated::{correlated_star, CorrelatedStarConfig};
pub use dist::{CorrelatedMap, Zipf};
pub use export::{database_fingerprint, export_database_json, save_database_json};
pub use mutation::{generate_mutations, MutationConfig, MutationStream};
pub use scenarios::{motivating_scenario, MotivatingConfig, MotivatingScenario};
pub use snowflake::{JoinEdge, Snowflake, SnowflakeConfig};
pub use tpcc::{Tpcc, TpccConfig};
pub use workload::{generate_workload, WorkloadConfig};

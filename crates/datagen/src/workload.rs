//! Random SPJ workload generation (§5 "Workloads").
//!
//! Each query draws a connected subgraph with `J` edges from the schema's
//! join graph and adds `F` filter predicates whose individual selectivity is
//! close to a target (0.05 in the paper). If the query result is empty, the
//! filter ranges are progressively stretched until at least one tuple
//! qualifies, exactly as the paper describes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sqe_engine::{execute, ColRef, Database, Predicate, SpjQuery, TableId};

use crate::snowflake::JoinEdge;

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Join predicates per query (the paper varies `J` from 3 to 7).
    pub joins: usize,
    /// Filter predicates per query (the paper fixes `F` = 3).
    pub filters: usize,
    /// Target selectivity of each filter (≈ 0.05 in the paper; 0.5 in its
    /// sensitivity check).
    pub target_selectivity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 100,
            joins: 3,
            filters: 3,
            target_selectivity: 0.05,
            seed: 0xBEEF,
        }
    }
}

/// Generates a workload of non-empty SPJ queries over the given join graph.
///
/// `filter_columns` lists the columns eligible for filter predicates.
/// Queries whose filters cannot be stretched into a non-empty result (rare)
/// are regenerated with fresh randomness, so exactly `config.queries`
/// queries are returned.
pub fn generate_workload(
    db: &Database,
    join_edges: &[JoinEdge],
    filter_columns: &[ColRef],
    config: WorkloadConfig,
) -> Vec<SpjQuery> {
    assert!(
        config.joins <= join_edges.len(),
        "cannot use {} joins: schema has {} edges",
        config.joins,
        join_edges.len()
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.queries);
    let mut attempts = 0usize;
    while out.len() < config.queries {
        attempts += 1;
        assert!(
            attempts < config.queries * 100,
            "workload generation not converging; filters too selective?"
        );
        if let Some(q) = try_generate_query(db, join_edges, filter_columns, &config, &mut rng) {
            out.push(q);
        }
    }
    out
}

fn try_generate_query(
    db: &Database,
    join_edges: &[JoinEdge],
    filter_columns: &[ColRef],
    config: &WorkloadConfig,
    rng: &mut StdRng,
) -> Option<SpjQuery> {
    let edges = connected_edge_subset(join_edges, config.joins, rng)?;
    let mut tables: Vec<TableId> = edges
        .iter()
        .flat_map(|e| [e.fk.table, e.pk.table])
        .collect();
    tables.sort_unstable();
    tables.dedup();

    // Candidate filter columns restricted to the chosen tables.
    let mut candidates: Vec<ColRef> = filter_columns
        .iter()
        .copied()
        .filter(|c| tables.contains(&c.table))
        .collect();
    candidates.shuffle(rng);
    if candidates.is_empty() {
        return None;
    }
    // Wide workloads (F larger than the distinct filter columns the chosen
    // tables offer) cycle the shuffled candidates: a column may then carry
    // several independent ranges, whose conjunction is their intersection.
    if candidates.len() < config.filters {
        let base = candidates.len();
        for i in 0..config.filters - base {
            let repeat = candidates[i % base];
            candidates.push(repeat);
        }
    }
    candidates.truncate(config.filters);

    let join_preds: Vec<Predicate> = edges.iter().map(JoinEdge::predicate).collect();
    let mut ranges: Vec<(ColRef, i64, i64)> = Vec::with_capacity(candidates.len());
    for col in candidates {
        ranges.push(random_range(db, col, config.target_selectivity, rng)?);
    }

    // Stretch until non-empty (paper: "progressively stretch the filter
    // ranges until at least one tuple is present").
    for _ in 0..16 {
        let mut preds = join_preds.clone();
        preds.extend(
            ranges
                .iter()
                .map(|&(col, lo, hi)| Predicate::range(col, lo, hi)),
        );
        let card = execute(db, &tables, &preds).ok()?;
        if card > 0 {
            return SpjQuery::new(tables.clone(), preds).ok();
        }
        for r in &mut ranges {
            let width = (r.2 - r.1).max(1);
            r.1 = r.1.saturating_sub(width);
            r.2 = r.2.saturating_add(width);
        }
    }
    None
}

/// Picks a uniformly random connected subgraph with `k` edges by growing
/// from a random seed edge.
fn connected_edge_subset(edges: &[JoinEdge], k: usize, rng: &mut StdRng) -> Option<Vec<JoinEdge>> {
    if k == 0 || k > edges.len() {
        return None;
    }
    let mut chosen: Vec<JoinEdge> = vec![*edges.choose(rng)?];
    let mut tables: Vec<TableId> = chosen
        .iter()
        .flat_map(|e| [e.fk.table, e.pk.table])
        .collect();
    while chosen.len() < k {
        let frontier: Vec<JoinEdge> = edges
            .iter()
            .filter(|e| !chosen.contains(e))
            .filter(|e| tables.contains(&e.fk.table) || tables.contains(&e.pk.table))
            .copied()
            .collect();
        let next = *frontier.choose(rng)?;
        tables.push(next.fk.table);
        tables.push(next.pk.table);
        chosen.push(next);
    }
    Some(chosen)
}

/// Chooses a value range on `col` covering roughly `target` of its rows,
/// positioned uniformly at random: a window of the sorted value list.
fn random_range(
    db: &Database,
    col: ColRef,
    target: f64,
    rng: &mut StdRng,
) -> Option<(ColRef, i64, i64)> {
    let column = db.column(col).ok()?;
    let mut vals = column.valid_values();
    if vals.is_empty() {
        return None;
    }
    vals.sort_unstable();
    let n = vals.len();
    let window = ((n as f64 * target).ceil() as usize).clamp(1, n);
    let start = rng.gen_range(0..=n - window);
    Some((col, vals[start], vals[start + window - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snowflake::{Snowflake, SnowflakeConfig};
    use sqe_engine::CardinalityOracle;

    fn small_snowflake() -> Snowflake {
        Snowflake::generate(SnowflakeConfig {
            scale: 0.002,
            min_rows: 100,
            ..SnowflakeConfig::default()
        })
    }

    #[test]
    fn workload_has_requested_shape() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            queries: 10,
            joins: 3,
            filters: 3,
            ..WorkloadConfig::default()
        };
        let wl = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        assert_eq!(wl.len(), 10);
        for q in &wl {
            assert_eq!(q.join_count(), 3);
            assert_eq!(q.filter_count(), 3);
            assert_eq!(q.tables.len(), 4, "J joins span J+1 tables (tree schema)");
        }
    }

    #[test]
    fn queries_are_nonempty() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            queries: 8,
            joins: 4,
            ..WorkloadConfig::default()
        };
        let wl = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        let mut oracle = CardinalityOracle::new(&sf.db);
        for q in &wl {
            let card = oracle.cardinality(&q.tables, &q.predicates).unwrap();
            assert!(card > 0, "query produced empty result");
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            queries: 5,
            ..WorkloadConfig::default()
        };
        let a = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        let b = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        assert_eq!(a, b);
        let c = generate_workload(
            &sf.db,
            &sf.join_edges,
            &sf.filter_columns,
            WorkloadConfig { seed: 1, ..cfg },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn filter_selectivity_is_near_target() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            queries: 20,
            joins: 3,
            filters: 2,
            target_selectivity: 0.05,
            ..WorkloadConfig::default()
        };
        let wl = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        let mut oracle = CardinalityOracle::new(&sf.db);
        let mut sum = 0.0;
        let mut n = 0usize;
        for q in &wl {
            for p in q.filters() {
                let t = p.tables().iter().next().unwrap();
                sum += oracle.selectivity(&[t], &[*p]).unwrap();
                n += 1;
            }
        }
        let avg = sum / n as f64;
        // Stretching can push individual filters above the target, but the
        // average should remain in the right ballpark.
        assert!(avg > 0.01 && avg < 0.35, "avg filter selectivity {avg}");
    }

    #[test]
    fn seven_way_joins_span_whole_snowflake() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            queries: 3,
            joins: 7,
            ..WorkloadConfig::default()
        };
        let wl = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        for q in &wl {
            assert_eq!(q.tables.len(), 8);
        }
    }

    #[test]
    fn connected_subsets_are_connected() {
        let sf = small_snowflake();
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=7 {
            for _ in 0..20 {
                let edges = connected_edge_subset(&sf.join_edges, k, &mut rng).unwrap();
                assert_eq!(edges.len(), k);
                // Tables touched must form one connected component: J edges
                // over a tree subgraph touch exactly J+1 tables.
                let mut tables: Vec<TableId> = edges
                    .iter()
                    .flat_map(|e| [e.fk.table, e.pk.table])
                    .collect();
                tables.sort_unstable();
                tables.dedup();
                assert_eq!(tables.len(), k + 1);
            }
        }
    }

    #[test]
    fn wide_filter_counts_cycle_columns() {
        let sf = small_snowflake();
        // More filters than the schema has distinct filter columns: the
        // generator cycles columns instead of giving up, enabling the
        // 32-predicate (7 joins + 25 filters) beam workloads.
        let cfg = WorkloadConfig {
            queries: 2,
            joins: 7,
            filters: 25,
            target_selectivity: 0.5,
            ..WorkloadConfig::default()
        };
        let wl = generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
        let mut oracle = CardinalityOracle::new(&sf.db);
        for q in &wl {
            assert_eq!(q.join_count(), 7);
            assert_eq!(q.filter_count(), 25);
            assert_eq!(q.predicates.len(), 32);
            let card = oracle.cardinality(&q.tables, &q.predicates).unwrap();
            assert!(card > 0, "wide query produced empty result");
        }
    }

    #[test]
    #[should_panic(expected = "cannot use")]
    fn too_many_joins_panics() {
        let sf = small_snowflake();
        let cfg = WorkloadConfig {
            joins: 99,
            ..WorkloadConfig::default()
        };
        generate_workload(&sf.db, &sf.join_edges, &sf.filter_columns, cfg);
    }
}

//! The motivating scenario of §1 (Figures 1 and 2).
//!
//! A TPC-H-flavoured `lineitem ⋈ orders ⋈ customer` database where
//!
//! * the number of line-items per order is **Zipfian**, and
//! * `orders.total_price` is **correlated with the line-item count**
//!   (expensive orders consist of many line-items), and
//! * most customers live in one nation (`nation = 0`, "USA").
//!
//! Under these conditions the classic estimate for
//! `σ(total_price > c ∧ nation = USA)(L ⋈ O ⋈ C)` — multiply base-table
//! filter selectivities into the join cardinality — is a severe
//! *underestimate*: the few expensive orders carry a disproportionate share
//! of the join. `SIT(total_price | L ⋈ O)` and `SIT(nation | O ⋈ C)` each
//! fix one of the two independence errors; only the conditional-selectivity
//! framework can use both simultaneously (Figure 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sqe_engine::{CmpOp, ColRef, Column, Database, Predicate, SpjQuery, Table, TableSchema};

use crate::dist::Zipf;

/// Configuration knobs for the motivating scenario.
#[derive(Debug, Clone, Copy)]
pub struct MotivatingConfig {
    /// Number of orders.
    pub orders: usize,
    /// Number of customers.
    pub customers: usize,
    /// Average line-items per order (total line-items = orders × this).
    pub lineitems_per_order: usize,
    /// Zipf exponent of the line-items-per-order distribution.
    pub theta: f64,
    /// Fraction of customers in the dominant nation.
    pub usa_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MotivatingConfig {
    fn default() -> Self {
        MotivatingConfig {
            orders: 5_000,
            customers: 1_000,
            lineitems_per_order: 6,
            theta: 1.2,
            usa_fraction: 0.75,
            seed: 0x0F16_0001,
        }
    }
}

/// The generated motivating database plus the query of Figure 1(a).
#[derive(Debug)]
pub struct MotivatingScenario {
    /// Tables: `lineitem(id, order_fk, quantity)`,
    /// `orders(id, cust_fk, total_price)`, `customer(id, nation, balance)`.
    pub db: Database,
    /// `lineitem.order_fk = orders.id`.
    pub join_lo: Predicate,
    /// `orders.cust_fk = customer.id`.
    pub join_oc: Predicate,
    /// `orders.total_price > threshold` — selects the few expensive orders.
    pub filter_price: Predicate,
    /// `customer.nation = 0` ("USA").
    pub filter_nation: Predicate,
    /// The full query of Figure 1(a).
    pub query: SpjQuery,
    /// `orders.total_price` column (the attribute of the first SIT).
    pub col_price: ColRef,
    /// `customer.nation` column (the attribute of the second SIT).
    pub col_nation: ColRef,
}

/// Generates the motivating scenario with default knobs.
pub fn motivating_scenario(config: MotivatingConfig) -> MotivatingScenario {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Customers: most in nation 0 ("USA"), and *popular* customers (low
    // rank — they receive disproportionately many orders below) are even
    // more likely to be in the USA. This makes `nation = USA` interact
    // with the O ⋈ C join, the second independence violation of §1.
    let n_cust = config.customers;
    let customer = Table::new(
        TableSchema::new("customer", &["id", "nation", "balance"]),
        vec![
            Column::from_values((0..n_cust as i64).collect()),
            Column::from_values(
                (0..n_cust)
                    .map(|rank| {
                        let boost = if rank < n_cust / 4 { 0.22 } else { -0.08 };
                        let p = (config.usa_fraction + boost).clamp(0.0, 1.0);
                        if rng.gen_bool(p) {
                            0
                        } else {
                            rng.gen_range(1..=24)
                        }
                    })
                    .collect(),
            ),
            Column::from_values((0..n_cust).map(|_| rng.gen_range(0..=10_000)).collect()),
        ],
    )
    .expect("customer table is consistent");

    // Orders: line-item count per order is Zipfian over a random order
    // permutation; total_price grows with the count (plus noise).
    let n_orders = config.orders;
    let total_items = n_orders * config.lineitems_per_order;
    let zipf = Zipf::new(n_orders, config.theta);
    let mut items_per_order = vec![0u32; n_orders];
    let mut order_fk: Vec<i64> = Vec::with_capacity(total_items);
    for _ in 0..total_items {
        let o = zipf.sample(&mut rng);
        items_per_order[o] += 1;
        order_fk.push(o as i64);
    }
    // Orders are assigned to customers with Zipfian skew, so low-rank
    // customers are "popular" and carry most of the O ⋈ C join.
    let zipf_cust = Zipf::new(n_cust, config.theta * 0.7);
    let orders = Table::new(
        TableSchema::new("orders", &["id", "cust_fk", "total_price"]),
        vec![
            Column::from_values((0..n_orders as i64).collect()),
            Column::from_values(
                (0..n_orders)
                    .map(|_| zipf_cust.sample(&mut rng) as i64)
                    .collect(),
            ),
            Column::from_values(
                items_per_order
                    .iter()
                    .map(|&k| 1_000 * k as i64 + rng.gen_range(0..1_000))
                    .collect(),
            ),
        ],
    )
    .expect("orders table is consistent");

    // Line-items referencing the sampled orders.
    let lineitem = Table::new(
        TableSchema::new("lineitem", &["id", "order_fk", "quantity"]),
        vec![
            Column::from_values((0..total_items as i64).collect()),
            Column::from_values(order_fk),
            Column::from_values((0..total_items).map(|_| rng.gen_range(1..=50)).collect()),
        ],
    )
    .expect("lineitem table is consistent");

    let mut db = Database::new();
    db.add_table(lineitem);
    db.add_table(orders);
    db.add_table(customer);
    let col = |q: &str| db.col(q).expect("scenario column exists");

    // Price threshold: the 95th percentile of total_price (≈ the paper's
    // "total_price > 100K", selecting few but join-heavy orders).
    let mut prices = db
        .column(col("orders.total_price"))
        .expect("price column")
        .valid_values();
    prices.sort_unstable();
    let threshold = prices[(prices.len() as f64 * 0.95) as usize];

    let join_lo = Predicate::join(col("lineitem.order_fk"), col("orders.id"));
    let join_oc = Predicate::join(col("orders.cust_fk"), col("customer.id"));
    let filter_price = Predicate::filter(col("orders.total_price"), CmpOp::Gt, threshold);
    let filter_nation = Predicate::filter(col("customer.nation"), CmpOp::Eq, 0);
    let query = SpjQuery::from_predicates(vec![join_lo, join_oc, filter_price, filter_nation])
        .expect("motivating query is well-formed");
    let col_price = col("orders.total_price");
    let col_nation = col("customer.nation");

    MotivatingScenario {
        db,
        join_lo,
        join_oc,
        filter_price,
        filter_nation,
        query,
        col_price,
        col_nation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::CardinalityOracle;

    fn scenario() -> MotivatingScenario {
        motivating_scenario(MotivatingConfig {
            orders: 1_000,
            customers: 300,
            ..MotivatingConfig::default()
        })
    }

    #[test]
    fn query_shape_matches_figure_1a() {
        let s = scenario();
        assert_eq!(s.query.tables.len(), 3);
        assert_eq!(s.query.join_count(), 2);
        assert_eq!(s.query.filter_count(), 2);
    }

    #[test]
    fn price_filter_is_selective_but_join_heavy() {
        let s = scenario();
        let mut oracle = CardinalityOracle::new(&s.db);
        let orders_t = s.col_price.table;
        let price_sel = oracle.selectivity(&[orders_t], &[s.filter_price]).unwrap();
        assert!(price_sel < 0.10, "price filter too wide: {price_sel}");

        // Fraction of the L ⋈ O join carried by expensive orders must far
        // exceed the base-table fraction of expensive orders: that is the
        // independence violation the SIT corrects.
        let li = s.query.tables[0];
        let cond = oracle
            .conditional_selectivity(&[li, orders_t], &[s.filter_price], &[s.join_lo])
            .unwrap();
        assert!(
            cond > 2.0 * price_sel,
            "join share {cond} not amplified vs base selectivity {price_sel}"
        );
    }

    #[test]
    fn independence_underestimates_true_cardinality() {
        let s = scenario();
        let mut oracle = CardinalityOracle::new(&s.db);
        let tables = &s.query.tables;
        let joins = [s.join_lo, s.join_oc];
        let join_card = oracle.cardinality(tables, &joins).unwrap() as f64;
        let p_price = oracle
            .selectivity(&[s.col_price.table], &[s.filter_price])
            .unwrap();
        let p_nation = oracle
            .selectivity(&[s.col_nation.table], &[s.filter_nation])
            .unwrap();
        let independent_estimate = join_card * p_price * p_nation;
        let truth = oracle.cardinality(tables, &s.query.predicates).unwrap() as f64;
        assert!(
            independent_estimate < 0.7 * truth,
            "independence estimate {independent_estimate} vs truth {truth} — skew too weak"
        );
    }

    #[test]
    fn usa_dominates_customers() {
        let s = scenario();
        let mut oracle = CardinalityOracle::new(&s.db);
        let sel = oracle
            .selectivity(&[s.col_nation.table], &[s.filter_nation])
            .unwrap();
        assert!(sel > 0.6, "USA fraction {sel}");
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = scenario();
        let b = scenario();
        let (ta, _) = a.db.table_by_name("orders").unwrap();
        let (tb, _) = b.db.table_by_name("orders").unwrap();
        assert_eq!(ta.columns(), tb.columns());
    }
}

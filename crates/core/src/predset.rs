//! Predicate subsets of a query as bitsets, plus the separability machinery.
//!
//! Everything `getSelectivity` does is defined over subsets of one query's
//! predicates, so subsets are `u32` bitmasks (supporting up to 32 predicates
//! — the paper's queries peak at 10) wrapped in [`PredSet`], and a
//! [`QueryContext`] precomputes per-predicate metadata (table masks, join
//! flags) so that separability tests and standard decompositions are cheap
//! bit manipulation plus a small union-find.

use std::fmt;

use sqe_engine::{Database, Predicate, SpjQuery, TableId};

/// Maximum number of predicates per query.
pub const MAX_PREDICATES: usize = 32;

/// A subset of a query's predicates, as a bitmask over predicate indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PredSet(pub u32);

impl PredSet {
    /// The empty set.
    pub const EMPTY: PredSet = PredSet(0);

    /// The set containing predicates `0..n`.
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_PREDICATES);
        if n == MAX_PREDICATES {
            PredSet(u32::MAX)
        } else {
            PredSet((1u32 << n) - 1)
        }
    }

    /// A singleton set.
    pub fn singleton(i: usize) -> Self {
        assert!(i < MAX_PREDICATES);
        PredSet(1 << i)
    }

    /// Number of predicates in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, i: usize) -> bool {
        i < MAX_PREDICATES && self.0 & (1 << i) != 0
    }

    /// Set union.
    pub fn union(self, other: PredSet) -> PredSet {
        PredSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: PredSet) -> PredSet {
        PredSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    pub fn minus(self, other: PredSet) -> PredSet {
        PredSet(self.0 & !other.0)
    }

    /// True when `self ⊆ other`.
    pub fn is_subset_of(self, other: PredSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Inserts predicate `i`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < MAX_PREDICATES);
        self.0 |= 1 << i;
    }

    /// Iterates over the member indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Iterates over all *non-empty* subsets of `self` (including `self`
    /// itself) using the standard descending-submask walk.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            sub: self.0,
            done: self.0 == 0,
        }
    }

    /// Iterates over the subsets of `self` with exactly `k` members,
    /// allocation-free (Gosper's hack over the compressed index space, each
    /// combination expanded back through the member positions). Yields
    /// nothing when `k == 0` or `k > self.len()`. Together with an outer
    /// `for k in 1..=len` loop this enumerates all subsets in ascending
    /// popcount order — the iteration order of the dense DP engine's
    /// bottom-up fill.
    pub fn subsets_of_size(self, k: usize) -> FixedSizeSubsetIter {
        let mut positions = [0u8; MAX_PREDICATES];
        let mut count = 0usize;
        for (slot, i) in positions.iter_mut().zip(self.iter()) {
            *slot = i as u8;
            count += 1;
        }
        let done = k == 0 || k > count;
        FixedSizeSubsetIter {
            positions,
            count,
            current: if done { 0 } else { (1u64 << k) - 1 },
            done,
        }
    }
}

impl fmt::Display for PredSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "p{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the non-empty subsets of a [`PredSet`] (largest first,
/// ending with the full set's smallest submask).
pub struct SubsetIter {
    mask: u32,
    sub: u32,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = PredSet;

    fn next(&mut self) -> Option<PredSet> {
        if self.done {
            return None;
        }
        let current = self.sub;
        if current == 0 {
            self.done = true;
            return None;
        }
        self.sub = (self.sub - 1) & self.mask;
        if self.sub == 0 {
            self.done = true;
        }
        Some(PredSet(current))
    }
}

/// Iterator over the size-`k` subsets of a [`PredSet`] (see
/// [`PredSet::subsets_of_size`]). Combinations are generated in ascending
/// order of their compressed (member-rank) bit pattern.
pub struct FixedSizeSubsetIter {
    positions: [u8; MAX_PREDICATES],
    count: usize,
    /// Current combination over the compressed `count`-bit index space.
    current: u64,
    done: bool,
}

impl Iterator for FixedSizeSubsetIter {
    type Item = PredSet;

    fn next(&mut self) -> Option<PredSet> {
        if self.done || self.current >= 1u64 << self.count {
            self.done = true;
            return None;
        }
        // Expand the compressed combination through the member positions.
        let mut mask = 0u32;
        let mut bits = self.current;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            mask |= 1 << self.positions[j];
        }
        // Gosper's hack: next integer with the same popcount.
        let v = self.current;
        let c = v & v.wrapping_neg();
        let r = v + c;
        self.current = (((v ^ r) >> 2) / c) | r;
        Some(PredSet(mask))
    }
}

/// Precomputed, per-query metadata over which the selectivity algorithms
/// run. Borrow-free (owns copies of the predicates) so estimators can hold
/// it alongside a database reference.
#[derive(Debug, Clone)]
pub struct QueryContext {
    tables: Vec<TableId>,
    predicates: Vec<Predicate>,
    /// Bitmask of table slots referenced by each predicate.
    table_masks: Vec<u32>,
    /// Subset of predicate indices that are joins.
    joins: PredSet,
    /// Cross product size of each table (aligned with `tables`).
    table_rows: Vec<u128>,
    /// Predicate-connectivity adjacency: `adjacency[i]` is the mask of
    /// predicates sharing at least one table with predicate `i` (including
    /// `i` itself). Connected components of this graph restricted to a
    /// subset are exactly the subset's standard-decomposition factors
    /// (Lemma 2), so separability becomes pure bit manipulation.
    adjacency: Vec<u32>,
}

impl QueryContext {
    /// Builds a context for a query against a database.
    ///
    /// # Panics
    /// Panics when the query has more than [`MAX_PREDICATES`] predicates
    /// (the workloads of the paper peak at 10).
    pub fn new(db: &Database, query: &SpjQuery) -> Self {
        assert!(
            query.predicates.len() <= MAX_PREDICATES,
            "query has too many predicates"
        );
        let tables = query.tables.clone();
        let slot = |t: TableId| -> u32 {
            tables
                .binary_search(&t)
                .expect("predicate tables validated by SpjQuery") as u32
        };
        let table_masks: Vec<u32> = query
            .predicates
            .iter()
            .map(|p| p.tables().iter().fold(0u32, |m, t| m | (1 << slot(t))))
            .collect();
        let mut joins = PredSet::EMPTY;
        for (i, p) in query.predicates.iter().enumerate() {
            if p.is_join() {
                joins.insert(i);
            }
        }
        let table_rows = tables
            .iter()
            .map(|&t| db.row_count(t).map(|n| n as u128).unwrap_or(0))
            .collect();
        let adjacency = (0..query.predicates.len())
            .map(|i| {
                table_masks
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m & table_masks[i] != 0)
                    .fold(0u32, |acc, (j, _)| acc | (1 << j))
            })
            .collect();
        QueryContext {
            tables,
            predicates: query.predicates.clone(),
            table_masks,
            joins,
            table_rows,
            adjacency,
        }
    }

    /// All predicates of the query.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The predicate with index `i`.
    pub fn predicate(&self, i: usize) -> &Predicate {
        &self.predicates[i]
    }

    /// The full predicate set of the query.
    pub fn all(&self) -> PredSet {
        PredSet::full(self.predicates.len())
    }

    /// The join predicates, as a set.
    pub fn joins(&self) -> PredSet {
        self.joins
    }

    /// The join members of `set`.
    pub fn joins_in(&self, set: PredSet) -> PredSet {
        set.intersect(self.joins)
    }

    /// The filter members of `set`.
    pub fn filters_in(&self, set: PredSet) -> PredSet {
        set.minus(self.joins)
    }

    /// Materializes a set as a vector of predicates.
    pub fn predicates_of(&self, set: PredSet) -> Vec<Predicate> {
        set.iter().map(|i| self.predicates[i]).collect()
    }

    /// Bitmask of table slots referenced by a predicate set (`tables(P)`).
    pub fn table_mask(&self, set: PredSet) -> u32 {
        set.iter().fold(0, |m, i| m | self.table_masks[i])
    }

    /// Table ids referenced by a predicate set.
    pub fn tables_of(&self, set: PredSet) -> Vec<TableId> {
        self.tables_of_slots(self.table_mask(set))
    }

    /// Table ids selected by a slot bitmask (slot `i` = `tables()[i]`).
    pub fn tables_of_slots(&self, mask: u32) -> Vec<TableId> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect()
    }

    /// The query's table list (sorted ascending; slot order).
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// `|tables(P)^×|`: the cardinality denominator for a predicate set.
    pub fn cross_product_size(&self, set: PredSet) -> u128 {
        self.cross_product_of_table_mask(self.table_mask(set))
    }

    /// Cross-product size of the tables selected by a slot bitmask (used by
    /// memo-coupled estimation, where groups carry table masks directly).
    pub fn cross_product_of_table_mask(&self, mask: u32) -> u128 {
        self.table_rows
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .fold(1u128, |acc, (_, &n)| acc.saturating_mul(n))
    }

    /// The mask of predicates sharing at least one table with predicate
    /// `i` (including `i` itself) — the connectivity row the dense DP
    /// engine's companion tables are derived from.
    pub fn adjacent(&self, i: usize) -> PredSet {
        PredSet(self.adjacency[i])
    }

    /// Separability test (Definition 2): `Sel(P)` is separable iff the
    /// predicates of `P` split into two non-empty groups referencing
    /// disjoint table sets. Pure bit manipulation — no allocation.
    pub fn is_separable(&self, set: PredSet) -> bool {
        !set.is_empty() && self.first_component(set) != set
    }

    /// The connected component of `set`'s lowest predicate index within the
    /// predicate-connectivity graph restricted to `set` — the first factor
    /// of the standard decomposition. Allocation-free frontier expansion
    /// over the precomputed adjacency masks; the empty set yields itself.
    pub fn first_component(&self, set: PredSet) -> PredSet {
        if set.is_empty() {
            return PredSet::EMPTY;
        }
        let mut comp = 1u32 << set.0.trailing_zeros();
        let mut frontier = comp;
        while frontier != 0 {
            let mut grown = 0u32;
            let mut bits = frontier;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                grown |= self.adjacency[i];
            }
            frontier = grown & set.0 & !comp;
            comp |= frontier;
        }
        PredSet(comp)
    }

    /// Iterates the standard-decomposition factors of `set` in ascending
    /// order of their smallest predicate index, without allocating.
    pub fn components(&self, set: PredSet) -> impl Iterator<Item = PredSet> + '_ {
        let mut rest = set;
        std::iter::from_fn(move || {
            if rest.is_empty() {
                return None;
            }
            let c = self.first_component(rest);
            rest = rest.minus(c);
            Some(c)
        })
    }

    /// The unique *standard decomposition* of `Sel(P)` into non-separable
    /// factors (Lemma 2): the connected components of the predicate
    /// hypergraph (predicates as hyperedges over their tables). Returns the
    /// components in ascending order of their smallest predicate index;
    /// singletons and the empty set yield themselves.
    pub fn standard_decomposition(&self, set: PredSet) -> Vec<PredSet> {
        self.components(set).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn test_db(n_tables: usize) -> Database {
        let mut db = Database::new();
        for i in 0..n_tables {
            db.add_table(
                TableBuilder::new(format!("t{i}"))
                    .column("a", vec![1, 2, 3])
                    .column("b", vec![4, 5, 6])
                    .build()
                    .unwrap(),
            );
        }
        db
    }

    fn ctx3() -> QueryContext {
        // p0: T0.a < 5, p1: T0.b = T1.a, p2: T1.b = T2.a, p3: T2.b = 7
        let db = test_db(3);
        let preds = vec![
            Predicate::filter(c(0, 0), CmpOp::Lt, 5),
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(2, 1), CmpOp::Eq, 7),
        ];
        let q = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        QueryContext::new(&db, &q)
    }

    #[test]
    fn predset_basic_operations() {
        let a = PredSet::full(4);
        assert_eq!(a.len(), 4);
        let b = PredSet::singleton(2);
        assert!(b.is_subset_of(a));
        assert_eq!(a.minus(b).len(), 3);
        assert!(!a.minus(b).contains(2));
        assert_eq!(a.intersect(b), b);
        assert_eq!(
            b.union(PredSet::singleton(0)).iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert!(PredSet::EMPTY.is_empty());
    }

    #[test]
    fn subsets_enumerates_all_nonempty() {
        let s = PredSet(0b1011);
        let subs: Vec<u32> = s.subsets().map(|p| p.0).collect();
        assert_eq!(subs.len(), 7); // 2^3 − 1
        assert!(subs.contains(&0b1011));
        assert!(subs.contains(&0b0001));
        assert!(subs.contains(&0b1010));
        assert!(!subs.contains(&0b0100), "non-subset bit");
        // All distinct.
        let mut sorted = subs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
    }

    #[test]
    fn subsets_of_empty_is_empty() {
        assert_eq!(PredSet::EMPTY.subsets().count(), 0);
    }

    #[test]
    fn joins_and_filters_split() {
        let ctx = ctx3();
        assert_eq!(ctx.joins().iter().collect::<Vec<_>>(), vec![1, 2]);
        let all = ctx.all();
        assert_eq!(ctx.filters_in(all).iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn table_masks_and_cross_products() {
        let ctx = ctx3();
        // p0 touches T0 only.
        assert_eq!(ctx.table_mask(PredSet::singleton(0)), 0b001);
        // p1 touches T0 and T1.
        assert_eq!(ctx.table_mask(PredSet::singleton(1)), 0b011);
        assert_eq!(
            ctx.tables_of(PredSet::singleton(1)),
            vec![TableId(0), TableId(1)]
        );
        // All tables have 3 rows.
        assert_eq!(ctx.cross_product_size(PredSet::singleton(1)), 9);
        assert_eq!(ctx.cross_product_size(ctx.all()), 27);
        assert_eq!(ctx.cross_product_size(PredSet::EMPTY), 1);
    }

    #[test]
    fn separability_matches_definition() {
        let ctx = ctx3();
        // {p0} ∪ {p3}: tables {T0} and {T2} disjoint → separable.
        let s = PredSet::singleton(0).union(PredSet::singleton(3));
        assert!(ctx.is_separable(s));
        // {p0, p1}: share T0 → non-separable.
        let s = PredSet::singleton(0).union(PredSet::singleton(1));
        assert!(!ctx.is_separable(s));
        // Whole query is connected → non-separable.
        assert!(!ctx.is_separable(ctx.all()));
        // Singleton is never separable.
        assert!(!ctx.is_separable(PredSet::singleton(2)));
    }

    #[test]
    fn standard_decomposition_finds_components() {
        let ctx = ctx3();
        // p0 (T0), p2 (T1,T2), p3 (T2): p2 and p3 connect; p0 alone.
        let s = PredSet(0b1101);
        let comps = ctx.standard_decomposition(s);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], PredSet::singleton(0));
        assert_eq!(comps[1], PredSet(0b1100));
    }

    #[test]
    fn standard_decomposition_partitions_input() {
        let ctx = ctx3();
        for mask in 1u32..16 {
            let s = PredSet(mask);
            let comps = ctx.standard_decomposition(s);
            let mut union = PredSet::EMPTY;
            for (i, c) in comps.iter().enumerate() {
                assert!(!c.is_empty());
                assert!(!ctx.is_separable(*c), "component must be non-separable");
                for later in &comps[i + 1..] {
                    assert!(c.intersect(*later).is_empty(), "components overlap");
                }
                union = union.union(*c);
            }
            assert_eq!(union, s, "components must cover the set");
        }
    }

    #[test]
    fn display_lists_members() {
        let s = PredSet(0b101);
        assert_eq!(s.to_string(), "{p0,p2}");
    }

    #[test]
    #[should_panic(expected = "too many predicates")]
    fn context_rejects_oversized_queries() {
        let db = test_db(1);
        let preds: Vec<Predicate> = (0..33)
            .map(|i| Predicate::filter(c(0, 0), CmpOp::Lt, i))
            .collect();
        let q = SpjQuery::new(vec![TableId(0)], preds).unwrap();
        let _ = QueryContext::new(&db, &q);
    }
}

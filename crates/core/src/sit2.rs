//! Multidimensional (two-attribute) SITs — §3.3's `SIT(x, X | Q)`.
//!
//! The paper's factor approximation is defined for multi-attribute SITs:
//! joining `H1 = SIT(x, X|Q)` against the other side's histogram produces
//! the carried distribution `H3 = SIT(x, X, Y | x=y, Q)` that estimates the
//! remaining predicates with no further independence assumptions (Example
//! 3). The experiments in §5 restrict themselves to unidimensional SITs;
//! this module implements the two-attribute generalization so the
//! reproduction can quantify what the restriction costs:
//!
//! * a [`Sit2`] stores a [`Hist2d`] grid over `(x, y)` built on the result
//!   of its query expression,
//! * `x` is typically a join attribute (enabling the carried-`H3` path) or
//!   another filter attribute of the same table (enabling
//!   filter-conditioned-on-filter estimates),
//! * `y` is the attribute whose conditional distribution the SIT answers
//!   queries about.

use std::collections::HashMap;
use std::fmt;

use sqe_engine::{execute_connected, ColRef, Database, Predicate, Result as EngineResult, RowSet};
use sqe_histogram::{diff_from_histograms, Hist2d, Histogram};

/// Identifier of a [`Sit2`] within a [`Sit2Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sit2Id(pub u32);

/// Default grid resolution per dimension (32 × 32 cells ≈ the footprint of
/// five 200-bucket unidimensional histograms).
pub const DEFAULT_GRID: usize = 32;

/// A two-attribute statistic on a query expression: `SIT(x, y | cond)`.
#[derive(Debug, Clone)]
pub struct Sit2 {
    /// Conditioning dimension (join attribute or co-located filter
    /// attribute).
    pub x: ColRef,
    /// Carried dimension (the attribute whose conditionals are answered).
    pub y: ColRef,
    /// Query-expression predicates (sorted; empty = base table).
    pub cond: Vec<Predicate>,
    /// The grid over `(x, y)` pairs drawn from the expression result.
    pub grid: Hist2d,
    /// Marginal distribution of `y` over the expression result (cached for
    /// divergence computations at estimation time).
    pub y_marginal: Histogram,
    /// Divergence of the `y` marginal from `y`'s base-table distribution
    /// (the §3.5 `diff`, on the carried attribute).
    pub diff: f64,
}

impl Sit2 {
    /// Builds a two-attribute SIT by evaluating its query expression
    /// (`cond = ∅` reads the base table; `x` and `y` must then share the
    /// table).
    pub fn build(
        db: &Database,
        x: ColRef,
        y: ColRef,
        cond: Vec<Predicate>,
        grid: usize,
    ) -> EngineResult<Self> {
        let mut cond = cond;
        cond.sort_unstable();
        cond.dedup();
        let mut tables: Vec<_> = cond
            .iter()
            .flat_map(|p| p.tables().iter())
            .chain([x.table, y.table])
            .collect();
        tables.sort_unstable();
        tables.dedup();
        let rows = if cond.is_empty() {
            debug_assert_eq!(x.table, y.table, "base 2-D SITs are single-table");
            RowSet::base(db, x.table)?
        } else {
            execute_connected(db, &tables, &cond)?
        };
        Self::from_rowset(db, x, y, cond, &rows, grid)
    }

    /// Builds from a pre-executed expression result (pool builder path).
    pub fn from_rowset(
        db: &Database,
        x: ColRef,
        y: ColRef,
        cond: Vec<Predicate>,
        rows: &RowSet,
        grid: usize,
    ) -> EngineResult<Self> {
        let xs = rows.gather(db, x)?;
        let ys = rows.gather(db, y)?;
        let mut pairs = Vec::with_capacity(rows.len());
        let mut nulls = 0usize;
        for i in 0..rows.len() {
            match (xs.get(i), ys.get(i)) {
                (Some(a), Some(b)) => pairs.push((a, b)),
                _ => nulls += 1,
            }
        }
        // The x dimension does the join matching and needs finer
        // resolution than the carried dimension.
        let grid = Hist2d::build(&pairs, nulls, grid * 16, grid);
        let y_marginal = grid.y_marginal();
        // Divergence of the carried attribute vs its base distribution.
        let base_y: Vec<i64> = db.column(y)?.valid_values();
        let expr_y: Vec<i64> = pairs.iter().map(|&(_, b)| b).collect();
        let diff = sqe_histogram::diff_exact(&base_y, &expr_y);
        Ok(Sit2 {
            x,
            y,
            cond,
            grid,
            y_marginal,
            diff,
        })
    }

    /// Divergence that a conditional histogram derived from this SIT adds
    /// on top of the stored `diff` (used by the `Diff` error function).
    pub fn conditional_divergence(&self, conditional: &Histogram) -> f64 {
        diff_from_histograms(&self.y_marginal, conditional)
            .max(self.diff)
            .clamp(0.0, 1.0)
    }
}

impl fmt::Display for Sit2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIT2({}, {}", self.x, self.y)?;
        if !self.cond.is_empty() {
            write!(f, " | ")?;
            for (i, p) in self.cond.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, ")")
    }
}

/// A catalog of two-attribute SITs, indexed by the carried attribute `y`.
#[derive(Debug, Clone, Default)]
pub struct Sit2Catalog {
    sits: Vec<Sit2>,
    by_y: HashMap<ColRef, Vec<Sit2Id>>,
}

impl Sit2Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a SIT, deduplicating on `(x, y, cond)`.
    pub fn add(&mut self, sit: Sit2) -> Sit2Id {
        if let Some(existing) = self.by_y.get(&sit.y).and_then(|ids| {
            ids.iter()
                .find(|id| {
                    let s = &self.sits[id.0 as usize];
                    s.x == sit.x && s.cond == sit.cond
                })
                .copied()
        }) {
            return existing;
        }
        let id = Sit2Id(self.sits.len() as u32);
        self.by_y.entry(sit.y).or_default().push(id);
        self.sits.push(sit);
        id
    }

    /// The SIT with the given id.
    pub fn get(&self, id: Sit2Id) -> &Sit2 {
        &self.sits[id.0 as usize]
    }

    /// All SITs whose carried attribute is `y`.
    pub fn for_y(&self, y: ColRef) -> &[Sit2Id] {
        self.by_y.get(&y).map_or(&[], Vec::as_slice)
    }

    /// Number of SITs.
    pub fn len(&self) -> usize {
        self.sits.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sits.is_empty()
    }

    /// Iterates over `(id, sit)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Sit2Id, &Sit2)> {
        self.sits
            .iter()
            .enumerate()
            .map(|(i, s)| (Sit2Id(i as u32), s))
    }
}

/// Builds a pool of two-attribute SITs for a workload: for every query
/// table, grids over (join-side attribute, filter attribute) pairs — which
/// enable the carried-`H3` estimation path — and over (filter, filter)
/// pairs on the same table — which capture filter-filter correlation.
/// Expressions are limited to at most `max_join_preds` join predicates,
/// like the 1-D pools.
pub fn build_pool2(
    db: &Database,
    workload: &[sqe_engine::SpjQuery],
    max_join_preds: usize,
    grid: usize,
) -> EngineResult<Sit2Catalog> {
    let mut catalog = Sit2Catalog::new();
    let mut seen: HashMap<(ColRef, ColRef, Vec<Predicate>), ()> = HashMap::new();
    for query in workload {
        let joins: Vec<Predicate> = query.joins().copied().collect();
        let filters: Vec<&Predicate> = query.filters().collect();
        // Filter attributes per table.
        let mut filter_attrs: Vec<ColRef> =
            filters.iter().flat_map(|p| p.columns().iter()).collect();
        filter_attrs.sort_unstable();
        filter_attrs.dedup();
        // Join-side attributes.
        let mut join_sides: Vec<ColRef> = joins.iter().flat_map(|p| p.columns().iter()).collect();
        join_sides.sort_unstable();
        join_sides.dedup();

        let mut defs: Vec<(ColRef, ColRef, Vec<Predicate>)> = Vec::new();
        // (join side, filter attr) on the same table: base-table grids and
        // grids over expressions of other joins.
        for &x in &join_sides {
            for &y in &filter_attrs {
                if x.table != y.table || x == y {
                    continue;
                }
                defs.push((x, y, Vec::new()));
                if max_join_preds >= 1 {
                    for j in &joins {
                        if j.columns().iter().any(|c| c == x) {
                            continue; // a SIT may not contain the join it feeds
                        }
                        if !j.tables().iter().any(|t| t == x.table) {
                            continue; // expression must touch the table
                        }
                        defs.push((x, y, vec![*j]));
                    }
                }
            }
        }
        // (filter, filter) pairs on the same table (base grids).
        for (i, &x) in filter_attrs.iter().enumerate() {
            for &y in &filter_attrs[i + 1..] {
                if x.table == y.table && x != y {
                    defs.push((x, y, Vec::new()));
                    defs.push((y, x, Vec::new()));
                }
            }
        }

        for (x, y, mut cond) in defs {
            cond.sort_unstable();
            cond.dedup();
            let key = (x, y, cond.clone());
            if seen.contains_key(&key) {
                continue;
            }
            seen.insert(key, ());
            catalog.add(Sit2::build(db, x, y, cond, grid)?);
        }
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, SpjQuery, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// r(a, x): a correlated with x; s(y): join target with skewed matches.
    fn db2() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn base_grid_captures_joint_distribution() {
        let db = db2();
        let sit = Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap();
        assert_eq!(sit.grid.valid_rows(), 6.0);
        // a and x are perfectly correlated: conditional on x = 10, a = 1.
        let cond = sit.grid.conditional_y(10, 10);
        assert!(cond.eq_selectivity(1) > 0.99);
        assert_eq!(sit.diff, 0.0, "base expression leaves y unchanged");
    }

    #[test]
    fn join_carry_reproduces_conditional_truth() {
        let db = db2();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let _ = join;
        let sit = Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap();
        let other = crate::sit::Sit::build_base(&db, c(1, 0)).unwrap();
        let (sel, carried) = sit.grid.join_carry(&other.histogram);
        // True join: a=1 rows (x=10) match 4 s-rows × 2 = 8; a=2 and a=3
        // match 1 × 2 = 2 each → 12 of 36 tuples.
        assert!((sel - 12.0 / 36.0).abs() < 1e-9, "sel {sel}");
        // True conditional P(a=1 | join) = 8/12.
        let got = carried.eq_selectivity(1);
        assert!((got - 8.0 / 12.0).abs() < 1e-6, "carried P(a=1) = {got}");
    }

    #[test]
    fn expression_sit2_has_nonzero_diff() {
        let db = db2();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let sit = Sit2::build(&db, c(0, 1), c(0, 0), vec![join], 16).unwrap();
        assert!(sit.diff > 0.2, "diff {}", sit.diff);
        assert!((sit.grid.valid_rows() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_indexes_and_dedups() {
        let db = db2();
        let a = Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap();
        let mut cat = Sit2Catalog::new();
        let id1 = cat.add(a.clone());
        let id2 = cat.add(a);
        assert_eq!(id1, id2);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.for_y(c(0, 0)), &[id1]);
        assert!(cat.for_y(c(1, 0)).is_empty());
        assert!(cat.get(id1).to_string().starts_with("SIT2("));
    }

    #[test]
    fn pool2_generates_join_filter_pairs() {
        let db = db2();
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        ])
        .unwrap();
        let pool = build_pool2(&db, &[q], 1, 16).unwrap();
        // Exactly the (r.x, r.a) base grid: the filter side has one
        // same-table join attribute and no second filter.
        assert_eq!(pool.len(), 1);
        let (_, sit) = pool.iter().next().unwrap();
        assert_eq!(sit.x, c(0, 1));
        assert_eq!(sit.y, c(0, 0));
        assert!(
            sit.cond.is_empty(),
            "the only join feeds x, so no expression variant"
        );
    }

    #[test]
    fn conditional_divergence_grows_with_restriction() {
        let db = db2();
        let sit = Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap();
        let narrow = sit.grid.conditional_y(10, 10);
        let wide = sit.grid.conditional_y(10, 30);
        assert!(sit.conditional_divergence(&narrow) > sit.conditional_divergence(&wide));
    }
}

//! Candidate-SIT identification (§3.3), instrumented for Figure 6.
//!
//! Given a conditional factor `Sel(P' | Q)`, the candidate SITs for an
//! attribute `a` of `P'` are the available `SIT(A | Q′)` with:
//!
//! 1. `a ∈ A` (unidimensional here, so `A = {a}`),
//! 2. `Q′ ⊆ Q` (the SIT's expression is consistent with the query — its
//!    missing conditioning `Q − Q′` is *assumed independent*), and
//! 3. `Q′` maximal (no other available SIT covers strictly more of `Q`).
//!
//! Every lookup is one **view-matching call** — the unit both this paper
//! and \[4\] count when comparing estimator overhead (Figure 6). The counter
//! lives in a `Cell` so estimators can expose it without threading `&mut`
//! everywhere.

use std::cell::Cell;

use sqe_engine::{ColRef, Predicate};

use crate::sit::{SitCatalog, SitId};

/// Candidate lookup over a [`SitCatalog`] with a view-matching call counter.
#[derive(Debug)]
pub struct SitMatcher<'a> {
    catalog: &'a SitCatalog,
    calls: Cell<u64>,
}

impl<'a> SitMatcher<'a> {
    /// Creates a matcher over a catalog.
    pub fn new(catalog: &'a SitCatalog) -> Self {
        SitMatcher {
            catalog,
            calls: Cell::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &'a SitCatalog {
        self.catalog
    }

    /// Number of view-matching calls issued so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the call counter.
    pub fn reset_calls(&self) {
        self.calls.set(0);
    }

    /// Candidate SITs for `attr` conditioned on `cond`: applicable
    /// (`sit.cond ⊆ cond`) and maximal among the applicable ones. Counts
    /// one view-matching call.
    pub fn candidates(&self, attr: ColRef, cond: &[Predicate]) -> Vec<SitId> {
        self.calls.set(self.calls.get() + 1);
        let applicable: Vec<SitId> = self
            .catalog
            .for_attr(attr)
            .iter()
            .copied()
            .filter(|&id| self.catalog.get(id).cond.iter().all(|p| cond.contains(p)))
            .collect();
        // Maximality: drop SITs whose condition is a strict subset of
        // another applicable SIT's condition.
        applicable
            .iter()
            .copied()
            .filter(|&id| {
                let c = &self.catalog.get(id).cond;
                !applicable.iter().any(|&other| {
                    other != id && {
                        let oc = &self.catalog.get(other).cond;
                        oc.len() > c.len() && c.iter().all(|p| oc.contains(p))
                    }
                })
            })
            .collect()
    }

    /// Like [`Self::candidates`] but without the maximality filter — used
    /// by the `GVM` baseline, whose greedy procedure ranks all applicable
    /// SITs itself. Counts one view-matching call.
    pub fn applicable(&self, attr: ColRef, cond: &[Predicate]) -> Vec<SitId> {
        self.calls.set(self.calls.get() + 1);
        self.catalog
            .for_attr(attr)
            .iter()
            .copied()
            .filter(|&id| self.catalog.get(id).cond.iter().all(|p| cond.contains(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{Database, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// Three chained tables so two distinct join predicates exist.
    fn db3() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3, 4])
                .column("x", vec![1, 1, 2, 2])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![1, 2, 2])
                .column("z", vec![7, 8, 9])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("t")
                .column("w", vec![7, 7, 8])
                .build()
                .unwrap(),
        );
        db
    }

    fn catalog(db: &Database) -> (SitCatalog, Predicate, Predicate) {
        let j_rs = Predicate::join(c(0, 1), c(1, 0));
        let j_st = Predicate::join(c(1, 1), c(2, 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build_base(db, c(0, 0)).unwrap());
        cat.add(Sit::build(db, c(0, 0), vec![j_rs]).unwrap());
        cat.add(Sit::build(db, c(0, 0), vec![j_rs, j_st]).unwrap());
        (cat, j_rs, j_st)
    }

    #[test]
    fn candidates_respect_condition_subset() {
        let db = db3();
        let (cat, j_rs, j_st) = catalog(&db);
        let m = SitMatcher::new(&cat);
        // cond = {j_rs}: SIT(a|j_rs) applies and dominates the base SIT;
        // SIT(a|j_rs,j_st) does not apply (extra predicate).
        let cands = m.candidates(c(0, 0), &[j_rs]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cat.get(cands[0]).cond, vec![j_rs]);
        // cond = {}: only the base SIT.
        let cands = m.candidates(c(0, 0), &[]);
        assert_eq!(cands.len(), 1);
        assert!(cat.get(cands[0]).is_base());
        // cond = {j_rs, j_st}: the two-join SIT dominates everything.
        let cands = m.candidates(c(0, 0), &[j_rs, j_st]);
        assert_eq!(cands.len(), 1);
        assert_eq!(cat.get(cands[0]).cond.len(), 2);
    }

    #[test]
    fn maximality_keeps_incomparable_sits() {
        let db = db3();
        let j_rs = Predicate::join(c(0, 1), c(1, 0));
        let j_st = Predicate::join(c(1, 1), c(2, 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build(&db, c(1, 1), vec![j_rs]).unwrap());
        cat.add(Sit::build(&db, c(1, 1), vec![j_st]).unwrap());
        let m = SitMatcher::new(&cat);
        // Example 2's shape: two maximal incomparable candidates survive.
        let cands = m.candidates(c(1, 1), &[j_rs, j_st]);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn applicable_skips_maximality() {
        let db = db3();
        let (cat, j_rs, _) = catalog(&db);
        let m = SitMatcher::new(&cat);
        let all = m.applicable(c(0, 0), &[j_rs]);
        assert_eq!(all.len(), 2, "base + joined, no maximality filter");
    }

    #[test]
    fn calls_are_counted_and_resettable() {
        let db = db3();
        let (cat, j_rs, _) = catalog(&db);
        let m = SitMatcher::new(&cat);
        assert_eq!(m.calls(), 0);
        m.candidates(c(0, 0), &[]);
        m.candidates(c(0, 0), &[j_rs]);
        m.applicable(c(0, 0), &[]);
        assert_eq!(m.calls(), 3);
        m.reset_calls();
        assert_eq!(m.calls(), 0);
    }

    #[test]
    fn unknown_attribute_has_no_candidates() {
        let db = db3();
        let (cat, _, _) = catalog(&db);
        let m = SitMatcher::new(&cat);
        assert!(m.candidates(c(2, 0), &[]).is_empty());
        assert_eq!(m.calls(), 1, "a miss still counts as a call");
    }
}

//! Resource governance for estimation: wall-clock deadlines, work-unit
//! quotas, and cooperative cancellation.
//!
//! The worst case of `getSelectivity` is `O(3ⁿ)`; a production service
//! cannot let one n=16 dense fill stall a snapshot. A [`Budget`] describes
//! the caller's limits; the estimator materializes it into a
//! [`BudgetMeter`] — a shared, thread-safe meter that every DP loop
//! charges as it works. When the meter trips, in-flight work unwinds with
//! an [`ExhaustReason`] and the degradation ladder (see `ladder`) retries
//! on a cheaper rung instead of returning an error.
//!
//! Cost model: one work unit per lattice mask solved plus one per freshly
//! computed peel link. Quota checks are exact (every charge compares
//! against the cap), but wall-clock and cancellation polls are amortized —
//! `Instant::now()` and the cancel-flag load happen only when the spent
//! counter crosses a [`POLL_EVERY`] boundary, so the no-deadline and
//! in-budget paths stay a couple of relaxed atomics per mask.
//!
//! Trip state is sticky and first-reason-wins: once tripped, every
//! subsequent [`BudgetMeter::charge`]/[`BudgetMeter::check`] returns the
//! same reason, so racing rank-parallel workers all observe one coherent
//! verdict.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Charge interval between deadline/cancellation polls. Amortizes
/// `Instant::now()` to roughly once per thousand lattice masks.
pub const POLL_EVERY: u64 = 1024;

/// A cooperative cancellation handle. Cloning shares the flag; any clone
/// can [`cancel`](CancelToken::cancel) and every meter polling the token
/// trips on its next checkpoint.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Caller-facing budget specification. All limits are optional;
/// [`Budget::default`] is unlimited and changes nothing about estimation.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock allowance measured from the moment estimation starts.
    pub deadline: Option<Duration>,
    /// Work-unit quota (lattice masks solved + peel links computed).
    pub quota: Option<u64>,
    /// Cooperative cancellation flag, polled at the same checkpoints as
    /// the deadline.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits: estimation runs exactly as if no budget existed.
    pub fn unlimited() -> Self {
        Self::default()
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_quota(mut self, quota: u64) -> Self {
        self.quota = Some(quota);
        self
    }

    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.quota.is_none() && self.cancel.is_none()
    }
}

/// Why a budgeted computation stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit quota was spent.
    WorkQuota,
    /// The caller's [`CancelToken`] fired.
    Cancelled,
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExhaustReason::Deadline => "deadline",
            ExhaustReason::WorkQuota => "work-quota",
            ExhaustReason::Cancelled => "cancelled",
        })
    }
}

/// Why an estimate carries a quality label below [`Quality::Full`].
/// Extends [`ExhaustReason`] with panic isolation: a request whose worker
/// panicked is answered from the independence floor rather than erroring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    Deadline,
    WorkQuota,
    Cancelled,
    /// The estimator panicked; the service isolated it and fell back.
    Panic,
}

impl From<ExhaustReason> for DegradeReason {
    fn from(r: ExhaustReason) -> Self {
        match r {
            ExhaustReason::Deadline => DegradeReason::Deadline,
            ExhaustReason::WorkQuota => DegradeReason::WorkQuota,
            ExhaustReason::Cancelled => DegradeReason::Cancelled,
        }
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::WorkQuota => "work-quota",
            DegradeReason::Cancelled => "cancelled",
            DegradeReason::Panic => "panic",
        })
    }
}

/// Quality tier of a returned estimate, ordered worst-to-best so that
/// `a < b` means "a is a coarser answer than b". The degradation ladder
/// walks this enum downward from [`Quality::Full`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Quality {
    /// Guaranteed-sound upper bound from the pessimistic backend's degree
    /// sketch (see [`crate::pessimistic`]): not a point estimate at all,
    /// just the safety envelope — the coarsest answer the ladder can give,
    /// but one with a hard correctness guarantee the tiers above lack.
    Bound,
    /// Independence-only baseline: O(n), no subset enumeration.
    Independence,
    /// Greedy view matching (single chain, no DP).
    Greedy,
    /// §3.4 SIT-driven-pruned DP.
    Pruned,
    /// Beam-search approximate DP (see [`crate::beam`]): a bounded
    /// frontier of decompositions instead of the full lattice. Better than
    /// `Pruned` (it scores and ranks every generated candidate, pruning
    /// only by measured bound) but below `Full` (wide-width exactness is
    /// not guaranteed at service widths) — and the *only* tier reachable
    /// for queries wider than the exact engines' n = 20 cliff.
    Beam,
    /// The full dynamic program — identical to an unbudgeted run.
    Full,
}

impl Quality {
    pub fn label(self) -> &'static str {
        match self {
            Quality::Bound => "bound",
            Quality::Independence => "independence",
            Quality::Greedy => "greedy",
            Quality::Pruned => "pruned",
            Quality::Beam => "beam",
            Quality::Full => "full",
        }
    }

    /// All tiers, worst-to-best (the `Ord` order).
    pub const ALL: [Quality; 6] = [
        Quality::Bound,
        Quality::Independence,
        Quality::Greedy,
        Quality::Pruned,
        Quality::Beam,
        Quality::Full,
    ];
}

/// Sticky trip encoding: 0 = not tripped, else `ExhaustReason` + 1.
const TRIP_NONE: u8 = 0;

fn encode(r: ExhaustReason) -> u8 {
    match r {
        ExhaustReason::Deadline => 1,
        ExhaustReason::WorkQuota => 2,
        ExhaustReason::Cancelled => 3,
    }
}

fn decode(v: u8) -> Option<ExhaustReason> {
    match v {
        1 => Some(ExhaustReason::Deadline),
        2 => Some(ExhaustReason::WorkQuota),
        3 => Some(ExhaustReason::Cancelled),
        _ => None,
    }
}

/// The materialized, shareable form of a [`Budget`]: absolute deadline,
/// atomic spend counter, sticky trip flag. One meter governs one ladder
/// rung; rank-parallel workers all charge the same meter through an
/// `Arc`.
#[derive(Debug)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    cap: Option<u64>,
    cancel: Option<CancelToken>,
    spent: AtomicU64,
    tripped: AtomicU8,
    /// Precomputed fast-path discriminant: false means `charge` is a
    /// no-op beyond the inlined branch.
    limited: bool,
}

impl BudgetMeter {
    /// A meter with no limits; `charge` short-circuits to `Ok(())`.
    pub fn unlimited() -> Self {
        Self::from_parts(None, None, None)
    }

    /// Builds a meter from absolute limits. The ladder uses this to slice
    /// one caller [`Budget`] into per-rung meters.
    pub fn from_parts(
        deadline: Option<Instant>,
        cap: Option<u64>,
        cancel: Option<CancelToken>,
    ) -> Self {
        let limited = deadline.is_some() || cap.is_some() || cancel.is_some();
        BudgetMeter {
            deadline,
            cap,
            cancel,
            spent: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            limited,
        }
    }

    /// Materializes a caller budget as a single meter starting now.
    pub fn start(budget: &Budget) -> Self {
        Self::from_parts(
            budget.deadline.map(|d| Instant::now() + d),
            budget.quota,
            budget.cancel.clone(),
        )
    }

    /// Work units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The sticky trip reason, if any.
    pub fn tripped(&self) -> Option<ExhaustReason> {
        decode(self.tripped.load(Ordering::Relaxed))
    }

    /// Charges `units` of work. Exact against the quota; deadline and
    /// cancellation are polled only when the counter crosses a
    /// [`POLL_EVERY`] boundary. Returns the sticky reason once tripped.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), ExhaustReason> {
        if !self.limited {
            return Ok(());
        }
        self.charge_slow(units)
    }

    fn charge_slow(&self, units: u64) -> Result<(), ExhaustReason> {
        if let Some(r) = self.tripped() {
            return Err(r);
        }
        let before = self.spent.fetch_add(units, Ordering::Relaxed);
        let after = before.saturating_add(units);
        if let Some(cap) = self.cap {
            if after > cap {
                return Err(self.trip(ExhaustReason::WorkQuota));
            }
        }
        if before / POLL_EVERY != after / POLL_EVERY {
            self.poll()?;
        }
        Ok(())
    }

    /// Non-charging checkpoint: returns the sticky reason if tripped.
    #[inline]
    pub fn check(&self) -> Result<(), ExhaustReason> {
        match self.tripped() {
            Some(r) => Err(r),
            None => Ok(()),
        }
    }

    /// Polls deadline and cancellation *now*, skipping the amortization.
    /// Used at rung boundaries and before committing to expensive steps.
    pub fn force_poll(&self) -> Result<(), ExhaustReason> {
        if !self.limited {
            return Ok(());
        }
        if let Some(r) = self.tripped() {
            return Err(r);
        }
        self.poll()
    }

    fn poll(&self) -> Result<(), ExhaustReason> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(self.trip(ExhaustReason::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(ExhaustReason::Deadline));
            }
        }
        Ok(())
    }

    /// Records the trip; first reason wins under races and is returned.
    fn trip(&self, reason: ExhaustReason) -> ExhaustReason {
        match self.tripped.compare_exchange(
            TRIP_NONE,
            encode(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => reason,
            Err(prev) => decode(prev).unwrap_or(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let m = BudgetMeter::unlimited();
        for _ in 0..10_000 {
            m.charge(7).unwrap();
        }
        assert_eq!(m.tripped(), None);
        assert!(m.check().is_ok());
        assert!(m.force_poll().is_ok());
        // The fast path skips accounting entirely.
        assert_eq!(m.spent(), 0);
    }

    #[test]
    fn quota_is_exact_and_sticky() {
        let m = BudgetMeter::from_parts(None, Some(10), None);
        for _ in 0..10 {
            m.charge(1).unwrap();
        }
        assert_eq!(m.charge(1), Err(ExhaustReason::WorkQuota));
        assert_eq!(m.check(), Err(ExhaustReason::WorkQuota));
        assert_eq!(m.charge(1), Err(ExhaustReason::WorkQuota));
        assert_eq!(m.tripped(), Some(ExhaustReason::WorkQuota));
    }

    #[test]
    fn expired_deadline_trips_on_force_poll_and_poll_boundary() {
        let past = Instant::now() - Duration::from_millis(5);
        let m = BudgetMeter::from_parts(Some(past), None, None);
        // Small charges inside one poll window do not observe the clock.
        m.charge(1).unwrap();
        assert_eq!(m.force_poll(), Err(ExhaustReason::Deadline));

        let m = BudgetMeter::from_parts(Some(past), None, None);
        // Crossing the poll boundary observes it.
        assert_eq!(m.charge(POLL_EVERY + 1), Err(ExhaustReason::Deadline));
    }

    #[test]
    fn cancel_token_trips_cooperatively() {
        let tok = CancelToken::new();
        let m = BudgetMeter::from_parts(None, None, Some(tok.clone()));
        m.charge(POLL_EVERY * 2).unwrap();
        tok.cancel();
        assert!(tok.is_cancelled());
        // Amortization: a sub-window charge may not see it yet, but the
        // next boundary crossing must.
        assert_eq!(m.charge(POLL_EVERY * 2), Err(ExhaustReason::Cancelled));
        assert_eq!(m.check(), Err(ExhaustReason::Cancelled));
    }

    #[test]
    fn first_trip_reason_wins() {
        let tok = CancelToken::new();
        let m = BudgetMeter::from_parts(None, Some(5), Some(tok.clone()));
        assert_eq!(m.charge(100), Err(ExhaustReason::WorkQuota));
        tok.cancel();
        // Still the original reason: trips are sticky.
        assert_eq!(m.check(), Err(ExhaustReason::WorkQuota));
        assert_eq!(m.force_poll(), Err(ExhaustReason::WorkQuota));
    }

    #[test]
    fn quality_tiers_are_ordered_worst_to_best() {
        assert!(Quality::Bound < Quality::Independence);
        assert!(Quality::Independence < Quality::Greedy);
        assert!(Quality::Greedy < Quality::Pruned);
        assert!(Quality::Pruned < Quality::Beam);
        assert!(Quality::Beam < Quality::Full);
        assert_eq!(Quality::ALL.len(), 6);
        assert!(Quality::ALL.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(Quality::Full.label(), "full");
        assert_eq!(Quality::Beam.label(), "beam");
        assert_eq!(Quality::Bound.label(), "bound");
    }

    #[test]
    fn budget_builder_and_unlimited_detection() {
        assert!(Budget::unlimited().is_unlimited());
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(1))
            .with_quota(10)
            .with_cancel(CancelToken::new());
        assert!(!b.is_unlimited());
        let m = BudgetMeter::start(&b);
        assert!(m.limited);
    }
}

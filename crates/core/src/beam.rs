//! Beam-search approximate DP: `getSelectivity` beyond the exact cliff.
//!
//! The exact engines walk the full decomposition space — `O(3ⁿ)` submask
//! iterations over a `2ⁿ` lattice — which hard-caps the dense tables at
//! `n = 20` and makes one 30-predicate query a cliff, not a slowdown. The
//! beam engine explores a **bounded frontier of decompositions** instead:
//! for each non-separable set it *generates* a small candidate family of
//! atomic decompositions `Sel(P′|Q)·Sel(Q)`, *scores* every candidate by
//! its conditional-factor error, keeps the [`BeamConfig::width`] best (plus
//! the always-valid `P′ = P` fallback), and only recurses into the kept
//! candidates' conditioning sets. The memo stays the recursive engine's
//! open-addressed [`crate::flat::FlatMemo`] — sparse by construction, no
//! `2ⁿ` allocation — so only the states the beam actually visits cost
//! memory.
//!
//! ## The admissible lower bound
//!
//! The error functions of §3.2 are monotone and algebraic: the total error
//! of a decomposition is `err(P′|Q) + err(Q)` with `err(Q) ≥ 0`. The
//! factor error `err(P′|Q)` is therefore an **admissible lower bound** on
//! the decomposition's total error — it never overestimates — which makes
//! best-first selection on it sound in the A*/bound-sketch sense: a
//! candidate whose bound already exceeds another candidate's *achieved*
//! total can never win the argmin. Scoring is cheap (factor chains are
//! memoized per `(predicate, conditioning-set)` link, never per candidate)
//! and recursion — the expensive part — is spent only on survivors.
//!
//! ## Exactness at unbounded width
//!
//! With `width` covering every submask and no expansions cap, generation
//! degenerates to the exact engines' full descending-submask walk, the
//! selection keeps everything, and the evaluation loop is the recursive
//! engine's loop verbatim — values, memo entry sets, and peel counts are
//! **bit-identical** to [`crate::DpStrategy::Recursive`] (the property
//! `tests/beam.rs` pins). Shrinking `width` only removes candidates, so
//! error is monotone in the knob.
//!
//! ## Cooperative degradation
//!
//! The engine charges the shared [`crate::BudgetMeter`] one unit per
//! expanded set plus one per freshly computed link, polls the deadline at
//! the same amortized stride as the exact walks, and aborts with the
//! sticky trip reason — so a beam rung degrades down the quality ladder
//! exactly like the exact rungs do. [`BeamConfig::expansions_cap`] bounds
//! the search even under an unlimited budget: once the cap is hit,
//! remaining sets close with the fallback decomposition only (counted in
//! [`BeamStats::cap_fallbacks`]).

/// Knobs of the beam search. Width trades error for latency; the cap
/// bounds total work per query independent of the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Candidates kept per expanded set, *in addition to* the always-kept
    /// `P′ = P` fallback. Monotone: larger explores more, `usize::MAX`
    /// (see [`BeamConfig::UNBOUNDED`]) reproduces the exact engine.
    pub width: usize,
    /// Total non-separable expansions allowed per query; past it every
    /// remaining set closes with the fallback decomposition only. Bounds
    /// worst-case work at `O(cap · width · n)` links.
    pub expansions_cap: u64,
}

impl BeamConfig {
    /// No width limit, no expansions cap: the beam engine becomes the
    /// exact recursive engine (bit-for-bit — the proptest anchor).
    pub const UNBOUNDED: BeamConfig = BeamConfig {
        width: usize::MAX,
        expansions_cap: u64::MAX,
    };

    /// Whether `width` keeps every candidate a set of `n` predicates can
    /// generate (`2ⁿ − 1` non-empty submasks), i.e. selection is a no-op.
    pub fn exhaustive_for(&self, n: usize) -> bool {
        n >= usize::BITS as usize - 1 || self.width >= (1usize << n) - 1
    }
}

impl Default for BeamConfig {
    /// Measured on the snowflake wide workload (see `BENCH_estimator.json`
    /// n = 20..32 rows): width 4 with a 512-expansion cap keeps the n = 32
    /// cold estimate several times under its slice of the service's
    /// default deadline on a single core — even in debug builds — while
    /// the n ≤ 16 q-error envelope vs the exact engine stays inside the
    /// committed ACCURACY.json gate (wider beams measured identically on
    /// the seeded workload; see EXPERIMENTS.md).
    fn default() -> Self {
        BeamConfig {
            width: 4,
            expansions_cap: 512,
        }
    }
}

/// Observability counters of one estimator's beam search, the
/// [`crate::FillStats`]-style companion for the approximate engine.
/// Cumulative over every request the estimator served; all zero when the
/// beam engine never ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BeamStats {
    /// Non-separable sets expanded (each one candidate-generation +
    /// selection + evaluation round).
    pub expansions: u64,
    /// Candidates produced by generation, before selection.
    pub generated: u64,
    /// Candidates scored with a conditional-factor evaluation (equals
    /// `generated` minus §3.4-pruned candidates).
    pub scored: u64,
    /// Scored candidates dropped by width selection — the frontier the
    /// beam refused to recurse into.
    pub pruned: u64,
    /// Sets closed fallback-only because [`BeamConfig::expansions_cap`]
    /// was already spent.
    pub cap_fallbacks: u64,
    /// Deepest conditioning-set recursion observed — the peak live
    /// frontier of the best-first walk.
    pub frontier_peak: usize,
    /// Σ over expansions of `err_f(chosen) / total(chosen)` — see
    /// [`BeamStats::bound_tightness`].
    pub tightness_sum: f64,
}

impl BeamStats {
    /// Mean admissible-bound tightness over all expansions: how much of
    /// each chosen decomposition's total error its selection-time lower
    /// bound already accounted for, in `[0, 1]`. Near 1 means the bound
    /// ranks candidates almost as well as the full evaluation would —
    /// width can shrink cheaply; near 0 means the recursive term
    /// dominates and selection is flying blind. `None` until the beam
    /// engine has expanded at least one set.
    pub fn bound_tightness(&self) -> Option<f64> {
        (self.expansions > 0).then(|| self.tightness_sum / self.expansions as f64)
    }
}

/// One generated candidate decomposition of the set being expanded,
/// scored by its conditional factor.
#[derive(Debug, Clone, Copy)]
pub struct Scored {
    /// The factor mask `P′` (the conditioning set is `m \ P′`).
    pub mask: u32,
    /// `Sel(P′|Q)` from the scoring pass, reused by the evaluation loop.
    pub sel_f: f64,
    /// `err(P′|Q)` — the admissible lower bound this candidate is ranked
    /// by.
    pub err_f: f64,
}

/// Generates the bounded candidate family for non-separable `m` into
/// `out`: the `P′ = m` fallback, one SIT-guided candidate `P′ = m \ cond`
/// per usable non-base SIT whose condition fits strictly inside `m` and
/// whose attribute touches it (the §3.4 guidance masks, reused here as a
/// *generator* rather than a filter), and every single-predicate factor
/// `P′ = {i}` — the implicit-chain heads the exact argmin most often
/// picks. Deduplicated and sorted **descending by mask**, the exact
/// engines' submask order, so the evaluation loop's strict-`<` tie-break
/// agrees with theirs on any shared prefix.
pub fn generate_candidates(m: u32, guidance: &[(u32, u32)], out: &mut Vec<u32>) {
    out.clear();
    out.push(m);
    for &(attr, cond) in guidance {
        let p_prime = m & !cond;
        if cond & m == cond && p_prime != 0 && attr & p_prime != 0 {
            out.push(p_prime);
        }
    }
    let mut bits = m;
    while bits != 0 {
        out.push(bits & bits.wrapping_neg());
        bits &= bits - 1;
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out.dedup();
}

/// Width selection over the scored candidates: marks the `P′ = m` fallback
/// (index 0 — generation sorts descending, so the full mask is first) plus
/// the `width` smallest lower bounds, ties broken toward the earlier
/// (larger-mask) candidate so selection is deterministic. Returns the
/// number of candidates dropped. `keep` is reused scratch; `order` too.
pub fn select_width(
    scored: &[Scored],
    width: usize,
    order: &mut Vec<usize>,
    keep: &mut Vec<bool>,
) -> u64 {
    keep.clear();
    keep.resize(scored.len(), false);
    if let Some(first) = keep.first_mut() {
        *first = true;
    }
    if scored.len() <= width.saturating_add(1) {
        keep.iter_mut().for_each(|k| *k = true);
        return 0;
    }
    order.clear();
    order.extend(1..scored.len());
    order.sort_unstable_by(|&a, &b| scored[a].err_f.total_cmp(&scored[b].err_f).then(a.cmp(&b)));
    for &i in order.iter().take(width) {
        keep[i] = true;
    }
    (order.len() - width) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(errs: &[f64]) -> Vec<Scored> {
        errs.iter()
            .map(|&err_f| Scored {
                mask: 0,
                sel_f: 1.0,
                err_f,
            })
            .collect()
    }

    #[test]
    fn unbounded_config_is_exhaustive_at_every_n() {
        for n in 1..=32 {
            assert!(BeamConfig::UNBOUNDED.exhaustive_for(n), "n={n}");
        }
        assert!(!BeamConfig::default().exhaustive_for(3)); // 2³−1 = 7 > 4
        assert!(BeamConfig::default().exhaustive_for(2)); // 2²−1 = 3 ≤ 4
    }

    #[test]
    fn candidates_are_sorted_descending_and_deduped() {
        let m = 0b1011;
        let guidance = [(0b0001, 0b0010), (0b1000, 0b0011), (0b0100, 0b0001)];
        let mut out = Vec::new();
        generate_candidates(m, &guidance, &mut out);
        // Fallback m, guided m\0b0010 = 0b1001, m\0b0011 = 0b1000 (also a
        // single), singles 1, 2, 8. The (0b0100, ..) guide's attribute
        // misses m \ cond so it is skipped.
        assert_eq!(out, vec![0b1011, 0b1001, 0b1000, 0b0010, 0b0001]);
        assert!(out.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn guided_candidate_requires_condition_inside_m() {
        let mut out = Vec::new();
        // Condition 0b10000 lies outside m: no guided candidate.
        generate_candidates(0b0011, &[(0b0001, 0b1_0000)], &mut out);
        assert_eq!(out, vec![0b0011, 0b0010, 0b0001]);
    }

    #[test]
    fn selection_keeps_fallback_and_best_bounds() {
        let s = scored(&[9.0, 3.0, 1.0, 2.0, 5.0]);
        let (mut order, mut keep) = (Vec::new(), Vec::new());
        let dropped = select_width(&s, 2, &mut order, &mut keep);
        assert_eq!(keep, vec![true, false, true, true, false]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn selection_under_width_keeps_everything() {
        let s = scored(&[4.0, 2.0, 3.0]);
        let (mut order, mut keep) = (Vec::new(), Vec::new());
        let dropped = select_width(&s, 2, &mut order, &mut keep);
        assert_eq!(keep, vec![true, true, true]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn selection_ties_break_toward_earlier_candidate() {
        let s = scored(&[9.0, 2.0, 2.0, 2.0]);
        let (mut order, mut keep) = (Vec::new(), Vec::new());
        let dropped = select_width(&s, 1, &mut order, &mut keep);
        assert_eq!(keep, vec![true, true, false, false]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn tightness_is_mean_over_expansions() {
        let mut st = BeamStats::default();
        assert_eq!(st.bound_tightness(), None);
        st.expansions = 2;
        st.tightness_sum = 1.5;
        assert_eq!(st.bound_tightness(), Some(0.75));
    }
}

//! Pluggable atomic-estimate backends.
//!
//! The paper's framework deliberately leaves the *atomic* estimator — the
//! thing that answers one conditional factor `Sel(p | Q)` — pluggable: the
//! DP over decompositions (Figure 3) only needs per-link values and error
//! charges. This module abstracts that seam as [`SelectivityBackend`]:
//!
//! * [`DiffBackend`] — the default. Overrides nothing, so every peel runs
//!   the existing maxDiff/diff machinery in `link.rs` unchanged (the
//!   refactor is bit-identical to the pre-trait code, values *and*
//!   memo/peel/view-matching counts — see `tests/backends.rs`);
//! * [`crate::bn::BnBackend`] — Bayesian-network backend (Chow-Liu trees
//!   over per-table attribute pairs), intercepting conjunctive filter
//!   peels that the default path would estimate under independence;
//! * [`crate::pessimistic::PessimisticBackend`] — bound-sketch backend
//!   producing guaranteed cardinality *upper bounds* from degree
//!   sequences; peels delegate, but the whole-query bound feeds the
//!   service's `Estimate::upper_bound` field and the `Quality::Bound`
//!   degradation floor.
//!
//! A backend intercepts *before* the shared cross-query link cache is
//! consulted: cached link values are keyed by `(mode, predicate,
//! conditioning set)` only, so a non-default backend must not read or
//! populate entries the default machinery owns.

use sqe_engine::{Database, Predicate, SpjQuery};

use crate::error::ErrorMode;
use crate::predset::{PredSet, QueryContext};

/// One conditional-factor evaluation request `Sel(p | cset)`, as seen by a
/// backend. Wraps the estimator's internal link context behind stable
/// accessors so backends outside `link.rs` never touch DP internals.
pub struct PeelQuery<'a> {
    pub(crate) db: &'a Database,
    pub(crate) ctx: &'a QueryContext,
    pub(crate) mode: ErrorMode,
    pub(crate) pred_index: usize,
    pub(crate) cset: PredSet,
}

impl PeelQuery<'_> {
    /// The database the estimate is against.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// The error mode the surrounding DP ranks decompositions under.
    pub fn mode(&self) -> ErrorMode {
        self.mode
    }

    /// The predicate being peeled.
    pub fn predicate(&self) -> Predicate {
        *self.ctx.predicate(self.pred_index)
    }

    /// Number of predicates in the conditioning set.
    pub fn conditioning_len(&self) -> usize {
        self.cset.len()
    }

    /// The conditioning predicates, in query order.
    pub fn conditioning(&self) -> Vec<Predicate> {
        self.ctx.predicates_of(self.cset)
    }
}

/// An atomic-estimate backend: the strategy object behind every
/// conditional-factor evaluation of the `getSelectivity` DP.
///
/// Both hooks default to "not mine": `peel` returning `None` routes the
/// factor to the built-in maxDiff/diff machinery, and `upper_bound`
/// returning `None` means the backend offers no cardinality guarantee.
/// Implementations must be deterministic — the engines replay peels across
/// threads and schedules and assert bit-identical results.
pub trait SelectivityBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier ("diff", "bn", "pessimistic"), used in
    /// reports and labels.
    fn name(&self) -> &'static str;

    /// Intercepts one conditional factor `Sel(p | cset)`, returning the
    /// `(selectivity, error)` pair on the active mode's error scale, or
    /// `None` to delegate to the default machinery.
    fn peel(&self, q: &PeelQuery<'_>) -> Option<(f64, f64)> {
        let _ = q;
        None
    }

    /// A guaranteed cardinality upper bound for the whole query, if this
    /// backend can produce one. Soundness contract: the true cardinality
    /// never exceeds the returned value.
    fn upper_bound(&self, query: &SpjQuery) -> Option<f64> {
        let _ = query;
        None
    }
}

/// The default backend: the existing maxDiff-histogram / `diff` machinery.
/// Overrides nothing, so estimator behavior with `DiffBackend` is exactly
/// the pre-trait behavior.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiffBackend;

impl SelectivityBackend for DiffBackend {
    fn name(&self) -> &'static str {
        "diff"
    }
}

/// Which backend a service or harness should construct — the `Copy`
/// configuration-level selector mirroring the trait objects above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// MaxDiff histograms under the independence/diff machinery (default).
    #[default]
    Diff,
    /// Chow-Liu Bayesian networks over per-table attribute pairs.
    Bn,
    /// Degree-sequence bound sketches (guaranteed upper bounds).
    Pessimistic,
}

impl BackendKind {
    /// Stable lowercase label, used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Diff => "diff",
            BackendKind::Bn => "bn",
            BackendKind::Pessimistic => "pessimistic",
        }
    }

    /// Parses a [`Self::label`] back into the kind.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "diff" => Some(BackendKind::Diff),
            "bn" => Some(BackendKind::Bn),
            "pessimistic" => Some(BackendKind::Pessimistic),
            _ => None,
        }
    }
}

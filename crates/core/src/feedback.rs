//! LEO-style execution feedback (related work \[25\], Stillger et al.).
//!
//! The paper contrasts SITs with DB2's learning optimizer: LEO monitors
//! executed queries and *adjusts base statistics* so the observed query
//! would have been estimated correctly, while still assuming independence
//! for everything else. This module implements that comparison point:
//!
//! * [`FeedbackStore`] records `(query, observed cardinality)` pairs;
//! * [`FeedbackStore::adjust_catalog`] rescales the filter ranges of base
//!   histograms so each remembered query's estimate matches its
//!   observation (most recent observation wins per adjusted range).
//!
//! The key limitation the paper points out — "a single adjusted histogram
//! per attribute, still relying on the independence assumption" — falls out
//! naturally: an adjustment that fixes one query's plan context can *worsen*
//! another context, whereas SITs keep one statistic per context; the
//! `feedback_fixes_one_context_but_not_another` test demonstrates it.

use sqe_engine::{Predicate, SpjQuery};
use sqe_histogram::{Bucket, Histogram};

use crate::sit::{Sit, SitCatalog};

/// One observation: a query ran and produced `cardinality` rows.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The executed query.
    pub query: SpjQuery,
    /// Its true (observed) output cardinality.
    pub cardinality: u64,
}

/// A store of execution feedback.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    observations: Vec<Observation>,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed query with its observed cardinality.
    pub fn record(&mut self, query: SpjQuery, cardinality: u64) {
        self.observations.push(Observation { query, cardinality });
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Produces an adjusted copy of the base histograms in `catalog`:
    /// for each observation whose query is a single-filter scan (the case
    /// LEO handles directly), the filter's range is rescaled so the
    /// histogram reproduces the observed count exactly. Multi-predicate
    /// observations adjust the filter whose estimate is most at fault,
    /// assuming independence among the rest — LEO's central simplification.
    pub fn adjust_catalog(&self, catalog: &SitCatalog) -> SitCatalog {
        let mut out = SitCatalog::new();
        for (_, sit) in catalog.iter() {
            if sit.is_base() {
                out.add(sit.clone());
            }
        }
        for obs in &self.observations {
            let filters: Vec<&Predicate> = obs.query.filters().collect();
            let joins = obs.query.join_count();
            // Only the directly-attributable case: one filter, no joins.
            if joins != 0 || filters.len() != 1 {
                continue;
            }
            let pred = filters[0];
            let col = pred.columns().iter().next().expect("filter has a column");
            let Some((lo, hi)) = crate::estimator::filter_bounds(pred) else {
                continue;
            };
            let ids: Vec<_> = out.for_attr(col).to_vec();
            for id in ids {
                let sit = out.get(id).clone();
                let adjusted = rescale_range(&sit.histogram, lo, hi, obs.cardinality as f64);
                let replaced = out.replace(
                    id,
                    Sit {
                        histogram: adjusted,
                        ..sit
                    },
                );
                debug_assert!(replaced, "attribute unchanged, replace succeeds");
            }
        }
        out
    }
}

/// Rescales the histogram mass inside `[lo, hi]` so it totals `target`
/// rows, *shifting* mass from the rest of the histogram so the overall
/// total is preserved (the estimate's denominator must keep matching the
/// table's row count). The adjusted histogram's range estimate for
/// `[lo, hi]` becomes exact for the observed predicate.
fn rescale_range(h: &Histogram, lo: i64, hi: i64, target: f64) -> Histogram {
    let current = h.range_rows(lo, hi);
    let total = h.valid_rows();
    // Mass conservation: what the range gains, the rest loses.
    let outside = total - current;
    let outside_factor = if outside > 0.0 {
        ((total - target) / outside).max(0.0)
    } else {
        1.0
    };
    if current <= 0.0 {
        // Nothing to scale: inject a bucket carrying the observed mass and
        // shrink the rest to conserve the total.
        let mut buckets: Vec<Bucket> = h
            .buckets()
            .iter()
            .map(|b| Bucket {
                freq: b.freq * outside_factor,
                ..*b
            })
            .collect();
        if target > 0.0 {
            buckets.push(Bucket {
                lo,
                hi: hi.max(lo),
                freq: target,
                distinct: 1.0,
            });
            buckets.sort_by_key(|b| b.lo);
        }
        return Histogram::new(merge_overlaps(buckets), h.null_count());
    }
    let factor = target / current;
    let mut buckets = Vec::with_capacity(h.buckets().len() + 2);
    for b in h.buckets() {
        let o_lo = b.lo.max(lo);
        let o_hi = b.hi.min(hi);
        if o_lo > o_hi {
            buckets.push(Bucket {
                freq: b.freq * outside_factor,
                ..*b
            });
            continue;
        }
        // Split the bucket into (below·out, inside·factor, above·out).
        let width = (b.hi - b.lo) as f64 + 1.0;
        if b.lo < o_lo {
            let w = (o_lo - b.lo) as f64;
            buckets.push(Bucket {
                lo: b.lo,
                hi: o_lo - 1,
                freq: b.freq * w / width * outside_factor,
                distinct: (b.distinct * w / width).max(1.0),
            });
        }
        let w_in = (o_hi - o_lo) as f64 + 1.0;
        buckets.push(Bucket {
            lo: o_lo,
            hi: o_hi,
            freq: b.freq * w_in / width * factor,
            distinct: (b.distinct * w_in / width).max(1.0),
        });
        if b.hi > o_hi {
            let w = (b.hi - o_hi) as f64;
            buckets.push(Bucket {
                lo: o_hi + 1,
                hi: b.hi,
                freq: b.freq * w / width * outside_factor,
                distinct: (b.distinct * w / width).max(1.0),
            });
        }
    }
    Histogram::new(buckets, h.null_count())
}

fn merge_overlaps(mut buckets: Vec<Bucket>) -> Vec<Bucket> {
    buckets.sort_by_key(|b| b.lo);
    let mut out: Vec<Bucket> = Vec::with_capacity(buckets.len());
    for b in buckets {
        match out.last_mut() {
            Some(prev) if prev.hi >= b.lo => {
                prev.hi = prev.hi.max(b.hi);
                prev.freq += b.freq;
                prev.distinct += b.distinct;
            }
            _ => out.push(b),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorMode;
    use crate::estimator::SelectivityEstimator;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CardinalityOracle, CmpOp, ColRef, Database, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// r(a, x) with a↔fan-out correlation through r.x = s.y, as in the
    /// estimator tests, but with 20× rows.
    fn db() -> Database {
        let rep = |v: &[i64]| -> Vec<i64> {
            v.iter().flat_map(|&x| std::iter::repeat_n(x, 20)).collect()
        };
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", rep(&[1, 1, 2, 2, 3, 3]))
                .column("x", rep(&[10, 10, 20, 20, 30, 30]))
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", rep(&[10, 10, 10, 10, 20, 30]))
                .build()
                .unwrap(),
        );
        db
    }

    fn base_catalog(db: &Database) -> SitCatalog {
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0)] {
            cat.add(Sit::build_base(db, col).unwrap());
        }
        cat
    }

    #[test]
    fn single_filter_observation_becomes_exact() {
        let db = db();
        let cat = base_catalog(&db);
        // Pretend the histogram was badly off by observing a "surprising"
        // count: claim a=1 actually returned 90 rows (it returns 40, but
        // feedback trusts execution, not statistics).
        let q = SpjQuery::from_predicates(vec![Predicate::filter(c(0, 0), CmpOp::Eq, 1)]).unwrap();
        let mut store = FeedbackStore::new();
        store.record(q.clone(), 90);
        let adjusted = store.adjust_catalog(&cat);
        let mut est = SelectivityEstimator::new(&db, &q, &adjusted, ErrorMode::NInd);
        let all = est.context().all();
        assert!(
            (est.cardinality(all) - 90.0).abs() < 1.0,
            "adjusted estimate must reproduce the observation"
        );
    }

    #[test]
    fn feedback_fixes_one_context_but_not_another() {
        // The paper's criticism of per-attribute adjustment: after fixing
        // the filter marginal, the join context is still estimated under
        // independence, while a SIT fixes the join context directly.
        let db = db();
        let cat = base_catalog(&db);
        let mut oracle = CardinalityOracle::new(&db);

        let filter = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let join = Predicate::join(c(0, 1), c(1, 0));
        let filter_q = SpjQuery::from_predicates(vec![filter]).unwrap();
        let join_q = SpjQuery::from_predicates(vec![join, filter]).unwrap();

        // Observe the plain filter (already correct — marginals are exact).
        let obs = oracle
            .cardinality(&filter_q.tables, &filter_q.predicates)
            .unwrap() as u64;
        let mut store = FeedbackStore::new();
        store.record(filter_q, obs);
        let adjusted = store.adjust_catalog(&cat);

        // The joined query stays mis-estimated under feedback...
        let truth = oracle
            .cardinality(&join_q.tables, &join_q.predicates)
            .unwrap() as f64;
        let mut fb = SelectivityEstimator::new(&db, &join_q, &adjusted, ErrorMode::NInd);
        let all = fb.context().all();
        let fb_est = fb.cardinality(all);
        assert!(
            (fb_est - truth).abs() / truth > 0.3,
            "feedback cannot fix the join context: est {fb_est}, truth {truth}"
        );

        // ...while a SIT on the join expression fixes it.
        let mut with_sit = cat.clone();
        with_sit.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        let mut sit = SelectivityEstimator::new(&db, &join_q, &with_sit, ErrorMode::Diff);
        let sit_est = sit.cardinality(all);
        assert!(
            (sit_est - truth).abs() / truth < 0.05,
            "the SIT fixes the same context: est {sit_est}, truth {truth}"
        );
    }

    #[test]
    fn observations_on_empty_ranges_inject_mass() {
        let db = db();
        let cat = base_catalog(&db);
        // Observe a value outside the histogram's domain.
        let q = SpjQuery::from_predicates(vec![Predicate::filter(c(0, 0), CmpOp::Eq, 99)]).unwrap();
        let mut store = FeedbackStore::new();
        store.record(q.clone(), 7);
        let adjusted = store.adjust_catalog(&cat);
        let mut est = SelectivityEstimator::new(&db, &q, &adjusted, ErrorMode::NInd);
        let all = est.context().all();
        assert!((est.cardinality(all) - 7.0).abs() < 0.5);
    }

    #[test]
    fn multi_predicate_observations_are_skipped() {
        let db = db();
        let cat = base_catalog(&db);
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        ])
        .unwrap();
        let mut store = FeedbackStore::new();
        store.record(q, 123);
        assert_eq!(store.len(), 1);
        let adjusted = store.adjust_catalog(&cat);
        // No adjustment applied: histograms identical to the originals.
        for ((_, a), (_, b)) in cat.iter().zip(adjusted.iter()) {
            assert_eq!(a.histogram, b.histogram);
        }
    }
}

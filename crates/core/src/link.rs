//! Per-link conditional-factor evaluation, factored out of the estimator
//! so it can run both on the estimator's own state (serial engines) and on
//! per-worker forks of that state (the rank-parallel dense fill).
//!
//! The split follows the data: everything a peel *reads* is immutable for
//! the lifetime of one `get_selectivity` call and lives in [`LinkCtx`]
//! (plain `&` references — `Copy`, `Sync`); everything a peel *writes* is
//! pure memoization keyed by value-determined keys and lives in
//! [`LinkState`]. Because every cached value is a pure function of its key
//! (histogram products, per-predicate range estimates, divergences), a
//! forked `LinkState` computes bit-identical values to the original, and
//! merging forks back ([`LinkState::absorb`]) cannot change any future
//! result — at worst a value is recomputed instead of reused.
//!
//! The one stateful exception is the `Opt`-mode cardinality oracle, which
//! executes queries through `&mut` state; it is threaded through explicitly
//! as `&mut Option<CardinalityOracle>` and the estimator never runs the
//! parallel fill in `Opt` mode (see `rank_workers`).

use std::collections::HashMap;
use std::ops::Range;
use std::time::{Duration, Instant};

use sqe_engine::{CardinalityOracle, ColRef, Database, Predicate};
use sqe_histogram::Histogram;

use crate::backend::{PeelQuery, SelectivityBackend};
use crate::cache::{CacheKey, SharedEstimatorCache};
use crate::error::ErrorMode;
use crate::predset::{PredSet, QueryContext};
use crate::sit::{SitCatalog, SitId};
use crate::sit2::{Sit2Catalog, Sit2Id};

/// Default equality selectivity when no statistic exists (System R lore).
pub(crate) const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default range / inequality selectivity when no statistic exists.
pub(crate) const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Floor for degenerate estimates, avoiding hard zeros that would wipe out
/// entire decompositions.
pub(crate) const MIN_SEL: f64 = 1e-12;

/// Per-attribute candidate lists with condition masks (see
/// [`mask_candidates`]).
pub(crate) type CandIndex = HashMap<ColRef, Vec<(SitId, u32)>>;

/// The immutable context one peel evaluation reads: the query, the
/// catalogs, the precomputed candidate indexes, and the optional shared
/// cross-query cache. All references — `Copy` and `Sync`, so worker
/// threads share one value.
#[derive(Clone, Copy)]
pub(crate) struct LinkCtx<'e> {
    pub db: &'e Database,
    pub ctx: &'e QueryContext,
    pub catalog: &'e SitCatalog,
    pub mode: ErrorMode,
    pub cand_index: &'e CandIndex,
    pub sit_cond_masks: &'e HashMap<SitId, u32>,
    pub sit2: Option<&'e Sit2Catalog>,
    pub sit2_index: &'e HashMap<ColRef, Vec<(Sit2Id, u32)>>,
    pub shared: Option<&'e dyn SharedEstimatorCache>,
    /// The atomic-estimate backend. [`crate::backend::DiffBackend`] is the
    /// default and intercepts nothing.
    pub backend: &'e dyn SelectivityBackend,
}

/// Per-peel scratch arenas, reset at every [`compute_peel`] entry. The
/// candidate and option lists built while evaluating one link are small,
/// short-lived, and allocated `O(n·2ⁿ)` times per query — a bump arena
/// turns each of those heap round-trips into a length reset plus appends
/// into already-warm capacity. Callers hold `Range<usize>` views instead of
/// owned `Vec`s; ranges never outlive the peel that produced them.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Candidate-SIT arena backing [`mask_candidates`] results.
    pub sits: Vec<SitId>,
    /// Option arena backing [`peel_filter`]'s `(error, coverage, estimate)`
    /// candidates, appended to by [`push_sit2_options`].
    pub opts: Vec<(f64, usize, f64)>,
}

impl Scratch {
    /// Drops all live ranges (there are none between peels) but keeps the
    /// allocated capacity.
    fn reset(&mut self) {
        self.sits.clear();
        self.opts.clear();
    }
}

/// The mutable memoization state of peel evaluation: value caches keyed by
/// ids/predicates (pure functions of their keys) plus the instrumentation
/// counters. Fork one per worker thread; absorb the forks afterwards.
#[derive(Debug, Default)]
pub(crate) struct LinkState {
    /// Filter selectivity per `(SIT, predicate index)` — the same SIT
    /// histogram is ranged with the same filter under thousands of
    /// conditioning sets, and the estimate depends on neither.
    pub filter_sel_cache: HashMap<(SitId, usize), f64>,
    /// Filter estimate and divergence per `(H3 pair, predicate index)`,
    /// collapsing the per-option `H3` histogram walk the same way.
    pub h3_sel_cache: HashMap<(SitId, SitId, usize), (f64, f64)>,
    /// Join selectivity per SIT pair: the same pair is picked for many
    /// conditioning sets, so this collapses the histogram-join work from
    /// `O(n·2ⁿ)` to the number of distinct pairs.
    pub join_cache: HashMap<(SitId, SitId), f64>,
    /// Joined result histogram (`H3`, §3.3) and its divergence estimate per
    /// SIT pair.
    pub h3_cache: HashMap<(SitId, SitId), (Histogram, f64)>,
    /// Carried-H3 cache per (grid, other-side SIT).
    pub carry_cache: HashMap<(Sit2Id, SitId), (Histogram, f64)>,
    /// Conditional-y cache per (grid, x-range).
    pub cond2_cache: HashMap<(Sit2Id, i64, i64), (Histogram, f64)>,
    /// Time spent manipulating histograms (Figure 8's component).
    pub hist_time: Duration,
    /// View-matching calls issued from the peel path (the estimator's
    /// [`crate::matcher::SitMatcher`] counter covers the non-peel callers).
    pub vm_calls: u64,
    /// Per-peel bump arenas (candidates, options). Not a cache: contents
    /// are meaningless outside the current [`compute_peel`] call.
    pub scratch: Scratch,
}

impl LinkState {
    pub fn new() -> Self {
        LinkState::default()
    }

    /// A worker-thread copy: warm value caches, zeroed counters (so
    /// absorbing the fork adds exactly the work the worker did).
    pub fn fork(&self) -> Self {
        LinkState {
            filter_sel_cache: self.filter_sel_cache.clone(),
            h3_sel_cache: self.h3_sel_cache.clone(),
            join_cache: self.join_cache.clone(),
            h3_cache: self.h3_cache.clone(),
            carry_cache: self.carry_cache.clone(),
            cond2_cache: self.cond2_cache.clone(),
            hist_time: Duration::ZERO,
            vm_calls: 0,
            scratch: Scratch::default(),
        }
    }

    /// Merges a fork back. Cache values are pure functions of their keys,
    /// so overwrite order between forks is irrelevant; counters add.
    /// Scratch arenas are per-peel transients and are deliberately dropped.
    pub fn absorb(&mut self, other: LinkState) {
        self.filter_sel_cache.extend(other.filter_sel_cache);
        self.h3_sel_cache.extend(other.h3_sel_cache);
        self.join_cache.extend(other.join_cache);
        self.h3_cache.extend(other.h3_cache);
        self.carry_cache.extend(other.carry_cache);
        self.cond2_cache.extend(other.cond2_cache);
        self.hist_time += other.hist_time;
        self.vm_calls += other.vm_calls;
    }
}

/// Computes the single-predicate conditional factor `Sel(pᵢ | cset)` —
/// shared-cache consultation, join/filter dispatch, write-back — without
/// touching any per-query memo (the caller owns memoization).
pub(crate) fn compute_peel(
    lc: &LinkCtx,
    st: &mut LinkState,
    oracle: &mut Option<CardinalityOracle<'_>>,
    i: usize,
    cset: PredSet,
) -> (f64, f64) {
    st.scratch.reset();
    let pred = *lc.ctx.predicate(i);
    // Backend interception happens *before* the shared-cache consult: link
    // cache keys do not encode backend identity, so a backend that answers
    // this factor itself must neither read nor populate entries the
    // default machinery owns. `DiffBackend` returns `None` here, making
    // the remaining path byte-for-byte the pre-trait code.
    if let Some(result) = lc.backend.peel(&PeelQuery {
        db: lc.db,
        ctx: lc.ctx,
        mode: lc.mode,
        pred_index: i,
        cset,
    }) {
        debug_assert!(result.0.is_finite() && result.1.is_finite());
        return result;
    }
    // Cross-query lookup: the link's value depends only on the predicate,
    // the conditioning *set*, and the mode (every in-link choice below
    // breaks ties by value, never by within-query ordering), so the
    // canonicalized key is exact.
    let shared_key = lc
        .shared
        .map(|_| CacheKey::conditional(lc.mode, &[pred], &lc.ctx.predicates_of(cset)));
    if let (Some(cache), Some(k)) = (lc.shared, &shared_key) {
        if let Some(r) = cache.get_link(k) {
            return r;
        }
    }
    let result = match pred {
        Predicate::Join { .. } => peel_join(lc, st, oracle, i, &pred, cset),
        _ => peel_filter(lc, st, oracle, i, &pred, cset),
    };
    debug_assert!(result.0.is_finite() && result.1.is_finite());
    if let (Some(cache), Some(k)) = (lc.shared, shared_key) {
        cache.put_link(k, result);
    }
    result
}

/// §3.3 candidate SITs through the precomputed mask index: applicable
/// (`cond_mask ⊆ cset`) and maximal among the applicable, in catalog
/// `for_attr` order — the exact set [`crate::matcher::SitMatcher::candidates`]
/// returns for `predicates_of(cset)`, with both tests reduced to bitwise
/// operations (conditions map injectively to predicate-index masks, so set
/// inclusion ≡ mask inclusion). Counts one view-matching call.
///
/// Results are appended to the `st.scratch.sits` arena and returned as a
/// range into it — no allocation on the per-mask hot path. The range stays
/// valid for the rest of the current peel (later calls only append).
fn mask_candidates(lc: &LinkCtx, st: &mut LinkState, attr: ColRef, cset: PredSet) -> Range<usize> {
    st.vm_calls += 1;
    let start = st.scratch.sits.len();
    let Some(list) = lc.cand_index.get(&attr) else {
        return start..start;
    };
    let outside = !cset.0;
    for (k, &(id, m)) in list.iter().enumerate() {
        if m & outside != 0 {
            continue;
        }
        let dominated = list
            .iter()
            .enumerate()
            .any(|(j, &(_, om))| j != k && om & outside == 0 && om != m && m & !om == 0);
        if !dominated {
            st.scratch.sits.push(id);
        }
    }
    start..st.scratch.sits.len()
}

/// `Sel(x = y | cset)`: join the best SITs for both sides.
fn peel_join(
    lc: &LinkCtx,
    st: &mut LinkState,
    oracle: &mut Option<CardinalityOracle<'_>>,
    i: usize,
    pred: &Predicate,
    cset: PredSet,
) -> (f64, f64) {
    let Predicate::Join { left, right } = *pred else {
        unreachable!("peel_join only receives joins")
    };
    let cand_l = mask_candidates(lc, st, left, cset);
    let cand_r = mask_candidates(lc, st, right, cset);
    if cand_l.is_empty() || cand_r.is_empty() {
        // No statistics at all: classic 1/max(|L|,|R|) default.
        let nl = lc.db.row_count(left.table).unwrap_or(1).max(1);
        let nr = lc.db.row_count(right.table).unwrap_or(1).max(1);
        let est = (1.0 / nl.max(nr) as f64).max(MIN_SEL);
        let err = fallback_error(lc, oracle, i, est, cset);
        return (est, err);
    }
    match lc.mode {
        ErrorMode::NInd | ErrorMode::Diff => {
            let (l, el) = pick_best(lc.catalog, lc.mode, &st.scratch.sits[cand_l], cset);
            let (r, er) = pick_best(lc.catalog, lc.mode, &st.scratch.sits[cand_r], cset);
            let est = join_selectivity(lc, st, l, r);
            // A join uses two statistics; each side's uncovered
            // conditioning (or divergence shortfall) is its own set of
            // independence assumptions, so side errors add.
            (est, el + er)
        }
        ErrorMode::Opt => {
            // Oracle mode: try every candidate pair, score by true
            // deviation. Index loops: the arena lives in `st`, which
            // `join_selectivity` also borrows mutably.
            let truth = true_conditional(lc, oracle, i, cset);
            let mut best = (f64::INFINITY, MIN_SEL);
            for li in cand_l {
                for ri in cand_r.clone() {
                    let (l, r) = (st.scratch.sits[li], st.scratch.sits[ri]);
                    let est = join_selectivity(lc, st, l, r);
                    let dev = opt_deviation(est, truth);
                    if dev < best.0 {
                        best = (dev, est);
                    }
                }
            }
            (best.1, best.0)
        }
    }
}

/// `Sel(filter | cset)`: best own-attribute SIT, or the §3.3 `H3`
/// mechanism when the filter sits on a join attribute of `cset`.
fn peel_filter(
    lc: &LinkCtx,
    st: &mut LinkState,
    oracle: &mut Option<CardinalityOracle<'_>>,
    i: usize,
    pred: &Predicate,
    cset: PredSet,
) -> (f64, f64) {
    let col = match pred.columns() {
        sqe_engine::predicate::PredColumns::One(c) => c,
        sqe_engine::predicate::PredColumns::Two(c, _) => c,
    };
    let truth = matches!(lc.mode, ErrorMode::Opt).then(|| true_conditional(lc, oracle, i, cset));

    // Option set: (error, coverage, estimate). Larger coverage wins ties;
    // smaller estimate wins remaining ties. Every criterion is a property
    // of the option itself — never its position — so the choice is
    // invariant under predicate reordering, which cross-query link caching
    // relies on (two queries listing the same conditioning set in
    // different orders assemble this list in different orders). Options
    // accumulate in the `opts` arena from `mark` onward.
    let mark = st.scratch.opts.len();

    for ci in mask_candidates(lc, st, col, cset) {
        let id = st.scratch.sits[ci];
        let sit = lc.catalog.get(id);
        let est = match st.filter_sel_cache.get(&(id, i)) {
            Some(&e) => e,
            None => {
                let start = Instant::now();
                let e = filter_selectivity(&sit.histogram, pred);
                st.hist_time += start.elapsed();
                st.filter_sel_cache.insert((id, i), e);
                e
            }
        };
        let err = match (lc.mode, truth) {
            (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
            _ => lc.mode.sit_error(cset.len(), sit.cond.len(), sit.diff),
        };
        st.scratch.opts.push((err, sit.cond.len(), est));
    }

    // H3: for a join j = (col = other) in cset, join the two sides' SITs
    // (conditioned on cset − j) and range over the result histogram.
    // Covers j plus both SIT conditions.
    for j in lc.ctx.joins_in(cset).iter() {
        let Predicate::Join { left, right } = *lc.ctx.predicate(j) else {
            continue;
        };
        let other = if left == col {
            right
        } else if right == col {
            left
        } else {
            continue;
        };
        let sub = cset.minus(PredSet::singleton(j));
        let cand_c = mask_candidates(lc, st, col, sub);
        let cand_o = mask_candidates(lc, st, other, sub);
        let (Some((sc, _)), Some((so, _))) = (
            pick_best_opt(lc.catalog, lc.mode, &st.scratch.sits[cand_c], sub),
            pick_best_opt(lc.catalog, lc.mode, &st.scratch.sits[cand_o], sub),
        ) else {
            continue;
        };
        // H3's divergence from the attribute's original distribution: at
        // least the attribute-side SIT's own divergence, plus whatever the
        // join itself adds. The ranged estimate depends only on the pair
        // and the filter, so it is computed once per `(pair, filter)`
        // across all conditioning sets.
        let (est, h3_diff) = match st.h3_sel_cache.get(&(sc, so, i)) {
            Some(&v) => v,
            None => {
                let (est, d, spent) = {
                    let (h, d) = h3_join(lc, st, sc, so);
                    let start = Instant::now();
                    (filter_selectivity(h, pred), *d, start.elapsed())
                };
                st.hist_time += spent;
                st.h3_sel_cache.insert((sc, so, i), (est, d));
                (est, d)
            }
        };
        // Coverage: the join predicate itself plus both conditions
        // (condition masks are exact, so the union's popcount is the
        // deduplicated size the predicate-set version computed).
        let union = lc.sit_cond_masks[&sc] | lc.sit_cond_masks[&so];
        let coverage = (1 + union.count_ones() as usize).min(cset.len());
        let err = match (lc.mode, truth) {
            (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
            (ErrorMode::Diff, _) => 1.0 - h3_diff.clamp(0.0, 1.0),
            _ => (cset.len() - coverage) as f64,
        };
        st.scratch.opts.push((err, coverage, est));
    }

    push_sit2_options(lc, st, col, pred, cset, truth);

    // `Iterator::min_by` keeps the *first* of equally-minimal elements,
    // matching the owned-vector version bit for bit.
    match st.scratch.opts[mark..].iter().copied().min_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(b.1.cmp(&a.1))
            .then(a.2.total_cmp(&b.2))
    }) {
        Some((err, _, est)) => (est.max(MIN_SEL), err),
        None => {
            let est = default_filter_selectivity(pred);
            let err = fallback_error(lc, oracle, i, est, cset);
            (est, err)
        }
    }
}

/// Adds the multidimensional-SIT options (§3.3) for a filter peel:
/// carried-`H3` distributions through joins in the conditioning set, and
/// conditionals on co-located filters. Options are appended to the
/// `st.scratch.opts` arena (the caller holds the start mark).
fn push_sit2_options(
    lc: &LinkCtx,
    st: &mut LinkState,
    col: ColRef,
    pred: &Predicate,
    cset: PredSet,
    truth: Option<f64>,
) {
    let Some(sit2s) = lc.sit2 else {
        return;
    };
    // (a) Carried H3: a join j ∈ cset with its near side on col's table, a
    // grid over (near, col), and a 1-D SIT for the far side. Both grid
    // paths are *fallbacks*: a join-conditioned 1-D SIT for the attribute
    // is built on the exact expression at 200-bucket resolution and
    // captures the dominant join interaction; the grid detour (32-wide
    // carried dimension, containment assumptions in the grid join) only
    // competes when no such SIT exists (the maximality spirit of §3.3's
    // rule 3).
    let direct = mask_candidates(lc, st, col, cset);
    if st.scratch.sits[direct]
        .iter()
        .any(|&id| !lc.catalog.get(id).cond.is_empty())
    {
        return;
    }
    for j in lc.ctx.joins_in(cset).iter() {
        let jpred = *lc.ctx.predicate(j);
        let Predicate::Join { left, right } = jpred else {
            continue;
        };
        for (near, far) in [(left, right), (right, left)] {
            if near.table != col.table {
                continue;
            }
            let sub = cset.minus(PredSet::singleton(j));
            let candidates: Vec<Sit2Id> = lc
                .sit2_index
                .get(&col)
                .map(|list| {
                    list.iter()
                        .filter(|&&(id, m)| m & !sub.0 == 0 && sit2s.get(id).x == near)
                        .map(|&(id, _)| id)
                        .collect()
                })
                .unwrap_or_default();
            if candidates.is_empty() {
                continue;
            }
            let cand_far = mask_candidates(lc, st, far, sub);
            let Some((far_id, _)) =
                pick_best_opt(lc.catalog, lc.mode, &st.scratch.sits[cand_far], sub)
            else {
                continue;
            };
            for s2_id in candidates {
                let (carried, divergence) = carried_h3(lc, st, sit2s, s2_id, far_id);
                if carried.total_rows() <= 0.0 {
                    continue;
                }
                let s2 = sit2s.get(s2_id);
                let start = Instant::now();
                let gated = shrink_conditional(&carried, &s2.y_marginal, pred, divergence);
                st.hist_time += start.elapsed();
                let Some((est, divergence)) = gated else {
                    continue;
                };
                let far_cond = &lc.catalog.get(far_id).cond;
                let coverage = (1 + s2.cond.len() + far_cond.len()).min(cset.len());
                let err = match (lc.mode, truth) {
                    (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                    (ErrorMode::Diff, _) => 1.0 - divergence,
                    _ => (cset.len() - coverage) as f64,
                };
                st.scratch.opts.push((err, coverage, est));
            }
        }
    }
    // (b) Filter-conditioned-on-filter: another filter g ∈ cset on the
    // same table with a grid over (attr(g), col).
    for g in lc.ctx.filters_in(cset).iter() {
        let gpred = *lc.ctx.predicate(g);
        let gcol = match gpred.columns() {
            sqe_engine::predicate::PredColumns::One(c) => c,
            sqe_engine::predicate::PredColumns::Two(c, _) => c,
        };
        if gcol.table != col.table || gcol == col {
            continue;
        }
        let Some((glo, ghi)) = filter_bounds(&gpred) else {
            continue;
        };
        let sub = cset.minus(PredSet::singleton(g));
        let candidates: Vec<Sit2Id> = lc
            .sit2_index
            .get(&col)
            .map(|list| {
                list.iter()
                    .filter(|&&(id, m)| m & !sub.0 == 0 && sit2s.get(id).x == gcol)
                    .map(|&(id, _)| id)
                    .collect()
            })
            .unwrap_or_default();
        for s2_id in candidates {
            let (conditional, divergence) = conditional2(lc, st, sit2s, s2_id, glo, ghi);
            if conditional.total_rows() <= 0.0 {
                continue;
            }
            let s2 = sit2s.get(s2_id);
            let start = Instant::now();
            let gated = shrink_conditional(&conditional, &s2.y_marginal, pred, divergence);
            st.hist_time += start.elapsed();
            let Some((est, divergence)) = gated else {
                continue;
            };
            let coverage = (1 + s2.cond.len()).min(cset.len());
            let err = match (lc.mode, truth) {
                (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                (ErrorMode::Diff, _) => 1.0 - divergence,
                _ => (cset.len() - coverage) as f64,
            };
            st.scratch.opts.push((err, coverage, est));
        }
    }
}

/// Carried-`H3` histogram of a grid joined against a 1-D SIT (cached).
fn carried_h3(
    lc: &LinkCtx,
    st: &mut LinkState,
    sit2s: &Sit2Catalog,
    s2_id: Sit2Id,
    far_id: SitId,
) -> (Histogram, f64) {
    if let Some(hit) = st.carry_cache.get(&(s2_id, far_id)) {
        return hit.clone();
    }
    let s2 = sit2s.get(s2_id);
    let far = lc.catalog.get(far_id);
    let start = Instant::now();
    let (_, carried) = s2.grid.join_carry(&far.histogram);
    let divergence = s2.conditional_divergence(&carried).max(far.diff);
    st.hist_time += start.elapsed();
    st.carry_cache
        .insert((s2_id, far_id), (carried.clone(), divergence));
    (carried, divergence)
}

/// Conditional-`y` histogram of a grid restricted to an x-range (cached).
fn conditional2(
    _lc: &LinkCtx,
    st: &mut LinkState,
    sit2s: &Sit2Catalog,
    s2_id: Sit2Id,
    lo: i64,
    hi: i64,
) -> (Histogram, f64) {
    if let Some(hit) = st.cond2_cache.get(&(s2_id, lo, hi)) {
        return hit.clone();
    }
    let s2 = sit2s.get(s2_id);
    let start = Instant::now();
    let conditional = s2.grid.conditional_y(lo, hi);
    let divergence = s2.conditional_divergence(&conditional);
    st.hist_time += start.elapsed();
    st.cond2_cache
        .insert((s2_id, lo, hi), (conditional.clone(), divergence));
    (conditional, divergence)
}

/// Best SIT among candidates under the mode's SIT error; returns the SIT
/// and its error contribution.
fn pick_best(
    catalog: &SitCatalog,
    mode: ErrorMode,
    candidates: &[SitId],
    cset: PredSet,
) -> (SitId, f64) {
    pick_best_opt(catalog, mode, candidates, cset).expect("pick_best requires non-empty candidates")
}

pub(crate) fn pick_best_opt(
    catalog: &SitCatalog,
    mode: ErrorMode,
    candidates: &[SitId],
    cset: PredSet,
) -> Option<(SitId, f64)> {
    candidates
        .iter()
        .map(|&id| {
            let sit = catalog.get(id);
            let e = mode.sit_error(cset.len(), sit.cond.len(), sit.diff);
            (id, e)
        })
        .min_by(|a, b| {
            a.1.total_cmp(&b.1).then_with(|| {
                // Tie: larger coverage, then smaller id.
                let ca = catalog.get(a.0).cond.len();
                let cb = catalog.get(b.0).cond.len();
                cb.cmp(&ca).then(a.0.cmp(&b.0))
            })
        })
}

/// Histogram join selectivity of two SITs (timed, cached per pair).
fn join_selectivity(lc: &LinkCtx, st: &mut LinkState, l: SitId, r: SitId) -> f64 {
    if let Some(&sel) = st.join_cache.get(&(l, r)) {
        return sel;
    }
    if let Some(cache) = lc.shared {
        if let Some(sel) = cache.get_join((l, r)) {
            st.join_cache.insert((l, r), sel);
            return sel;
        }
    }
    let hl = &lc.catalog.get(l).histogram;
    let hr = &lc.catalog.get(r).histogram;
    let start = Instant::now();
    let sel = hl.join(hr).selectivity.max(MIN_SEL);
    st.hist_time += start.elapsed();
    if let Some(cache) = lc.shared {
        cache.put_join((l, r), sel);
    }
    st.join_cache.insert((l, r), sel);
    sel
}

/// The `H3` result histogram of joining two SITs plus its divergence from
/// the attribute side's original distribution (timed, cached).
fn h3_join<'s>(
    lc: &LinkCtx,
    st: &'s mut LinkState,
    attr_side: SitId,
    other_side: SitId,
) -> &'s (Histogram, f64) {
    if !st.h3_cache.contains_key(&(attr_side, other_side)) {
        if let Some(hit) = lc
            .shared
            .and_then(|cache| cache.get_h3((attr_side, other_side)))
        {
            st.h3_cache.insert((attr_side, other_side), hit);
            return &st.h3_cache[&(attr_side, other_side)];
        }
        let sit_c = lc.catalog.get(attr_side);
        let sit_o = lc.catalog.get(other_side);
        let start = Instant::now();
        let joined = sit_c.histogram.join(&sit_o.histogram);
        let h3_diff = sqe_histogram::diff_from_histograms(&sit_c.histogram, &joined.histogram)
            .max(sit_c.diff);
        st.hist_time += start.elapsed();
        if let Some(cache) = lc.shared {
            cache.put_h3((attr_side, other_side), (joined.histogram.clone(), h3_diff));
        }
        st.h3_cache
            .insert((attr_side, other_side), (joined.histogram, h3_diff));
    }
    &st.h3_cache[&(attr_side, other_side)]
}

/// True `Sel(pᵢ | cset)` from the oracle (Opt mode only — the parallel
/// fill never runs with an oracle attached).
fn true_conditional(
    lc: &LinkCtx,
    oracle: &mut Option<CardinalityOracle<'_>>,
    i: usize,
    cset: PredSet,
) -> f64 {
    let all = cset.union(PredSet::singleton(i));
    let tables = lc.ctx.tables_of(all);
    let p = [*lc.ctx.predicate(i)];
    let q = lc.ctx.predicates_of(cset);
    oracle
        .as_mut()
        .expect("oracle present in Opt mode")
        .conditional_selectivity(&tables, &p, &q)
        .unwrap_or(0.0)
}

/// Error charged for a default (statistics-free) estimate.
fn fallback_error(
    lc: &LinkCtx,
    oracle: &mut Option<CardinalityOracle<'_>>,
    i: usize,
    est: f64,
    cset: PredSet,
) -> f64 {
    match lc.mode {
        ErrorMode::Opt => {
            let t = true_conditional(lc, oracle, i, cset);
            opt_deviation(est, t)
        }
        mode => mode.fallback_error(cset.len()),
    }
}

/// `Opt`'s per-factor deviation: the absolute log-ratio between estimate
/// and truth. Factor selectivities multiply, so log deviations *add* — the
/// sum over a decomposition's factors bounds the log error of the final
/// product, which makes the oracle ranking compose correctly (a plain
/// absolute difference would let many tiny-but-relatively-wrong factors
/// outrank one accurate large factor).
fn opt_deviation(est: f64, truth: f64) -> f64 {
    if truth <= MIN_SEL && est <= MIN_SEL {
        return 0.0;
    }
    (est.max(MIN_SEL).ln() - truth.max(MIN_SEL).ln()).abs()
}

/// Histogram estimate for a filter predicate.
pub(crate) fn filter_selectivity(h: &Histogram, pred: &Predicate) -> f64 {
    use sqe_engine::CmpOp;
    let sel = match *pred {
        Predicate::Range { lo, hi, .. } => h.range_selectivity(lo, hi),
        Predicate::Filter { op, value, .. } => match op {
            CmpOp::Lt => h.cmp_selectivity(value, true, true),
            CmpOp::Le => h.cmp_selectivity(value, true, false),
            CmpOp::Gt => h.cmp_selectivity(value, false, true),
            CmpOp::Ge => h.cmp_selectivity(value, false, false),
            CmpOp::Eq => h.eq_selectivity(value),
            CmpOp::Neq => 1.0 - h.eq_selectivity(value),
        },
        Predicate::Join { .. } => unreachable!("filter_selectivity on join"),
    };
    sel.clamp(0.0, 1.0)
}

/// Gates a grid-derived conditional estimate on *local* statistical
/// significance. Total-variation divergence is global — a predicate range
/// holding 5% of the mass can double its conditional share while barely
/// moving the TV distance — so the gate tests the predicate's own range:
/// with `m` rows behind the conditional, the range's conditional row count
/// must deviate from its marginal expectation by more than ~1.5 Poisson
/// standard deviations, otherwise the shift is sampling noise (the failure
/// mode observed on small dimension tables) and the option is withdrawn.
fn shrink_conditional(
    conditional: &Histogram,
    marginal: &Histogram,
    pred: &Predicate,
    divergence: f64,
) -> Option<(f64, f64)> {
    const Z_THRESHOLD: f64 = 1.5;
    let m = conditional.valid_rows().max(1.0);
    let est_cond = filter_selectivity(conditional, pred);
    let est_marg = filter_selectivity(marginal, pred);
    let observed = est_cond * m;
    let expected = est_marg * m;
    let z = (observed - expected) / expected.max(1.0).sqrt();
    if z.abs() < Z_THRESHOLD {
        return None;
    }
    Some((est_cond, divergence.clamp(0.0, 1.0)))
}

/// The value range a filter predicate admits, when expressible (None for
/// `<>`). Open sides use wide sentinels that stay overflow-safe in bucket
/// arithmetic.
pub(crate) fn filter_bounds(pred: &Predicate) -> Option<(i64, i64)> {
    use sqe_engine::CmpOp;
    const LO: i64 = i64::MIN / 4;
    const HI: i64 = i64::MAX / 4;
    match *pred {
        Predicate::Range { lo, hi, .. } => Some((lo, hi)),
        Predicate::Filter { op, value, .. } => match op {
            CmpOp::Lt => Some((LO, value - 1)),
            CmpOp::Le => Some((LO, value)),
            CmpOp::Gt => Some((value + 1, HI)),
            CmpOp::Ge => Some((value, HI)),
            CmpOp::Eq => Some((value, value)),
            CmpOp::Neq => None,
        },
        Predicate::Join { .. } => None,
    }
}

/// Magic-constant estimate when no statistic exists.
fn default_filter_selectivity(pred: &Predicate) -> f64 {
    use sqe_engine::CmpOp;
    match *pred {
        Predicate::Range { .. } => DEFAULT_RANGE_SEL,
        Predicate::Filter { op, .. } => match op {
            CmpOp::Eq => DEFAULT_EQ_SEL,
            CmpOp::Neq => 1.0 - DEFAULT_EQ_SEL,
            _ => DEFAULT_RANGE_SEL,
        },
        Predicate::Join { .. } => DEFAULT_EQ_SEL,
    }
}

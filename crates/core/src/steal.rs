//! Dependency-counted work-stealing scheduler for the dense lattice fill.
//!
//! The rank-barrier fill ([`crate::estimator`]'s historical parallel
//! engine) synchronizes all workers at every popcount rank: a skewed rank —
//! one mask with a huge subset walk next to dozens of trivial ones — idles
//! every worker behind the slowest. This module removes the barrier:
//!
//! * **Every non-empty subset of the component is a scheduler node**, each
//!   carrying an atomic count of its unfilled immediate predecessors
//!   (`mask \ {bit}` for each member bit). Singletons have no predecessor
//!   nodes and seed the queues.
//! * Completing a node decrements the counter of each immediate superset;
//!   a counter hitting zero makes that superset *ready* — by induction,
//!   every proper subset of a ready mask has completed, so all its memo
//!   reads are plain loads.
//! * Ready masks go into **per-worker deques**: the owner pushes and pops
//!   at the back (LIFO — depth-first, cache-warm), thieves steal from the
//!   front (FIFO — the oldest, typically shallowest and widest work).
//!   Newly-ready masks are pushed in one batch per completed node, so
//!   queue traffic is amortized at low ranks.
//! * Masks that are **already memoized** (a previous request filled part of
//!   the lattice) are *no-op completion nodes*: they publish their existing
//!   value and gate their supersets like any other node, but are processed
//!   inline off a local stack — an already-filled region of the lattice
//!   cascades without touching the deques, solving nothing and charging no
//!   budget. (They cannot be skipped outright: a superset's only
//!   predecessors may all be memoized while deeper subsets are not, so
//!   "instantly satisfied" counting would release masks whose memo reads
//!   are not loads yet.)
//!
//! ## Memory ordering
//!
//! A worker reading `value(q)` for a subset `q` of its popped mask must
//! observe the completed store. The happens-before chain: the completing
//! worker stores the value (`Relaxed`), then runs `fetch_sub(AcqRel)` on
//! each dependent counter — the RMW chain on one counter forms a release
//! sequence, so the final decrementer's acquire side orders after *every*
//! predecessor's value store — and hands the ready mask through a deque
//! `Mutex` (another synchronizing edge) to whichever worker pops or steals
//! it. `remaining` is decremented last (`AcqRel`), so `done()` implies all
//! stores are visible.
//!
//! ## Failure paths
//!
//! * A worker whose budget trips sets the shared `abort` flag and exits;
//!   the others observe it at their next loop head. The estimator then
//!   commits **nothing** from the aborted fill.
//! * A worker that panics sets `abort` from [`AbortOnExit`]'s unwind path,
//!   so the siblings drain out instead of spinning on a lattice that will
//!   never finish; the scope join propagates the panic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Cumulative instrumentation for the work-stealing lattice fills run by
/// one estimator (see [`crate::estimator::SelectivityEstimator::fill_stats`]).
/// All counters sum over every parallel fill the estimator executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FillStats {
    /// Work-stealing component fills executed.
    pub parallel_fills: u64,
    /// Scheduler nodes completed (solved masks + memoized no-op nodes).
    pub tasks: u64,
    /// Masks actually solved (excludes pre-memoized no-op completions).
    pub solved: u64,
    /// Successful steals (a worker took a mask from another's deque).
    pub steals: u64,
    /// Idle loop iterations (empty own deque, nothing to steal, fill not
    /// done) — the work-starvation signal the rank barrier used to hide.
    pub idle_spins: u64,
    /// Largest own-deque depth observed at any push.
    pub max_queue_depth: u64,
    /// Masks solved per popcount rank (`rank_tasks[k]` = solved masks with
    /// `k` predicates) — makes rank skew diagnosable from bench output.
    pub rank_tasks: Vec<u64>,
    /// Set to 1 when a serial-only engine (recursive or beam) ran while
    /// `dp_threads ≥ 2` was configured — the thread knob only drives dense
    /// lattice fills, and this flag makes the silently ignored
    /// configuration observable instead of leaving callers to wonder why
    /// their wide query never parallelized.
    pub dp_threads_ignored: u64,
}

/// Popcount of a `u32` mask is at most 32; one slot per rank plus rank 0.
pub(crate) const MAX_RANKS: usize = 33;

/// One worker's private counters, merged into [`FillStats`] after the
/// scope joins (no shared-cache traffic on the hot path).
#[derive(Debug)]
pub(crate) struct WorkerStats {
    pub tasks: u64,
    pub solved: u64,
    pub steals: u64,
    pub idle_spins: u64,
    pub max_queue_depth: u64,
    pub rank_tasks: [u64; MAX_RANKS],
}

impl Default for WorkerStats {
    fn default() -> Self {
        WorkerStats {
            tasks: 0,
            solved: 0,
            steals: 0,
            idle_spins: 0,
            max_queue_depth: 0,
            rank_tasks: [0; MAX_RANKS],
        }
    }
}

impl FillStats {
    /// Folds one worker's counters in.
    pub(crate) fn merge_worker(&mut self, w: &WorkerStats) {
        self.tasks += w.tasks;
        self.solved += w.solved;
        self.steals += w.steals;
        self.idle_spins += w.idle_spins;
        self.max_queue_depth = self.max_queue_depth.max(w.max_queue_depth);
        if self.rank_tasks.len() < MAX_RANKS {
            self.rank_tasks.resize(MAX_RANKS, 0);
        }
        for (dst, src) in self.rank_tasks.iter_mut().zip(w.rank_tasks.iter()) {
            *dst += src;
        }
    }
}

/// The shared state of one component fill: dependency counters, published
/// values, per-worker deques, and the two control atomics.
pub(crate) struct StealScheduler {
    /// The component mask; nodes are its non-empty subsets.
    comp: u32,
    /// `counters[m]` = not-yet-completed immediate predecessor nodes of
    /// `m` (`popcount(m)` initially for `popcount ≥ 2`, singletons seed).
    counters: Vec<AtomicU32>,
    /// Published `(sel, err)` values, as `f64` bit patterns. Valid for a
    /// mask once all its subsets completed — which the dependency counts
    /// guarantee before any reader pops it.
    sel_bits: Vec<AtomicU64>,
    err_bits: Vec<AtomicU64>,
    /// Per-worker deques: owner pushes/pops back, thieves pop front.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Nodes not yet completed; `0` means the fill is done.
    remaining: AtomicUsize,
    /// Cooperative shutdown: budget trip or sibling panic.
    abort: AtomicBool,
}

impl StealScheduler {
    /// Builds the scheduler for the non-empty subsets of `comp`, with
    /// `workers` deques. Arrays are indexed directly by mask.
    pub fn new(comp: u32, workers: usize) -> Self {
        let size = comp as usize + 1;
        let mut counters = Vec::with_capacity(size);
        counters.resize_with(size, || AtomicU32::new(0));
        let mut sel_bits = Vec::with_capacity(size);
        sel_bits.resize_with(size, || AtomicU64::new(0));
        let mut err_bits = Vec::with_capacity(size);
        err_bits.resize_with(size, || AtomicU64::new(0));
        let mut nodes = 0usize;
        let mut s = comp;
        while s != 0 {
            nodes += 1;
            let k = s.count_ones();
            if k >= 2 {
                *counters[s as usize].get_mut() = k;
            }
            s = (s - 1) & comp;
        }
        StealScheduler {
            comp,
            counters,
            sel_bits,
            err_bits,
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            remaining: AtomicUsize::new(nodes),
            abort: AtomicBool::new(false),
        }
    }

    /// Number of worker deques.
    #[cfg(test)]
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Distributes the seed nodes (the component's singletons) round-robin
    /// across the deques so every worker starts with local work.
    pub fn seed(&self) {
        let mut w = 0usize;
        let mut bits = self.comp;
        while bits != 0 {
            let m = bits & bits.wrapping_neg();
            bits &= bits - 1;
            self.lock(w).push_back(m);
            w = (w + 1) % self.queues.len();
        }
    }

    /// Deque locks guard single push/pop operations only, so a lock
    /// poisoned by a panicking worker is safe to recover; the `abort` flag
    /// (set by [`AbortOnExit`]) is the failure channel.
    fn lock(&self, w: usize) -> MutexGuard<'_, VecDeque<u32>> {
        self.queues[w]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The published value of a completed mask.
    #[inline]
    pub fn value(&self, mask: u32) -> (f64, f64) {
        (
            f64::from_bits(self.sel_bits[mask as usize].load(Ordering::Relaxed)),
            f64::from_bits(self.err_bits[mask as usize].load(Ordering::Relaxed)),
        )
    }

    /// Publishes a mask's value. `Relaxed` suffices: readers are ordered
    /// behind this store by the `AcqRel` counter decrements and the deque
    /// mutexes (see the module docs).
    #[inline]
    pub fn store(&self, mask: u32, (sel, err): (f64, f64)) {
        self.sel_bits[mask as usize].store(sel.to_bits(), Ordering::Relaxed);
        self.err_bits[mask as usize].store(err.to_bits(), Ordering::Relaxed);
    }

    /// Records `mask`'s completion against its immediate supersets:
    /// decrements each `mask | bit` counter and appends those that hit
    /// zero to `ready`. Call after [`Self::store`].
    pub fn complete(&self, mask: u32, ready: &mut Vec<u32>) {
        let mut rest = self.comp & !mask;
        while rest != 0 {
            let bit = rest & rest.wrapping_neg();
            rest &= rest - 1;
            let sup = mask | bit;
            if self.counters[sup as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(sup);
            }
        }
    }

    /// Retires one node from the fill's remaining count. Call only after
    /// the node's successors have been enqueued — otherwise `done()` can
    /// fire while ready work is still in a worker's hands.
    pub fn retire(&self) {
        self.remaining.fetch_sub(1, Ordering::AcqRel);
    }

    /// True once every node has completed.
    pub fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Pushes a batch of ready masks onto worker `w`'s deque under one
    /// lock acquisition; returns the deque depth afterwards.
    pub fn push_batch(&self, w: usize, masks: &[u32]) -> usize {
        let mut q = self.lock(w);
        q.extend(masks.iter().copied());
        q.len()
    }

    /// Owner pop: LIFO from the back of `w`'s own deque.
    pub fn pop(&self, w: usize) -> Option<u32> {
        self.lock(w).pop_back()
    }

    /// Steal attempt: FIFO from the front of the other deques, scanning
    /// from the thief's right-hand neighbour.
    pub fn steal(&self, thief: usize) -> Option<u32> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            if let Some(m) = self.lock(victim).pop_front() {
                return Some(m);
            }
        }
        None
    }

    /// Requests cooperative shutdown (budget trip or sibling panic).
    pub fn set_abort(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// True once shutdown was requested.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }
}

/// Worker panic guard: dropped without [`AbortOnExit::disarm`] (i.e. during
/// unwinding), it aborts the fill so sibling workers stop spinning on a
/// lattice that will never complete. The scope join then propagates the
/// panic.
pub(crate) struct AbortOnExit<'a> {
    sched: &'a StealScheduler,
    armed: bool,
}

impl<'a> AbortOnExit<'a> {
    pub fn new(sched: &'a StealScheduler) -> Self {
        AbortOnExit { sched, armed: true }
    }

    /// Normal exit: the guard does nothing on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnExit<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.sched.set_abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_match_predecessor_node_counts() {
        let mut sched = StealScheduler::new(0b1011, 2);
        // Singletons: no predecessor nodes.
        for m in [0b0001u32, 0b0010, 0b1000] {
            assert_eq!(*sched.counters[m as usize].get_mut(), 0, "mask {m:#b}");
        }
        // Pairs and above: one predecessor per member bit.
        assert_eq!(*sched.counters[0b0011].get_mut(), 2);
        assert_eq!(*sched.counters[0b1010].get_mut(), 2);
        assert_eq!(*sched.counters[0b1011].get_mut(), 3);
        // Non-subsets of comp stay untouched.
        assert_eq!(*sched.counters[0b0100].get_mut(), 0);
        assert_eq!(sched.remaining.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn seed_distributes_singletons_round_robin() {
        let sched = StealScheduler::new(0b10111, 2);
        sched.seed();
        let q0: Vec<u32> = sched.lock(0).iter().copied().collect();
        let q1: Vec<u32> = sched.lock(1).iter().copied().collect();
        assert_eq!(q0, vec![0b00001, 0b00100]);
        assert_eq!(q1, vec![0b00010, 0b10000]);
    }

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let sched = StealScheduler::new(0b111, 2);
        sched.push_batch(0, &[1, 2, 4]);
        assert_eq!(sched.steal(1), Some(1), "thief takes the oldest");
        assert_eq!(sched.pop(0), Some(4), "owner takes the newest");
        assert_eq!(sched.pop(0), Some(2));
        assert_eq!(sched.pop(0), None);
        assert_eq!(sched.steal(1), None);
    }

    /// Full-lattice smoke: 4 threads drain a 10-bit component, each node's
    /// "solve" asserting every immediate predecessor already published
    /// (value = popcount, so a dependency violation is observable as a
    /// wrong value, not just a race).
    #[test]
    fn parallel_drain_respects_dependencies_and_completes() {
        const COMP: u32 = 0b11_1111_1111;
        let sched = StealScheduler::new(COMP, 4);
        sched.seed();
        let completed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..sched.workers() {
                let (sched, completed) = (&sched, &completed);
                scope.spawn(move || {
                    let mut ready = Vec::new();
                    loop {
                        let Some(m) = sched.pop(w).or_else(|| sched.steal(w)) else {
                            if sched.done() {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        // Every immediate predecessor node must have
                        // published popcount(pred) before we run.
                        let mut bits = m;
                        while bits != 0 {
                            let bit = bits & bits.wrapping_neg();
                            bits &= bits - 1;
                            let pred = m ^ bit;
                            if pred != 0 {
                                assert_eq!(
                                    sched.value(pred).0,
                                    pred.count_ones() as f64,
                                    "predecessor {pred:#b} of {m:#b} not completed"
                                );
                            }
                        }
                        sched.store(m, (m.count_ones() as f64, 0.0));
                        sched.complete(m, &mut ready);
                        if !ready.is_empty() {
                            sched.push_batch(w, &ready);
                            ready.clear();
                        }
                        sched.retire();
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(completed.load(Ordering::Relaxed), (1usize << 10) - 1);
        assert!(sched.done());
        let mut s = COMP;
        while s != 0 {
            assert_eq!(sched.value(s).0, s.count_ones() as f64);
            s = (s - 1) & COMP;
        }
    }

    #[test]
    fn abort_guard_fires_on_unwind_only() {
        let sched = StealScheduler::new(0b11, 1);
        let guard = AbortOnExit::new(&sched);
        guard.disarm();
        assert!(!sched.aborted(), "disarmed guard must not abort");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = AbortOnExit::new(&sched);
            panic!("worker dies");
        }));
        assert!(result.is_err());
        assert!(sched.aborted(), "unwinding guard must abort the fill");
    }
}

//! Bayesian-network atomic-estimate backend (Chow-Liu trees).
//!
//! The default peel machinery estimates a filter conditioned on co-located
//! filters under independence unless a matching multidimensional SIT
//! exists. This backend factors each table's joint attribute distribution
//! into a tree-structured Bayesian network instead, following the
//! Chow-Liu construction used by Halford et al. (arXiv 1907.06295,
//! 2009.09883):
//!
//! 1. per table, build a [`Hist2d`] over every pair of attributes and take
//!    its [`Hist2d::mutual_information`] as the edge weight;
//! 2. keep a maximum-weight spanning forest (Kruskal with deterministic
//!    tie-breaks on column names), dropping zero-information edges — so a
//!    table with fully independent columns gets an edge-free network;
//! 3. store bucket-granularity marginals per attribute and joint mass
//!    matrices per kept edge, all on *fixed per-attribute maxDiff bucket
//!    boundaries* so every edge incident to an attribute shares its
//!    bucketization.
//!
//! [`BnBackend::peel`] then intercepts a filter peel whose conditioning
//! set contains a filter on a *different, tree-connected* attribute of the
//! same table and answers `Sel(p | F) = P(p ∧ F) / P(F)` by sum-product
//! message passing over the tree, at bucket granularity with continuous
//! interpolation at partial overlaps — no independence assumption between
//! connected attributes. Everything else (joins, unconnected conditioning,
//! `Opt` mode, predicates without value bounds) delegates to the default
//! machinery, so on independent data the backend is bit-identical to
//! [`crate::backend::DiffBackend`].

use std::collections::HashMap;
use std::sync::Arc;

use sqe_engine::predicate::PredColumns;
use sqe_engine::{Database, TableId};
use sqe_histogram::{build_maxdiff, Hist2d};

use crate::backend::{PeelQuery, SelectivityBackend};
use crate::error::ErrorMode;
use crate::failpoint;
use crate::link::{filter_bounds, MIN_SEL};

/// Buckets per attribute dimension. Small enough that per-pair grids stay
/// cheap, fine enough to resolve the 5%-window workload filters.
pub const BN_BUCKETS: usize = 16;

/// Mutual-information floor below which an edge is considered noise and
/// dropped. Exactly independent grids produce MI 0 (clamped), so
/// independent columns reliably yield an edge-free network.
const MI_EPS: f64 = 1e-6;

/// Per-attribute node: fixed maxDiff bucket boundaries and marginal bucket
/// masses over the column's valid values.
#[derive(Debug, Clone)]
struct BnNode {
    bounds: Vec<(i64, i64)>,
    masses: Vec<f64>,
    total: f64,
}

/// One kept tree edge: joint bucket masses between attributes `a` and `b`
/// (`a < b`), `a`-major on the two nodes' fixed boundaries.
#[derive(Debug, Clone)]
struct BnEdge {
    a: u16,
    b: u16,
    joint: Vec<f64>,
    /// Mutual information that selected this edge (reporting/tests).
    mi: f64,
}

/// One table's network: nodes, kept edges, adjacency, and connected
/// components of the forest.
#[derive(Debug, Clone, Default)]
struct BnTable {
    nodes: Vec<Option<BnNode>>,
    edges: Vec<BnEdge>,
    /// Per column: `(neighbor column, edge index)` pairs.
    adj: Vec<Vec<(u16, usize)>>,
    /// Forest component id per column (columns without nodes keep a
    /// singleton id).
    comp: Vec<u32>,
}

/// The per-database catalog of tree-structured per-table networks.
#[derive(Debug, Clone, Default)]
pub struct BnCatalog {
    tables: Vec<BnTable>,
}

impl BnCatalog {
    /// Builds the networks for every table of `db`: pairwise [`Hist2d`]
    /// grids, mutual-information edge weights, Kruskal maximum spanning
    /// forest, then bucket-granularity marginals and joint matrices for
    /// the kept edges.
    pub fn build(db: &Database) -> Self {
        failpoint::fire("bn::build");
        let mut tables = Vec::with_capacity(db.table_count());
        for t in 0..db.table_count() as u32 {
            tables.push(build_table(db, TableId(t)));
        }
        BnCatalog { tables }
    }

    /// The kept edges of `table`'s network as `(column a, column b,
    /// mutual information)` triples, `a < b`.
    pub fn edges(&self, table: TableId) -> Vec<(u16, u16, f64)> {
        self.tables
            .get(table.0 as usize)
            .map(|t| t.edges.iter().map(|e| (e.a, e.b, e.mi)).collect())
            .unwrap_or_default()
    }

    /// Probability that a row of `table` satisfies every `(column, lo,
    /// hi)` range simultaneously, by sum-product message passing over the
    /// forest (independent components multiply). `None` when the table is
    /// unknown or a referenced column has no statistics.
    pub fn conjunction_probability(
        &self,
        table: TableId,
        ranges: &[(u16, i64, i64)],
    ) -> Option<f64> {
        let t = self.tables.get(table.0 as usize)?;
        let mut evidence: HashMap<u16, (i64, i64)> = HashMap::new();
        for &(col, lo, hi) in ranges {
            t.nodes.get(col as usize).and_then(|n| n.as_ref())?;
            intersect_into(&mut evidence, col, lo, hi);
        }
        // One root per distinct component among the evidence columns.
        let mut done: Vec<u32> = Vec::new();
        let mut prob = 1.0;
        let mut roots: Vec<u16> = evidence.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            let c = t.comp[root as usize];
            if done.contains(&c) {
                continue;
            }
            done.push(c);
            prob *= t.prob(root, &evidence)?;
        }
        Some(prob.clamp(0.0, 1.0))
    }

    fn table(&self, id: TableId) -> Option<&BnTable> {
        self.tables.get(id.0 as usize)
    }
}

/// One spanning-forest candidate: `(mutual information, column a, column
/// b, the valid (a, b) value pairs the joint matrix is built from)`.
type EdgeCandidate = (f64, u16, u16, Vec<(i64, i64)>);

fn build_table(db: &Database, id: TableId) -> BnTable {
    let Ok(table) = db.table(id) else {
        return BnTable::default();
    };
    let ncols = table.columns().len();
    // Fixed per-attribute bucketization from each column's own values.
    let mut nodes: Vec<Option<BnNode>> = Vec::with_capacity(ncols);
    for col in table.columns() {
        let valid = col.valid_values();
        if valid.is_empty() {
            nodes.push(None);
            continue;
        }
        let h = build_maxdiff(&valid, col.null_count(), BN_BUCKETS);
        let bounds: Vec<(i64, i64)> = h.buckets().iter().map(|b| (b.lo, b.hi)).collect();
        let masses: Vec<f64> = h.buckets().iter().map(|b| b.freq).collect();
        let total: f64 = masses.iter().sum::<f64>() + col.null_count() as f64;
        nodes.push(Some(BnNode {
            bounds,
            masses,
            total,
        }));
    }
    // Candidate edges: every pair with both nodes present and positive
    // mutual information on the pairwise grid.
    let mut candidates: Vec<EdgeCandidate> = Vec::new();
    for (i, ni) in nodes.iter().enumerate() {
        if ni.is_none() {
            continue;
        }
        for (j, nj) in nodes.iter().enumerate().skip(i + 1) {
            if nj.is_none() {
                continue;
            }
            let (ci, cj) = (
                table.column(i as u16).unwrap(),
                table.column(j as u16).unwrap(),
            );
            let mut pairs = Vec::new();
            let mut nulls = 0usize;
            for r in 0..table.row_count() {
                match (ci.get(r), cj.get(r)) {
                    (Some(x), Some(y)) => pairs.push((x, y)),
                    _ => nulls += 1,
                }
            }
            if pairs.is_empty() {
                continue;
            }
            let grid = Hist2d::build(&pairs, nulls, BN_BUCKETS, BN_BUCKETS);
            let mi = grid.mutual_information();
            if mi > MI_EPS {
                candidates.push((mi, i as u16, j as u16, pairs));
            }
        }
    }
    // Kruskal maximum spanning forest. Ties broken on column *names* so
    // the tree is invariant to attribute order.
    let name = |c: u16| {
        db.schema(id)
            .ok()
            .and_then(|s| s.columns.get(c as usize))
            .map(|c| c.name.clone())
            .unwrap_or_default()
    };
    candidates.sort_by(|x, y| {
        y.0.total_cmp(&x.0)
            .then_with(|| name(x.1).min(name(x.2)).cmp(&name(y.1).min(name(y.2))))
            .then_with(|| name(x.1).max(name(x.2)).cmp(&name(y.1).max(name(y.2))))
    });
    let mut parent: Vec<usize> = (0..ncols).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let mut edges = Vec::new();
    let mut adj: Vec<Vec<(u16, usize)>> = vec![Vec::new(); ncols];
    for (mi, a, b, pairs) in candidates {
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        if ra == rb {
            continue;
        }
        parent[ra] = rb;
        // Joint masses on the two nodes' fixed boundaries.
        let (na, nb) = (
            nodes[a as usize].as_ref().unwrap(),
            nodes[b as usize].as_ref().unwrap(),
        );
        let mut joint = vec![0.0f64; na.bounds.len() * nb.bounds.len()];
        for (x, y) in pairs {
            if let (Some(ai), Some(bi)) = (bucket_of(&na.bounds, x), bucket_of(&nb.bounds, y)) {
                joint[ai * nb.bounds.len() + bi] += 1.0;
            }
        }
        let e = edges.len();
        adj[a as usize].push((b, e));
        adj[b as usize].push((a, e));
        edges.push(BnEdge { a, b, joint, mi });
    }
    let comp: Vec<u32> = (0..ncols).map(|c| find(&mut parent, c) as u32).collect();
    BnTable {
        nodes,
        edges,
        adj,
        comp,
    }
}

impl BnTable {
    /// `P(evidence)` restricted to the forest component containing `root`
    /// (evidence in other components is ignored — it cancels in the
    /// conditional ratios the backend computes). Sum-product from `root`.
    fn prob(&self, root: u16, evidence: &HashMap<u16, (i64, i64)>) -> Option<f64> {
        let node = self.nodes.get(root as usize)?.as_ref()?;
        if node.total <= 0.0 {
            return None;
        }
        let mut prob = 0.0;
        for (bi, &(lo, hi)) in node.bounds.iter().enumerate() {
            let w = evidence_weight(evidence.get(&root), lo, hi);
            if w <= 0.0 {
                continue;
            }
            let down = self.subtree(root, bi, usize::MAX, evidence);
            prob += node.masses[bi] / node.total * w * down;
        }
        Some(prob.clamp(0.0, 1.0))
    }

    /// Product of the messages flowing into `(node, bucket)` from every
    /// incident edge except `from_edge`.
    fn subtree(
        &self,
        node: u16,
        bucket: usize,
        from_edge: usize,
        evidence: &HashMap<u16, (i64, i64)>,
    ) -> f64 {
        let mut m = 1.0;
        for &(_, e) in &self.adj[node as usize] {
            if e != from_edge {
                m *= self.message(e, node, bucket, evidence);
            }
        }
        m
    }

    /// The message `Σ_b P(child ∈ b | parent bucket) · w(b) · subtree(b)`
    /// along `edge` toward `parent`.
    fn message(
        &self,
        edge: usize,
        parent: u16,
        pbi: usize,
        evidence: &HashMap<u16, (i64, i64)>,
    ) -> f64 {
        let e = &self.edges[edge];
        let child = if e.a == parent { e.b } else { e.a };
        let cn = self.nodes[child as usize]
            .as_ref()
            .expect("edges connect existing nodes");
        let ncb = cn.bounds.len();
        let joint_at = |cbi: usize| {
            if e.a == parent {
                e.joint[pbi * ncb + cbi]
            } else {
                e.joint[cbi * self.nodes[e.b as usize].as_ref().unwrap().bounds.len() + pbi]
            }
        };
        let row_total: f64 = (0..ncb).map(&joint_at).sum();
        let mut msg = 0.0;
        for (cbi, &(lo, hi)) in cn.bounds.iter().enumerate() {
            let w = evidence_weight(evidence.get(&child), lo, hi);
            if w <= 0.0 {
                continue;
            }
            // Conditional from the joint; a parent bucket the joint never
            // observed (null-pattern asymmetry) falls back to the child's
            // marginal — the local independence default.
            let cond = if row_total > 0.0 {
                joint_at(cbi) / row_total
            } else if cn.total > 0.0 {
                cn.masses[cbi] / cn.total
            } else {
                0.0
            };
            if cond > 0.0 {
                msg += cond * w * self.subtree(child, cbi, edge, evidence);
            }
        }
        msg
    }
}

/// Fraction of bucket `[blo, bhi]` admitted by an optional evidence range
/// (continuous interpolation, matching `Hist2d`'s overlap rule).
fn evidence_weight(range: Option<&(i64, i64)>, blo: i64, bhi: i64) -> f64 {
    let Some(&(lo, hi)) = range else {
        return 1.0;
    };
    let o_lo = blo.max(lo);
    let o_hi = bhi.min(hi);
    if o_lo > o_hi {
        0.0
    } else {
        (o_hi as i128 - o_lo as i128 + 1) as f64 / (bhi as i128 - blo as i128 + 1) as f64
    }
}

fn bucket_of(bounds: &[(i64, i64)], v: i64) -> Option<usize> {
    let idx = bounds.partition_point(|&(_, hi)| hi < v);
    match bounds.get(idx) {
        Some(&(lo, hi)) if lo <= v && v <= hi => Some(idx),
        _ => None,
    }
}

fn intersect_into(evidence: &mut HashMap<u16, (i64, i64)>, col: u16, lo: i64, hi: i64) {
    evidence
        .entry(col)
        .and_modify(|r| {
            r.0 = r.0.max(lo);
            r.1 = r.1.min(hi);
        })
        .or_insert((lo, hi));
}

/// The backend: intercepts conjunctive filter peels whose conditioning is
/// tree-connected; everything else delegates.
#[derive(Debug, Clone)]
pub struct BnBackend {
    catalog: Arc<BnCatalog>,
}

impl BnBackend {
    /// Wraps a prebuilt catalog (share one across estimators per
    /// database snapshot).
    pub fn new(catalog: Arc<BnCatalog>) -> Self {
        BnBackend { catalog }
    }

    /// Convenience: build the catalog and wrap it.
    pub fn from_db(db: &Database) -> Self {
        BnBackend::new(Arc::new(BnCatalog::build(db)))
    }
}

impl SelectivityBackend for BnBackend {
    fn name(&self) -> &'static str {
        "bn"
    }

    fn peel(&self, q: &PeelQuery<'_>) -> Option<(f64, f64)> {
        // Opt mode is the oracle baseline — leave it untouched.
        if matches!(q.mode(), ErrorMode::Opt) {
            return None;
        }
        let pred = q.predicate();
        let col = match pred.columns() {
            PredColumns::One(c) => c,
            PredColumns::Two(..) => return None,
        };
        let (plo, phi) = filter_bounds(&pred)?;
        let t = self.catalog.table(col.table)?;
        let node = t.nodes.get(col.column as usize)?.as_ref()?;
        let _ = node;
        let comp = t.comp[col.column as usize];

        // Fold the usable same-table conditioning filters into evidence.
        // Interception requires at least one on a *different*,
        // tree-connected attribute — otherwise the network adds nothing
        // beyond independence and the default machinery keeps the peel
        // (which also keeps independent-column behavior bit-identical).
        let mut evidence: HashMap<u16, (i64, i64)> = HashMap::new();
        let mut covered = 0usize;
        let mut connected = false;
        for cp in q.conditioning() {
            let cc = match cp.columns() {
                PredColumns::One(c) => c,
                PredColumns::Two(..) => continue,
            };
            if cc.table != col.table {
                continue;
            }
            let Some((lo, hi)) = filter_bounds(&cp) else {
                continue;
            };
            if t.nodes
                .get(cc.column as usize)
                .and_then(|n| n.as_ref())
                .is_none()
            {
                continue;
            }
            if t.comp[cc.column as usize] != comp {
                continue;
            }
            if cc.column != col.column {
                connected = true;
            }
            intersect_into(&mut evidence, cc.column, lo, hi);
            covered += 1;
        }
        if !connected {
            return None;
        }
        failpoint::fire("bn::peel");
        let den = t.prob(col.column, &evidence)?;
        if den <= 0.0 {
            return None;
        }
        intersect_into(&mut evidence, col.column, plo, phi);
        let num = t.prob(col.column, &evidence)?;
        let sel = (num / den).clamp(MIN_SEL, 1.0);
        // Error charge: the conditioning predicates the network could not
        // absorb (joins, other tables, other components) keep the
        // independence charge of one unit each; absorbed ones are free.
        let err = (q.conditioning_len() - covered.min(q.conditioning_len())) as f64;
        Some((sel, err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;

    /// Markov-chain table: x uniform over 0..16, y = x/2, z = y/2 — the
    /// joint factors exactly over the chain x—y—z (deterministic links),
    /// and every value fits its own bucket at `BN_BUCKETS = 16`.
    fn chain_db() -> Database {
        let x: Vec<i64> = (0..256).map(|r| (r * 37 + 11) % 16).collect();
        let y: Vec<i64> = x.iter().map(|v| v / 2).collect();
        let z: Vec<i64> = y.iter().map(|v| v / 2).collect();
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("chain")
                .column("x", x)
                .column("y", y)
                .column("z", z)
                .build()
                .unwrap(),
        );
        db
    }

    /// Brute-force truth on the base data.
    fn true_prob(db: &Database, ranges: &[(u16, i64, i64)]) -> f64 {
        let t = db.table(TableId(0)).unwrap();
        let hit = (0..t.row_count())
            .filter(|&r| {
                ranges.iter().all(|&(c, lo, hi)| {
                    t.column(c)
                        .unwrap()
                        .get(r)
                        .map(|v| lo <= v && v <= hi)
                        .unwrap_or(false)
                })
            })
            .count();
        hit as f64 / t.row_count() as f64
    }

    #[test]
    fn message_passing_matches_brute_force_on_markov_chain() {
        let db = chain_db();
        let bn = BnCatalog::build(&db);
        assert_eq!(
            bn.edges(TableId(0)).len(),
            2,
            "three dependent attributes form a 2-edge tree"
        );
        for ranges in [
            vec![(0u16, 4i64, 11i64), (1u16, 2i64, 5i64)],
            vec![(0, 0, 7), (2, 0, 1)],
            vec![(0, 4, 11), (1, 2, 5), (2, 1, 2)],
            vec![(1, 0, 3), (2, 2, 3)],
            vec![(0, 0, 15)],
        ] {
            let got = bn
                .conjunction_probability(TableId(0), &ranges)
                .expect("all columns known");
            let want = true_prob(&db, &ranges);
            assert!(
                (got - want).abs() < 1e-9,
                "ranges {ranges:?}: bn {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn chow_liu_tree_is_invariant_to_attribute_order() {
        let x: Vec<i64> = (0..300).map(|r| (r * 53 + 7) % 32).collect();
        let y: Vec<i64> = x.iter().map(|v| v / 3 + (v % 5)).collect();
        let z: Vec<i64> = x.iter().map(|v| v / 7).collect();
        let mut fwd = Database::new();
        fwd.add_table(
            TableBuilder::new("t")
                .column("x", x.clone())
                .column("y", y.clone())
                .column("z", z.clone())
                .build()
                .unwrap(),
        );
        let mut rev = Database::new();
        rev.add_table(
            TableBuilder::new("t")
                .column("z", z)
                .column("y", y)
                .column("x", x)
                .build()
                .unwrap(),
        );
        let name = |db: &Database, c: u16| {
            db.schema(TableId(0)).unwrap().columns[c as usize]
                .name
                .clone()
        };
        let mut ef: Vec<(String, String)> = BnCatalog::build(&fwd)
            .edges(TableId(0))
            .iter()
            .map(|&(a, b, _)| {
                let (x, y) = (name(&fwd, a), name(&fwd, b));
                (x.clone().min(y.clone()), x.max(y))
            })
            .collect();
        let mut er: Vec<(String, String)> = BnCatalog::build(&rev)
            .edges(TableId(0))
            .iter()
            .map(|&(a, b, _)| {
                let (x, y) = (name(&rev, a), name(&rev, b));
                (x.clone().min(y.clone()), x.max(y))
            })
            .collect();
        ef.sort();
        er.sort();
        assert_eq!(ef, er, "edge set must not depend on column order");
        assert!(!ef.is_empty());
    }

    #[test]
    fn independent_columns_build_an_edge_free_network() {
        // Every (a, b) combination exactly once: exact independence.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..16i64 {
            for j in 0..16i64 {
                a.push(i);
                b.push(j);
            }
        }
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("ind")
                .column("a", a)
                .column("b", b)
                .build()
                .unwrap(),
        );
        let bn = BnCatalog::build(&db);
        assert!(bn.edges(TableId(0)).is_empty());
    }

    #[test]
    fn single_attribute_table_has_no_edges_and_sane_marginal() {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("solo")
                .column("a", (0..64i64).map(|v| v % 8).collect())
                .build()
                .unwrap(),
        );
        let bn = BnCatalog::build(&db);
        assert!(bn.edges(TableId(0)).is_empty());
        let p = bn
            .conjunction_probability(TableId(0), &[(0, 0, 3)])
            .unwrap();
        assert!((p - 0.5).abs() < 1e-9, "{p}");
        let all = bn
            .conjunction_probability(TableId(0), &[(0, 0, 7)])
            .unwrap();
        assert!((all - 1.0).abs() < 1e-9, "{all}");
    }
}

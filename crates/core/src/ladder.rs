//! The graceful-degradation ladder: budgeted estimation that always
//! answers.
//!
//! A [`Budget`] bounds how much an estimation request may spend; this
//! module turns "the budget ran out" from an error into a *coarser
//! answer*. The [`Ladder`] walks five rungs, best to worst:
//!
//! 1. **Full** — the complete `getSelectivity` DP, identical bit-for-bit
//!    to an unbudgeted run;
//! 2. **Beam** — the [`crate::beam`] bounded-frontier approximate DP:
//!    width-limited best-first decomposition search, far cheaper than the
//!    full walk but carrying a real (approximate) error model;
//! 3. **Pruned** — the DP restricted by §3.4 SIT-driven pruning (the
//!    paper's own answer to "too many atomic decompositions");
//! 4. **Greedy** — the [`crate::gvm`] greedy view-matching chain: one
//!    pass, no subset enumeration;
//! 5. **Independence** — [`crate::baseline::independence_selectivity`]:
//!    an O(n) product of base-histogram estimates. This floor always
//!    completes, so every request gets *some* answer with an honest
//!    [`Quality`] label and the [`DegradeReason`] that pushed it down.
//!    When the configured [`crate::backend::SelectivityBackend`] publishes
//!    a guaranteed cardinality upper bound (the pessimistic backend), the
//!    floor caps the independence product by that bound and labels the
//!    answer [`Quality::Bound`] — the rung below independence on the
//!    honesty ladder, since the answer leans on a worst-case sketch.
//!
//! ## Beam routing
//!
//! When the configured [`DpStrategy`] routes the query's width to the
//! beam engine (`Auto` does for `n > 20`, where the exact walk is an
//! O(3ⁿ) cliff), `Beam` *is* the top rung: the ladder starts there with
//! the full rung's budget slice, labels an undegraded success
//! [`Quality::Beam`] with no degrade reason — honest "this is the best
//! the routing allows" — and the pruned rung below runs the *pruned
//! beam* engine. Exact-width queries instead get the beam as a middle
//! rung between full and pruned.
//!
//! ## Budget slicing
//!
//! One caller budget funds the whole ladder, so each DP rung gets a
//! *slice*, not the whole thing — otherwise the full rung would eat the
//! entire allowance and leave the pruned rung nothing. With quota `Q` and
//! deadline `D` (measured from entry), and `R₁ = Q − ⌊Q/2⌋`,
//! `R₂ = R₁ − ⌊R₁/2⌋`:
//!
//! | rung  | work cap            | absolute deadline |
//! |-------|---------------------|-------------------|
//! | full *(or beam when routed)* | `⌊Q/2⌋` | `start + D/2` |
//! | beam *(exact-width queries only)* | `⌊R₁/2⌋` (fresh) | `start + 5D/8` |
//! | pruned| `⌊R₂/2⌋` (fresh; `⌊R₁/2⌋` when routed) | `start + 3D/4` |
//! | greedy| none (fast)         | `start + D` (checked before) |
//! | independence | none         | none              |
//!
//! Each cap is a floor of a monotone nondecreasing function of `Q`, so a
//! *larger* budget can never fail a rung a smaller budget passed: the
//! quality label is monotone in the quota (property-tested in
//! `tests/budget_ladder.rs`). The greedy rung carries no quota — it does
//! one chain pass — and is skipped only if the caller cancelled or the
//! full deadline already passed.

use std::sync::Arc;
use std::time::Instant;

use sqe_engine::{Database, SpjQuery};

use crate::backend::{DiffBackend, SelectivityBackend};
use crate::baseline::independence_selectivity;
use crate::beam::BeamConfig;
use crate::budget::{Budget, BudgetMeter, DegradeReason, Quality};
use crate::cache::SharedEstimatorCache;
use crate::error::ErrorMode;
use crate::estimator::{DpStrategy, EstimatorStats, SelectivityEstimator};
use crate::gvm::GreedyViewMatching;
use crate::metrics::{MetricsSink, NullSink};
use crate::sit::SitCatalog;
use crate::sit2::Sit2Catalog;

/// A budgeted estimation result: always a usable selectivity, honestly
/// labeled with how it was obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetedEstimate {
    /// The selectivity estimate for the full predicate set.
    pub selectivity: f64,
    /// The DP's error score for the chosen decomposition — present on the
    /// [`Quality::Full`], [`Quality::Beam`], and [`Quality::Pruned`] rungs,
    /// `None` below (the greedy and independence paths carry no error
    /// model).
    pub error: Option<f64>,
    /// Which rung produced the answer.
    pub quality: Quality,
    /// Why the answer is degraded below the best rung this query can
    /// reach; `None` iff the top rung answered — `Full` for exact-width
    /// queries, `Beam` when the strategy routes the query to the beam
    /// engine (an undegraded beam answer is the best the routing allows).
    pub degraded_reason: Option<DegradeReason>,
    /// Work units spent across the DP rungs (0 for an unlimited run —
    /// the fast path skips accounting entirely).
    pub work: u64,
    /// Instrumentation from the rung that produced the answer (zeroed for
    /// the independence floor, which runs no estimator).
    pub stats: EstimatorStats,
}

/// Reusable ladder configuration for one `(database, catalog)` pair: the
/// estimator knobs every rung shares. Build once, call
/// [`Ladder::estimate`] per query.
pub struct Ladder<'a> {
    db: &'a Database,
    catalog: &'a SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    dp_threads: usize,
    pruning: bool,
    beam: BeamConfig,
    sit2: Option<&'a Sit2Catalog>,
    shared: Option<&'a dyn SharedEstimatorCache>,
    backend: Arc<dyn SelectivityBackend>,
    metrics: &'a dyn MetricsSink,
}

/// The shared no-op sink every ladder starts with.
static NULL_SINK: NullSink = NullSink;

impl<'a> Ladder<'a> {
    pub fn new(db: &'a Database, catalog: &'a SitCatalog, mode: ErrorMode) -> Self {
        Ladder {
            db,
            catalog,
            mode,
            strategy: DpStrategy::Auto,
            dp_threads: 1,
            pruning: false,
            beam: BeamConfig::default(),
            sit2: None,
            shared: None,
            backend: Arc::new(DiffBackend),
            metrics: &NULL_SINK,
        }
    }

    /// Installs a [`MetricsSink`] observing the rung walk: one
    /// [`MetricsSink::rung_attempted`] per rung tried, one
    /// [`MetricsSink::rung_answered`] for the rung that answered. Sinks
    /// observe only — the walk and every answer are bit-identical with or
    /// without one.
    pub fn with_metrics(mut self, sink: &'a dyn MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// Selectivity backend forwarded to every DP rung. A backend that
    /// publishes [`SelectivityBackend::upper_bound`] additionally turns the
    /// independence floor into the [`Quality::Bound`] floor: the floor
    /// answer is capped by the guaranteed bound and labeled accordingly.
    pub fn with_backend(mut self, backend: Arc<dyn SelectivityBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// DP engine selection for the DP rungs (see [`DpStrategy`]).
    pub fn with_strategy(mut self, strategy: DpStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Knobs of the beam rung (and of every DP rung when the strategy
    /// routes the query to the beam engine).
    pub fn with_beam_config(mut self, cfg: BeamConfig) -> Self {
        self.beam = cfg;
        self
    }

    /// Worker threads for the dense rank-parallel fill.
    pub fn with_dp_threads(mut self, threads: usize) -> Self {
        self.dp_threads = threads.max(1);
        self
    }

    /// Enables §3.4 pruning on the *full* rung too (the pruned rung always
    /// prunes). With this set the first two rungs share a configuration
    /// and differ only in their budget slice.
    pub fn with_sit_driven_pruning(mut self) -> Self {
        self.pruning = true;
        self
    }

    /// Two-attribute SIT catalog, forwarded to the DP rungs.
    pub fn with_sit2_catalog(mut self, catalog: &'a Sit2Catalog) -> Self {
        self.sit2 = Some(catalog);
        self
    }

    /// Cross-query shared cache, forwarded to the DP rungs. Peel factors
    /// written back by a degraded run are still exact (pruning and budget
    /// trips never alter an individual factor, only which ones get
    /// computed), so the cache-validity contract of [`crate::cache`]
    /// holds on every rung.
    pub fn with_shared_cache(mut self, cache: &'a dyn SharedEstimatorCache) -> Self {
        self.shared = Some(cache);
        self
    }

    fn build_estimator(&self, query: &SpjQuery, pruned: bool) -> SelectivityEstimator<'a> {
        self.build_estimator_as(query, pruned, self.strategy)
    }

    fn build_estimator_as(
        &self,
        query: &SpjQuery,
        pruned: bool,
        strategy: DpStrategy,
    ) -> SelectivityEstimator<'a> {
        let mut est = SelectivityEstimator::new(self.db, query, self.catalog, self.mode)
            .with_strategy(strategy)
            .with_beam_config(self.beam)
            .with_dp_threads(self.dp_threads);
        if let Some(s2) = self.sit2 {
            est = est.with_sit2_catalog(s2);
        }
        if let Some(c) = self.shared {
            // Beam rungs run cache-free: at the widths that use the beam,
            // per-link cache round-trips cost more wall-clock than the
            // bounded walk saves by reuse (measured 4–5× on the seeded
            // 32-predicate workload), and beam answers never enter the
            // query-level cache anyway — only exact `Full` ones do.
            if !strategy.use_beam(query.predicates.len()) {
                est = est.with_shared_cache(c);
            }
        }
        if pruned || self.pruning {
            est = est.with_sit_driven_pruning();
        }
        est.with_backend(self.backend.clone())
    }

    /// The floor: independence by default, upgraded-in-honesty to the
    /// [`Quality::Bound`] rung when the backend publishes a guaranteed
    /// cardinality upper bound. The bound caps the independence product —
    /// a sound ceiling can only tighten an unconditioned estimate — and the
    /// label records that the answer leans on the bound sketch rather than
    /// on the uniform-independence model alone.
    fn floor(
        &self,
        query: &SpjQuery,
        reason: Option<DegradeReason>,
        work: u64,
    ) -> BudgetedEstimate {
        let independence = independence_selectivity(self.db, self.catalog, query);
        if let Some(bound) = self.backend.upper_bound(query) {
            if let Ok(cross) = self.db.cross_product_size(&query.tables) {
                let cross = cross as f64;
                if cross > 0.0 && bound.is_finite() {
                    let cap = (bound / cross).clamp(0.0, 1.0);
                    self.metrics.rung_attempted(Quality::Bound);
                    self.metrics.rung_answered(Quality::Bound, reason);
                    return BudgetedEstimate {
                        selectivity: independence.min(cap),
                        error: None,
                        quality: Quality::Bound,
                        degraded_reason: reason,
                        work,
                        stats: EstimatorStats::default(),
                    };
                }
            }
        }
        self.metrics.rung_attempted(Quality::Independence);
        self.metrics.rung_answered(Quality::Independence, reason);
        BudgetedEstimate {
            selectivity: independence,
            error: None,
            quality: Quality::Independence,
            degraded_reason: reason,
            work,
            stats: EstimatorStats::default(),
        }
    }

    /// Runs the ladder for `query` under `budget`. Never errors: the
    /// independence floor guarantees an answer. An unlimited budget takes
    /// a meter-free fast path bit-identical to calling the estimator
    /// directly.
    pub fn estimate(&self, query: &SpjQuery, budget: &Budget) -> BudgetedEstimate {
        if budget.is_unlimited() {
            let mut est = self.build_estimator(query, false);
            let all = est.context().all();
            let (selectivity, error) = est.get_selectivity(all);
            let quality = if est.is_beam() {
                Quality::Beam
            } else {
                Quality::Full
            };
            self.metrics.rung_attempted(quality);
            self.metrics.rung_answered(quality, None);
            return BudgetedEstimate {
                selectivity,
                error: Some(error),
                quality,
                degraded_reason: None,
                work: 0,
                stats: est.stats(),
            };
        }

        let start = Instant::now();

        // A budget already exhausted at entry — a pre-cancelled token or a
        // zero deadline — goes straight to the floor. Without this gate a
        // query small enough to finish between amortized polls could still
        // return `Full`, making cancellation nondeterministic.
        let entry = BudgetMeter::from_parts(
            budget.deadline.map(|d| start + d),
            None,
            budget.cancel.clone(),
        );
        if let Err(e) = entry.force_poll() {
            return self.floor(query, Some(e.into()), 0);
        }

        let mut work = 0u64;
        // Whether the strategy routes this query's width to the beam
        // engine: the top rung is then the beam itself (the exact walk is
        // unaffordable by construction) and the dedicated middle rung is
        // redundant.
        let routed = self.strategy.use_beam(query.predicates.len());
        // Why the answer is degraded: the top rung's trip reason (every
        // later rung only runs because the top rung failed).
        let reason: DegradeReason;

        // Rung 1: the best DP this query can get — full exact, or beam
        // when routed — on half the allowance.
        let full_meter = Arc::new(BudgetMeter::from_parts(
            budget.deadline.map(|d| start + d / 2),
            budget.quota.map(|q| q / 2),
            budget.cancel.clone(),
        ));
        {
            let top = if routed { Quality::Beam } else { Quality::Full };
            self.metrics.rung_attempted(top);
            let mut est = self
                .build_estimator(query, false)
                .with_budget_meter(full_meter.clone());
            let all = est.context().all();
            let r = est.try_get_selectivity(all);
            work += full_meter.spent();
            match r {
                Ok((selectivity, error)) => {
                    self.metrics.rung_answered(top, None);
                    return BudgetedEstimate {
                        selectivity,
                        error: Some(error),
                        quality: top,
                        degraded_reason: None,
                        work,
                        stats: est.stats(),
                    };
                }
                Err(e) => reason = e.into(),
            }
        }

        // Rung 2 (exact-width queries only): the beam engine on a fresh
        // half-of-the-remainder slice — an approximate DP answer with a
        // real error model, far cheaper than the full walk that just
        // tripped. Caps are floors of monotone functions of Q — never
        // cumulative windows, which would break quota monotonicity.
        let r1 = budget.quota.map(|q| q - q / 2);
        if !routed {
            self.metrics.rung_attempted(Quality::Beam);
            let beam_meter = Arc::new(BudgetMeter::from_parts(
                budget.deadline.map(|d| start + d.mul_f64(0.625)),
                r1.map(|r| r / 2),
                budget.cancel.clone(),
            ));
            let mut est = self
                .build_estimator_as(query, false, DpStrategy::Beam)
                .with_budget_meter(beam_meter.clone());
            let all = est.context().all();
            let r = est.try_get_selectivity(all);
            work += beam_meter.spent();
            if let Ok((selectivity, error)) = r {
                self.metrics.rung_answered(Quality::Beam, Some(reason));
                return BudgetedEstimate {
                    selectivity,
                    error: Some(error),
                    quality: Quality::Beam,
                    degraded_reason: Some(reason),
                    work,
                    stats: est.stats(),
                };
            }
        }

        // Rung 3: pruned DP (the pruned *beam* engine when routed) on a
        // fresh slice of what the rungs above left notionally unspent.
        let r2 = if routed { r1 } else { r1.map(|r| r - r / 2) };
        let pruned_meter = Arc::new(BudgetMeter::from_parts(
            budget.deadline.map(|d| start + d.mul_f64(0.75)),
            r2.map(|r| r / 2),
            budget.cancel.clone(),
        ));
        {
            self.metrics.rung_attempted(Quality::Pruned);
            let mut est = self
                .build_estimator(query, true)
                .with_budget_meter(pruned_meter.clone());
            let all = est.context().all();
            let r = est.try_get_selectivity(all);
            work += pruned_meter.spent();
            if let Ok((selectivity, error)) = r {
                self.metrics.rung_answered(Quality::Pruned, Some(reason));
                return BudgetedEstimate {
                    selectivity,
                    error: Some(error),
                    quality: Quality::Pruned,
                    degraded_reason: Some(reason),
                    work,
                    stats: est.stats(),
                };
            }
        }

        // Rung 4: greedy view matching — one chain pass, no quota. Only
        // skipped if the caller cancelled or the full deadline already
        // passed (the pass itself is microseconds-to-milliseconds).
        let gate = BudgetMeter::from_parts(
            budget.deadline.map(|d| start + d),
            None,
            budget.cancel.clone(),
        );
        if gate.force_poll().is_ok() {
            self.metrics.rung_attempted(Quality::Greedy);
            let mut gvm = GreedyViewMatching::new(self.db, query, self.catalog);
            let all = gvm.context().all();
            let selectivity = gvm.selectivity(all);
            self.metrics.rung_answered(Quality::Greedy, Some(reason));
            return BudgetedEstimate {
                selectivity,
                error: None,
                quality: Quality::Greedy,
                degraded_reason: Some(reason),
                work,
                stats: gvm.stats(),
            };
        }

        // Rung 5: the floor — independence, or the bound-capped
        // `Quality::Bound` variant when the backend publishes one. O(n);
        // always answers.
        self.floor(query, Some(reason), work)
    }
}

//! Concurrency primitives for the rank-synchronous parallel dense fill.
//!
//! [`OnceMap`] guarantees **exactly-once** evaluation of peel links within
//! one popcount rank: the first worker to touch a key claims it and
//! computes; every other worker blocks until the value is published and
//! then reuses it. This keeps the parallel fill's instrumentation honest —
//! the set of *computed* peel keys (and therefore `peel_entries` and
//! `vm_calls`, both pure functions of that set) is identical to the serial
//! fill's, not merely the values.
//!
//! Two failure paths are first-class:
//!
//! * **Claimant panic** — a claim is returned as a [`ClaimGuard`]; if the
//!   owner unwinds before publishing, the guard's destructor poisons the
//!   slot and wakes every waiter, which observe [`ClaimError::Poisoned`]
//!   instead of blocking on the condvar forever.
//! * **Cooperative interruption** — [`OnceMap::claim`] waits in short
//!   timed slices and consults the caller's `interrupted` predicate
//!   between them, so a budget-exhausted worker stops waiting within a
//!   millisecond instead of riding out another worker's computation.
//!
//! One `OnceMap` lives for one rank; at the rank barrier the estimator
//! drains it into the per-query peel memo so later ranks (and later serial
//! work) read the values as plain memo hits.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

#[cfg(test)]
use crate::flat::FlatMemo;

/// Shard count (power of two). Contention is per-key-claim, not per-probe —
/// workers consult the read-only rank-start memo snapshot first — so a
/// modest shard count suffices.
const SHARDS: usize = 64;

/// How long one condvar wait slice lasts before the waiter re-checks its
/// interruption predicate.
const WAIT_SLICE: Duration = Duration::from_millis(1);

/// State of one claimed key.
enum Slot {
    /// Claimed, computation in flight.
    Pending,
    /// Published.
    Ready((f64, f64)),
    /// The claimant unwound without publishing.
    Poisoned,
}

/// Why a [`OnceMap::claim`] did not produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClaimError {
    /// The owning worker panicked before publishing.
    Poisoned,
    /// The caller's interruption predicate fired while waiting.
    Interrupted,
}

/// Outcome of a successful [`OnceMap::claim`].
pub(crate) enum Claim<'a> {
    /// The caller owns the key: compute the value, then
    /// [`ClaimGuard::publish`] it. If the computation unwinds instead, the
    /// guard poisons the slot so waiters error out rather than hang.
    Owned(ClaimGuard<'a>),
    /// Another worker already published the value.
    Ready((f64, f64)),
}

/// Ownership token for a claimed key. Dropping it without calling
/// [`ClaimGuard::publish`] marks the key poisoned and wakes all waiters —
/// the drop runs during unwinding, which is exactly the claimant-panic
/// path.
pub(crate) struct ClaimGuard<'a> {
    map: &'a OnceMap,
    key: u64,
    armed: bool,
}

impl ClaimGuard<'_> {
    /// Publishes the value and wakes every waiter. Disarms the poison
    /// guard only once the publish has fully completed, so a panic *inside*
    /// publishing (e.g. an armed failpoint) still poisons the slot.
    pub fn publish(mut self, value: (f64, f64)) {
        self.map.publish(self.key, value);
        self.armed = false;
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.map.poison(self.key);
        }
    }
}

struct Shard {
    entries: Mutex<HashMap<u64, Slot>>,
    published: Condvar,
}

impl Shard {
    /// Shard locks never guard multi-step invariants (every mutation is a
    /// single insert), so a poisoned lock — a worker that panicked during a
    /// `HashMap` operation — is safe to recover rather than propagate;
    /// slot poisoning, not lock poisoning, is the failure channel.
    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Slot>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A sharded claim-then-publish map keyed by peel keys.
pub(crate) struct OnceMap {
    shards: Vec<Shard>,
}

impl OnceMap {
    pub fn new() -> Self {
        OnceMap {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    entries: Mutex::new(HashMap::new()),
                    published: Condvar::new(),
                })
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Shard {
        // Fibonacci hash, top bits — same mixing as the flat memo.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 58) as usize & (SHARDS - 1)]
    }

    /// Claims `key` for computation, or waits for (and returns) the value
    /// if another worker claimed it first. Waiting is sliced: between
    /// condvar waits the `interrupted` predicate is consulted, and a `true`
    /// return surfaces as [`ClaimError::Interrupted`]. A poisoned slot
    /// (claimant panicked) surfaces as [`ClaimError::Poisoned`].
    pub fn claim(&self, key: u64, interrupted: impl Fn() -> bool) -> Result<Claim<'_>, ClaimError> {
        let shard = self.shard(key);
        let mut entries = shard.lock();
        loop {
            match entries.get(&key) {
                None => {
                    entries.insert(key, Slot::Pending);
                    return Ok(Claim::Owned(ClaimGuard {
                        map: self,
                        key,
                        armed: true,
                    }));
                }
                Some(Slot::Ready(v)) => return Ok(Claim::Ready(*v)),
                Some(Slot::Poisoned) => return Err(ClaimError::Poisoned),
                Some(Slot::Pending) => {
                    if interrupted() {
                        return Err(ClaimError::Interrupted);
                    }
                    (entries, _) = shard
                        .published
                        .wait_timeout(entries, WAIT_SLICE)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Publishes the value for a claimed key and wakes every waiter.
    /// Internal — callers publish through their [`ClaimGuard`], which
    /// keeps the poison guard armed until this returns.
    fn publish(&self, key: u64, value: (f64, f64)) {
        crate::failpoint::fire("par::publish");
        let shard = self.shard(key);
        shard.lock().insert(key, Slot::Ready(value));
        shard.published.notify_all();
    }

    /// Marks a claimed-but-unpublished key poisoned and wakes waiters.
    /// Never overwrites a published value (publish/poison race safety).
    fn poison(&self, key: u64) {
        let shard = self.shard(key);
        let mut entries = shard.lock();
        if let Some(slot @ Slot::Pending) = entries.get_mut(&key) {
            *slot = Slot::Poisoned;
        }
        shard.published.notify_all();
    }

    /// Visits every published value (the fill's success-path barrier).
    /// Consumes the map; only called on the success path, where every
    /// claimed key has been published.
    pub fn drain(self, mut sink: impl FnMut(u64, (f64, f64))) {
        for shard in self.shards {
            let entries = shard
                .entries
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            for (key, slot) in entries {
                match slot {
                    Slot::Ready(value) => sink(key, value),
                    Slot::Pending => panic!("claimed key never published before the rank barrier"),
                    Slot::Poisoned => panic!("poisoned peel slot survived to the rank barrier"),
                }
            }
        }
    }

    /// [`Self::drain`] into an open-addressed memo.
    #[cfg(test)]
    pub fn drain_into(self, memo: &mut FlatMemo) {
        self.drain(|key, value| memo.insert(key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn claim_nowait(map: &OnceMap, key: u64) -> Result<Claim<'_>, ClaimError> {
        map.claim(key, || false)
    }

    #[test]
    fn first_claim_owns_then_ready_after_publish() {
        let map = OnceMap::new();
        match claim_nowait(&map, 42).unwrap() {
            Claim::Owned(guard) => guard.publish((0.5, 1.0)),
            Claim::Ready(_) => panic!("fresh key must be owned"),
        }
        match claim_nowait(&map, 42).unwrap() {
            Claim::Ready(v) => assert_eq!(v, (0.5, 1.0)),
            Claim::Owned(_) => panic!("published key must be ready"),
        };
    }

    /// 8 workers race claim/publish over a key space crafted to interleave
    /// shard access: half the workers walk keys ascending, half descending,
    /// and keys are spaced so consecutive probes hit different shards. The
    /// owner of each key sleeps before publishing, so losers genuinely
    /// block on the condvar instead of winning a fast-path read — the test
    /// then asserts every key was computed exactly once, every waiter
    /// observed the owner's published value (never a default or a torn
    /// one), and the scope joins (no deadlock).
    #[test]
    fn contended_claims_block_waiters_until_publish_without_deadlock() {
        const KEYS: u64 = 96;
        let map = OnceMap::new();
        let computed = AtomicUsize::new(0);
        let observed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..8usize {
                let (map, computed, observed) = (&map, &computed, &observed);
                s.spawn(move || {
                    for step in 0..KEYS {
                        // Ascending for even workers, descending for odd:
                        // two workers meet on every key from opposite ends,
                        // and the ×37 stride scatters neighbours across
                        // shards (37 is odd, so the Fibonacci-hash shard
                        // sequence decorrelates between directions).
                        let k = if worker % 2 == 0 {
                            step
                        } else {
                            KEYS - 1 - step
                        };
                        let key = k * 37;
                        match claim_nowait(map, key).unwrap() {
                            Claim::Owned(guard) => {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Hold the claim long enough that at least
                                // some other worker reaches the wait path.
                                std::thread::sleep(std::time::Duration::from_micros(50));
                                guard.publish((key as f64 + 0.5, -(key as f64)));
                            }
                            Claim::Ready(v) => {
                                observed.fetch_add(1, Ordering::Relaxed);
                                assert_eq!(
                                    v,
                                    (key as f64 + 0.5, -(key as f64)),
                                    "waiter observed a value other than the published one"
                                );
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            KEYS as usize,
            "every key computed exactly once"
        );
        // 8 workers × 96 keys = 768 claims; all non-owning claims resolve
        // to Ready with the published value.
        assert_eq!(
            computed.load(Ordering::Relaxed) + observed.load(Ordering::Relaxed),
            8 * KEYS as usize
        );
        // The barrier drain sees exactly one published value per key.
        let mut memo = FlatMemo::new();
        map.drain_into(&mut memo);
        assert_eq!(memo.len(), KEYS as usize);
        for k in 0..KEYS {
            let key = k * 37;
            assert_eq!(memo.get(key), Some((key as f64 + 0.5, -(key as f64))));
        }
    }

    #[test]
    fn concurrent_claims_compute_each_key_exactly_once() {
        let map = OnceMap::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0u64..200 {
                        match claim_nowait(&map, key).unwrap() {
                            Claim::Owned(guard) => {
                                computed.fetch_add(1, Ordering::Relaxed);
                                guard.publish((key as f64, 0.0));
                            }
                            Claim::Ready(v) => assert_eq!(v.0, key as f64),
                        }
                    }
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            200,
            "exactly once per key"
        );
        let mut memo = FlatMemo::new();
        map.drain_into(&mut memo);
        assert_eq!(memo.len(), 200);
        for key in 0u64..200 {
            assert_eq!(memo.get(key), Some((key as f64, 0.0)));
        }
    }

    /// The satellite regression: a claimant that panics mid-computation
    /// must not leave its 8 waiters on the condvar forever. The guard's
    /// unwind path poisons the slot; every waiter observes
    /// [`ClaimError::Poisoned`] and returns, and the scope joins.
    #[test]
    fn panicking_claimant_poisons_slot_and_releases_all_waiters() {
        const KEY: u64 = 7;
        let map = OnceMap::new();
        let barrier = std::sync::Barrier::new(9);
        let poisoned_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            // The claimant: owns the key, then dies before publishing.
            {
                let (map, barrier) = (&map, &barrier);
                s.spawn(move || {
                    let claim = claim_nowait(map, KEY).unwrap();
                    assert!(matches!(claim, Claim::Owned(_)));
                    barrier.wait(); // let the waiters pile up first
                    std::thread::sleep(Duration::from_millis(10));
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _guard = match claim {
                            Claim::Owned(g) => g,
                            Claim::Ready(_) => unreachable!(),
                        };
                        panic!("claimant dies before publishing");
                        // _guard drops during unwind -> slot poisoned
                    }));
                    assert!(result.is_err());
                });
            }
            // 8 waiters, all blocked on the pending slot.
            for _ in 0..8 {
                let (map, barrier, poisoned_seen) = (&map, &barrier, &poisoned_seen);
                s.spawn(move || {
                    barrier.wait();
                    match map.claim(KEY, || false) {
                        Err(ClaimError::Poisoned) => {
                            poisoned_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClaimError::Interrupted) => panic!("no interruption requested"),
                        Ok(Claim::Ready(_)) => panic!("nothing was ever published"),
                        Ok(Claim::Owned(_)) => panic!("key is already claimed"),
                    }
                });
            }
        });
        assert_eq!(
            poisoned_seen.load(Ordering::Relaxed),
            8,
            "every waiter must observe the poisoned slot"
        );
        // Late claims see the poison too (no silent re-claim of a key whose
        // computation never completed).
        assert!(matches!(claim_nowait(&map, KEY), Err(ClaimError::Poisoned)));
    }

    /// Cooperative interruption: a waiter whose budget trips while the
    /// owner computes must stop waiting promptly, while the owner's
    /// publish still completes.
    #[test]
    fn interrupted_waiter_returns_instead_of_blocking() {
        let map = OnceMap::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let guard = match claim_nowait(&map, 3).unwrap() {
            Claim::Owned(g) => g,
            Claim::Ready(_) => unreachable!(),
        };
        std::thread::scope(|s| {
            let (map, stop) = (&map, &stop);
            s.spawn(move || {
                assert!(
                    matches!(
                        map.claim(3, || stop.load(Ordering::Relaxed)),
                        Err(ClaimError::Interrupted)
                    ),
                    "waiter must be interrupted"
                );
            });
            std::thread::sleep(Duration::from_millis(5));
            stop.store(true, Ordering::Relaxed);
        });
        // The owner is unaffected by the waiter's abandonment.
        guard.publish((1.0, 2.0));
        match claim_nowait(&map, 3).unwrap() {
            Claim::Ready(v) => assert_eq!(v, (1.0, 2.0)),
            Claim::Owned(_) => panic!("value was published"),
        };
    }

    /// A publish/poison race (guard drop after another code path published
    /// through a different route) must never clobber a published value.
    #[test]
    fn poison_never_overwrites_published_value() {
        let map = OnceMap::new();
        map.publish(11, (0.25, 0.5));
        map.poison(11);
        match claim_nowait(&map, 11).unwrap() {
            Claim::Ready(v) => assert_eq!(v, (0.25, 0.5)),
            Claim::Owned(_) => panic!("value was published"),
        };
    }
}

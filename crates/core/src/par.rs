//! Concurrency primitives for the rank-synchronous parallel dense fill.
//!
//! [`OnceMap`] guarantees **exactly-once** evaluation of peel links within
//! one popcount rank: the first worker to touch a key claims it and
//! computes; every other worker blocks until the value is published and
//! then reuses it. This keeps the parallel fill's instrumentation honest —
//! the set of *computed* peel keys (and therefore `peel_entries` and
//! `vm_calls`, both pure functions of that set) is identical to the serial
//! fill's, not merely the values.
//!
//! One `OnceMap` lives for one rank; at the rank barrier the estimator
//! drains it into the per-query peel memo so later ranks (and later serial
//! work) read the values as plain memo hits.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

use crate::flat::FlatMemo;

/// Shard count (power of two). Contention is per-key-claim, not per-probe —
/// workers consult the read-only rank-start memo snapshot first — so a
/// modest shard count suffices.
const SHARDS: usize = 64;

/// Outcome of [`OnceMap::claim`].
pub(crate) enum Claim {
    /// The caller owns the key: compute the value, then
    /// [`OnceMap::publish`] it. Failing to publish deadlocks waiters — the
    /// compute path must be infallible (and is: peel evaluation returns
    /// plain floats).
    Owned,
    /// Another worker already published the value.
    Ready((f64, f64)),
}

struct Shard {
    /// `None` = claimed but not yet published; `Some(v)` = published.
    entries: Mutex<HashMap<u64, Option<(f64, f64)>>>,
    published: Condvar,
}

/// A sharded claim-then-publish map keyed by peel keys.
pub(crate) struct OnceMap {
    shards: Vec<Shard>,
}

impl OnceMap {
    pub fn new() -> Self {
        OnceMap {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    entries: Mutex::new(HashMap::new()),
                    published: Condvar::new(),
                })
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Shard {
        // Fibonacci hash, top bits — same mixing as the flat memo.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 58) as usize & (SHARDS - 1)]
    }

    /// Claims `key` for computation, or waits for (and returns) the value
    /// if another worker claimed it first.
    pub fn claim(&self, key: u64) -> Claim {
        let shard = self.shard(key);
        let mut entries = shard.entries.lock().expect("once-map shard poisoned");
        loop {
            match entries.get(&key) {
                None => {
                    entries.insert(key, None);
                    return Claim::Owned;
                }
                Some(Some(v)) => return Claim::Ready(*v),
                Some(None) => {
                    entries = shard
                        .published
                        .wait(entries)
                        .expect("once-map shard poisoned");
                }
            }
        }
    }

    /// Publishes the value for a key previously claimed as [`Claim::Owned`]
    /// and wakes every waiter.
    pub fn publish(&self, key: u64, value: (f64, f64)) {
        let shard = self.shard(key);
        shard
            .entries
            .lock()
            .expect("once-map shard poisoned")
            .insert(key, Some(value));
        shard.published.notify_all();
    }

    /// Moves every published value into `memo` (the rank barrier). Consumes
    /// the map; every claimed key must have been published by now.
    pub fn drain_into(self, memo: &mut FlatMemo) {
        for shard in self.shards {
            let entries = shard.entries.into_inner().expect("once-map shard poisoned");
            for (key, value) in entries {
                memo.insert(
                    key,
                    value.expect("claimed key published before the rank barrier"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_claim_owns_then_ready_after_publish() {
        let map = OnceMap::new();
        assert!(matches!(map.claim(42), Claim::Owned));
        map.publish(42, (0.5, 1.0));
        match map.claim(42) {
            Claim::Ready(v) => assert_eq!(v, (0.5, 1.0)),
            Claim::Owned => panic!("published key must be ready"),
        }
    }

    /// 8 workers race claim/publish over a key space crafted to interleave
    /// shard access: half the workers walk keys ascending, half descending,
    /// and keys are spaced so consecutive probes hit different shards. The
    /// owner of each key sleeps before publishing, so losers genuinely
    /// block on the condvar instead of winning a fast-path read — the test
    /// then asserts every key was computed exactly once, every waiter
    /// observed the owner's published value (never a default or a torn
    /// one), and the scope joins (no deadlock).
    #[test]
    fn contended_claims_block_waiters_until_publish_without_deadlock() {
        const KEYS: u64 = 96;
        let map = OnceMap::new();
        let computed = AtomicUsize::new(0);
        let observed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for worker in 0..8usize {
                let (map, computed, observed) = (&map, &computed, &observed);
                s.spawn(move || {
                    for step in 0..KEYS {
                        // Ascending for even workers, descending for odd:
                        // two workers meet on every key from opposite ends,
                        // and the ×37 stride scatters neighbours across
                        // shards (37 is odd, so the Fibonacci-hash shard
                        // sequence decorrelates between directions).
                        let k = if worker % 2 == 0 {
                            step
                        } else {
                            KEYS - 1 - step
                        };
                        let key = k * 37;
                        match map.claim(key) {
                            Claim::Owned => {
                                computed.fetch_add(1, Ordering::Relaxed);
                                // Hold the claim long enough that at least
                                // some other worker reaches the wait path.
                                std::thread::sleep(std::time::Duration::from_micros(50));
                                map.publish(key, (key as f64 + 0.5, -(key as f64)));
                            }
                            Claim::Ready(v) => {
                                observed.fetch_add(1, Ordering::Relaxed);
                                assert_eq!(
                                    v,
                                    (key as f64 + 0.5, -(key as f64)),
                                    "waiter observed a value other than the published one"
                                );
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            KEYS as usize,
            "every key computed exactly once"
        );
        // 8 workers × 96 keys = 768 claims; all non-owning claims resolve
        // to Ready with the published value.
        assert_eq!(
            computed.load(Ordering::Relaxed) + observed.load(Ordering::Relaxed),
            8 * KEYS as usize
        );
        // The barrier drain sees exactly one published value per key.
        let mut memo = FlatMemo::new();
        map.drain_into(&mut memo);
        assert_eq!(memo.len(), KEYS as usize);
        for k in 0..KEYS {
            let key = k * 37;
            assert_eq!(memo.get(key), Some((key as f64 + 0.5, -(key as f64))));
        }
    }

    #[test]
    fn concurrent_claims_compute_each_key_exactly_once() {
        let map = OnceMap::new();
        let computed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for key in 0u64..200 {
                        match map.claim(key) {
                            Claim::Owned => {
                                computed.fetch_add(1, Ordering::Relaxed);
                                map.publish(key, (key as f64, 0.0));
                            }
                            Claim::Ready(v) => assert_eq!(v.0, key as f64),
                        }
                    }
                });
            }
        });
        assert_eq!(
            computed.load(Ordering::Relaxed),
            200,
            "exactly once per key"
        );
        let mut memo = FlatMemo::new();
        map.drain_into(&mut memo);
        assert_eq!(memo.len(), 200);
        for key in 0u64..200 {
            assert_eq!(memo.get(key), Some((key as f64, 0.0)));
        }
    }
}

//! `noSit` — the conventional-optimizer baseline (§5): base-table
//! statistics only, independence everywhere.
//!
//! Implemented as a thin wrapper that filters a catalog down to its base
//! histograms and runs the ordinary estimator over it. With only base
//! statistics every decomposition evaluates to the same product of
//! per-predicate base estimates, which is exactly what a traditional
//! optimizer computes.

use sqe_engine::{ColRef, Database, Predicate, SpjQuery};

use crate::error::ErrorMode;
use crate::estimator::SelectivityEstimator;
use crate::predset::QueryContext;
use crate::sit::{Sit, SitCatalog};

/// Factory for `noSit` estimators: owns the base-only catalog extracted
/// from a (possibly SIT-rich) source catalog.
#[derive(Debug, Clone)]
pub struct NoSitEstimator {
    catalog: SitCatalog,
}

impl NoSitEstimator {
    /// Extracts the base histograms from `source`.
    pub fn from_catalog(source: &SitCatalog) -> Self {
        let mut catalog = SitCatalog::new();
        for (_, sit) in source.iter() {
            if sit.is_base() {
                catalog.add(sit.clone());
            }
        }
        NoSitEstimator { catalog }
    }

    /// The base-only catalog.
    pub fn catalog(&self) -> &SitCatalog {
        &self.catalog
    }

    /// Creates the per-query estimator.
    pub fn estimator<'a>(&'a self, db: &'a Database, query: &SpjQuery) -> SelectivityEstimator<'a> {
        SelectivityEstimator::new(db, query, &self.catalog, ErrorMode::NInd)
    }
}

/// The base SIT (no conditioning expression) for `attr`, if the catalog
/// holds one.
fn base_sit(catalog: &SitCatalog, attr: ColRef) -> Option<&Sit> {
    catalog
        .for_attr(attr)
        .iter()
        .map(|&id| catalog.get(id))
        .find(|s| s.is_base())
}

/// O(n) independence-only selectivity estimate — the terminal rung of the
/// degradation ladder (see [`crate::ladder`]).
///
/// Unlike [`NoSitEstimator`] — which still runs the full `getSelectivity`
/// DP, just over a base-only catalog — this is a straight product of
/// per-predicate base estimates with **no subset enumeration at all**, so
/// it completes in microseconds regardless of `n` and needs no budget
/// polling. Per-predicate estimates mirror [`crate::gvm`]'s unassigned-slot
/// fallbacks exactly: joins use the base-histogram join selectivity (or
/// `1/max(|L|,|R|)` without histograms), filters use the base-histogram
/// estimate (or the ⅓ magic constant).
pub fn independence_selectivity(db: &Database, catalog: &SitCatalog, query: &SpjQuery) -> f64 {
    let ctx = QueryContext::new(db, query);
    let mut sel = 1.0f64;
    for pred in ctx.predicates() {
        sel *= match *pred {
            Predicate::Join { left, right } => {
                match (base_sit(catalog, left), base_sit(catalog, right)) {
                    (Some(l), Some(r)) => l.histogram.join(&r.histogram).selectivity.max(1e-12),
                    _ => {
                        let nl = db.row_count(left.table).unwrap_or(1).max(1);
                        let nr = db.row_count(right.table).unwrap_or(1).max(1);
                        1.0 / nl.max(nr) as f64
                    }
                }
            }
            Predicate::Filter { col, .. } | Predicate::Range { col, .. } => {
                match base_sit(catalog, col) {
                    Some(sit) => crate::gvm::filter_sel(&sit.histogram, pred),
                    None => 1.0 / 3.0,
                }
            }
        };
    }
    sel.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Predicate, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn filters_to_base_only() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build_base(&db, c(0, 0)).unwrap());
        cat.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        cat.add(Sit::build(&db, c(0, 1), vec![join]).unwrap());
        let nosit = NoSitEstimator::from_catalog(&cat);
        assert_eq!(nosit.catalog().len(), 1);
        assert!(nosit.catalog().iter().all(|(_, s)| s.is_base()));
    }

    #[test]
    fn nosit_assumes_independence() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let filter = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0)] {
            cat.add(Sit::build_base(&db, col).unwrap());
        }
        cat.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        let nosit = NoSitEstimator::from_catalog(&cat);
        let q = SpjQuery::from_predicates(vec![join, filter]).unwrap();
        let mut est = nosit.estimator(&db, &q);
        let sel = est.selectivity();
        // Independence estimate: Sel(join)=8/36 (exact hists: matching
        // value distributions 2·4+2·1+2·1=12 → 12/36) times Sel(a=1)=1/3.
        // The skew-corrected truth is 8/36; noSit must underestimate.
        let truth = 8.0 / 36.0;
        assert!(sel < truth, "noSit {sel} should underestimate {truth}");
    }
}

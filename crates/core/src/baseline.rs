//! `noSit` — the conventional-optimizer baseline (§5): base-table
//! statistics only, independence everywhere.
//!
//! Implemented as a thin wrapper that filters a catalog down to its base
//! histograms and runs the ordinary estimator over it. With only base
//! statistics every decomposition evaluates to the same product of
//! per-predicate base estimates, which is exactly what a traditional
//! optimizer computes.

use sqe_engine::{Database, SpjQuery};

use crate::error::ErrorMode;
use crate::estimator::SelectivityEstimator;
use crate::sit::SitCatalog;

/// Factory for `noSit` estimators: owns the base-only catalog extracted
/// from a (possibly SIT-rich) source catalog.
#[derive(Debug, Clone)]
pub struct NoSitEstimator {
    catalog: SitCatalog,
}

impl NoSitEstimator {
    /// Extracts the base histograms from `source`.
    pub fn from_catalog(source: &SitCatalog) -> Self {
        let mut catalog = SitCatalog::new();
        for (_, sit) in source.iter() {
            if sit.is_base() {
                catalog.add(sit.clone());
            }
        }
        NoSitEstimator { catalog }
    }

    /// The base-only catalog.
    pub fn catalog(&self) -> &SitCatalog {
        &self.catalog
    }

    /// Creates the per-query estimator.
    pub fn estimator<'a>(&'a self, db: &'a Database, query: &SpjQuery) -> SelectivityEstimator<'a> {
        SelectivityEstimator::new(db, query, &self.catalog, ErrorMode::NInd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Predicate, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn filters_to_base_only() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build_base(&db, c(0, 0)).unwrap());
        cat.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        cat.add(Sit::build(&db, c(0, 1), vec![join]).unwrap());
        let nosit = NoSitEstimator::from_catalog(&cat);
        assert_eq!(nosit.catalog().len(), 1);
        assert!(nosit.catalog().iter().all(|(_, s)| s.is_base()));
    }

    #[test]
    fn nosit_assumes_independence() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let filter = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0)] {
            cat.add(Sit::build_base(&db, col).unwrap());
        }
        cat.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        let nosit = NoSitEstimator::from_catalog(&cat);
        let q = SpjQuery::from_predicates(vec![join, filter]).unwrap();
        let mut est = nosit.estimator(&db, &q);
        let sel = est.selectivity();
        // Independence estimate: Sel(join)=8/36 (exact hists: matching
        // value distributions 2·4+2·1+2·1=12 → 12/36) times Sel(a=1)=1/3.
        // The skew-corrected truth is 8/36; noSit must underestimate.
        let truth = 8.0 / 36.0;
        assert!(sel < truth, "noSit {sel} should underestimate {truth}");
    }
}

//! SIT catalog persistence.
//!
//! Real optimizers persist their statistics in the system catalog; this
//! module serializes a [`SitCatalog`] (with every histogram, expression,
//! and stored `diff`) to JSON and back, so pools built by an expensive
//! offline pass can be reused across sessions. The attribute index is
//! rebuilt on load, so files stay a plain list of SITs.

use std::fs;
use std::io;
use std::path::Path;

use crate::sit::SitCatalog;

/// Saves a catalog as pretty-printed JSON.
pub fn save_catalog(catalog: &SitCatalog, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string_pretty(catalog)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads a catalog saved by [`save_catalog`], rebuilding its indexes.
pub fn load_catalog(path: impl AsRef<Path>) -> io::Result<SitCatalog> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{ColRef, Database, Predicate, TableId};

    fn sample_catalog() -> (Database, SitCatalog) {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 3])
                .column("x", vec![10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 20, 20])
                .build()
                .unwrap(),
        );
        let join = Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build_base(&db, ColRef::new(TableId(0), 0)).unwrap());
        cat.add(Sit::build(&db, ColRef::new(TableId(0), 0), vec![join]).unwrap());
        (db, cat)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        let loaded = load_catalog(&path).unwrap();
        assert_eq!(loaded.len(), cat.len());
        for ((_, a), (_, b)) in cat.iter().zip(loaded.iter()) {
            assert_eq!(a.attr, b.attr);
            assert_eq!(a.cond, b.cond);
            assert_eq!(a.diff, b.diff);
            assert_eq!(a.histogram, b.histogram);
        }
        // The rebuilt index answers lookups identically.
        let attr = ColRef::new(TableId(0), 0);
        assert_eq!(loaded.for_attr(attr).len(), cat.for_attr(attr).len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_catalog_estimates_identically() {
        let (db, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        let loaded = load_catalog(&path).unwrap();

        let q = sqe_engine::SpjQuery::from_predicates(vec![
            Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0)),
            Predicate::filter(ColRef::new(TableId(0), 0), sqe_engine::CmpOp::Eq, 1),
        ])
        .unwrap();
        let mut a =
            crate::SelectivityEstimator::new(&db, &q, &cat, crate::ErrorMode::Diff);
        let mut b =
            crate::SelectivityEstimator::new(&db, &q, &loaded, crate::ErrorMode::Diff);
        assert_eq!(a.selectivity(), b.selectivity());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load_catalog("/nonexistent/sqe/catalog.json").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn corrupt_file_reports_data_error() {
        let dir = std::env::temp_dir().join("sqe_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }
}

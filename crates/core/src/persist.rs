//! SIT catalog persistence.
//!
//! Real optimizers persist their statistics in the system catalog; this
//! module serializes a [`SitCatalog`] (with every histogram, expression,
//! and stored `diff`) to JSON and back, so pools built by an expensive
//! offline pass can be reused across sessions. The attribute index is
//! rebuilt on load, so files stay a plain list of SITs.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sit::SitCatalog;

/// Saves a catalog as pretty-printed JSON.
///
/// The write is atomic with respect to readers: the JSON is written to a
/// uniquely named temporary file in the target's directory (same
/// filesystem, so the final step is a true rename) and renamed over `path`
/// only once complete. A crash mid-save leaves any previous catalog at
/// `path` untouched, and a concurrent [`load_catalog`] never observes a
/// half-written file.
pub fn save_catalog(catalog: &SitCatalog, path: impl AsRef<Path>) -> io::Result<()> {
    let tmp = write_temp(catalog, path.as_ref())?;
    // Crash-window failpoint: an injected error here aborts the save
    // between the temp-file write and the rename — the widest window a
    // real crash can hit — deliberately leaving the temporary behind, just
    // like a crash would (the cleanup below only guards rename failures).
    crate::failpoint::fire_err("persist::save")?;
    fs::rename(&tmp, path.as_ref()).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// Serializes `catalog` into a fresh uniquely-named temporary file next to
/// `path` and returns the temporary's location — the first half of
/// [`save_catalog`], ahead of the `persist::save` failpoint the
/// crash-safety tests arm to stop a save exactly between the write and the
/// rename.
fn write_temp(catalog: &SitCatalog, path: &Path) -> io::Result<std::path::PathBuf> {
    static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
    let json = serde_json::to_string_pretty(catalog)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // Unique per process + call, so concurrent saves to the same target
    // never clobber each other's temporaries.
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    fs::write(&tmp, json)?;
    Ok(tmp)
}

/// Temporary files that a crashed [`save_catalog`] targeting `path` may
/// have left behind: `.{name}.tmp.{pid}.{seq}` siblings of `path`. A
/// healthy save leaves none (the temp is renamed away or removed), so
/// anything matching is garbage from an interrupted process and is safe to
/// delete — the rename-last protocol guarantees `path` itself is either
/// the old complete catalog or the new complete catalog, never a partial.
pub fn stale_temp_files(path: impl AsRef<Path>) -> io::Result<Vec<std::path::PathBuf>> {
    let path = path.as_ref();
    let dir = match path.parent().filter(|d| !d.as_os_str().is_empty()) {
        Some(d) => d.to_path_buf(),
        None => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let prefix = format!(".{}.tmp.", file_name.to_string_lossy());
    let mut found = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().starts_with(&prefix) {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

/// Deletes every stale temporary detected by [`stale_temp_files`] and
/// returns how many were removed. Call on startup before the first
/// [`load_catalog`] to reclaim space after a crash.
pub fn clean_stale_temps(path: impl AsRef<Path>) -> io::Result<usize> {
    let stale = stale_temp_files(&path)?;
    let n = stale.len();
    for tmp in stale {
        fs::remove_file(tmp)?;
    }
    Ok(n)
}

/// Loads a catalog saved by [`save_catalog`], rebuilding its indexes.
pub fn load_catalog(path: impl AsRef<Path>) -> io::Result<SitCatalog> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{ColRef, Database, Predicate, TableId};

    fn sample_catalog() -> (Database, SitCatalog) {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 3])
                .column("x", vec![10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 20, 20])
                .build()
                .unwrap(),
        );
        let join = Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0));
        let mut cat = SitCatalog::new();
        cat.add(Sit::build_base(&db, ColRef::new(TableId(0), 0)).unwrap());
        cat.add(Sit::build(&db, ColRef::new(TableId(0), 0), vec![join]).unwrap());
        (db, cat)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let _g = crate::failpoint::test_serial_guard();
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        let loaded = load_catalog(&path).unwrap();
        assert_eq!(loaded.len(), cat.len());
        for ((_, a), (_, b)) in cat.iter().zip(loaded.iter()) {
            assert_eq!(a.attr, b.attr);
            assert_eq!(a.cond, b.cond);
            assert_eq!(a.diff, b.diff);
            assert_eq!(a.histogram, b.histogram);
        }
        // The rebuilt index answers lookups identically.
        let attr = ColRef::new(TableId(0), 0);
        assert_eq!(loaded.for_attr(attr).len(), cat.for_attr(attr).len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loaded_catalog_estimates_identically() {
        let _g = crate::failpoint::test_serial_guard();
        let (db, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        let loaded = load_catalog(&path).unwrap();

        let q = sqe_engine::SpjQuery::from_predicates(vec![
            Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0)),
            Predicate::filter(ColRef::new(TableId(0), 0), sqe_engine::CmpOp::Eq, 1),
        ])
        .unwrap();
        let mut a = crate::SelectivityEstimator::new(&db, &q, &cat, crate::ErrorMode::Diff);
        let mut b = crate::SelectivityEstimator::new(&db, &q, &loaded, crate::ErrorMode::Diff);
        assert_eq!(a.selectivity(), b.selectivity());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_leaves_no_temporaries_and_overwrites_atomically() {
        let _g = crate::failpoint::test_serial_guard();
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        // Overwrite in place: the second save must go through a rename,
        // not truncate-then-write.
        save_catalog(&cat, &path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert!(load_catalog(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_into_current_directory_relative_path_works() {
        let _g = crate::failpoint::test_serial_guard();
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test_rel");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel_catalog.json");
        // Bare-file-name path (no parent component).
        save_catalog(&cat, &path).unwrap();
        assert!(load_catalog(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_write_and_rename_leaves_original_intact() {
        let _g = crate::failpoint::test_serial_guard();
        crate::failpoint::disarm_all();
        let (db, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test_crash");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");

        // A complete catalog is on disk; a later save crashes between the
        // temp-file write and the rename (simulated by arming the shared
        // `persist::save` failpoint, which errors the save out exactly in
        // that window).
        save_catalog(&cat, &path).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        let mut bigger = SitCatalog::new();
        for (_, s) in cat.iter() {
            bigger.add(s.clone());
        }
        bigger.add(Sit::build_base(&db, ColRef::new(TableId(1), 0)).unwrap());
        crate::failpoint::arm("persist::save", crate::failpoint::Action::Error);
        let err = save_catalog(&bigger, &path).unwrap_err();
        crate::failpoint::disarm_all();
        assert!(err.to_string().contains("persist::save"), "{err}");
        let stale_after_crash = stale_temp_files(&path).unwrap();
        let [tmp] = stale_after_crash.as_slice() else {
            panic!("crash leaves exactly one temporary behind: {stale_after_crash:?}");
        };
        let tmp = tmp.clone();
        assert!(tmp.exists(), "crash leaves the temporary behind");

        // The original catalog is byte-for-byte untouched and still loads.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let loaded = load_catalog(&path).unwrap();
        assert_eq!(loaded.len(), cat.len());

        // The orphan is detectable and cleanable; the catalog survives the
        // cleanup.
        let stale = stale_temp_files(&path).unwrap();
        assert_eq!(stale, vec![tmp.clone()]);
        assert_eq!(clean_stale_temps(&path).unwrap(), 1);
        assert!(!tmp.exists());
        assert!(stale_temp_files(&path).unwrap().is_empty());
        assert!(load_catalog(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_any_catalog_exists_is_recoverable() {
        let _g = crate::failpoint::test_serial_guard();
        crate::failpoint::disarm_all();
        // First-ever save crashes: no catalog at `path`, one orphan temp.
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test_crash_first");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        crate::failpoint::arm("persist::save", crate::failpoint::Action::Error);
        assert!(save_catalog(&cat, &path).is_err());
        crate::failpoint::disarm_all();
        assert!(!path.exists(), "no partial catalog ever appears at `path`");
        assert_eq!(stale_temp_files(&path).unwrap().len(), 1);
        assert_eq!(clean_stale_temps(&path).unwrap(), 1);
        // A retried save (failpoint disarmed) then succeeds normally.
        save_catalog(&cat, &path).unwrap();
        assert!(load_catalog(&path).is_ok());
        assert!(stale_temp_files(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_detection_ignores_unrelated_files() {
        let _g = crate::failpoint::test_serial_guard();
        let (_, cat) = sample_catalog();
        let dir = std::env::temp_dir().join("sqe_persist_test_stale_scope");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        save_catalog(&cat, &path).unwrap();
        // Unrelated siblings: another catalog's temp, a plain file, and a
        // name that merely contains ".tmp.".
        std::fs::write(dir.join(".other.json.tmp.1.0"), "x").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::write(dir.join("catalog.json.tmp.backup"), "x").unwrap();
        assert!(stale_temp_files(&path).unwrap().is_empty());
        assert_eq!(clean_stale_temps(&path).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = load_catalog("/nonexistent/sqe/catalog.json").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn corrupt_file_reports_data_error() {
        let dir = std::env::temp_dir().join("sqe_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }
}

//! `GVM` — the greedy view-matching baseline of \[4\] (Bruno & Chaudhuri,
//! SIGMOD 2002), reimplemented for comparison.
//!
//! \[4\] exploits SITs by *rewriting plans through materialized-view
//! matching*: a SIT is applicable when its query expression matches a
//! sub-expression of the plan, and the set of chosen SITs must be
//! realizable inside a single operator tree. We model that realizability as
//! a **laminar** constraint: the chosen SITs' expressions must be pairwise
//! nested or table-disjoint. This reproduces the limitation that motivates
//! the present paper (Figure 1): `SIT(total_price | L ⋈ O)` and
//! `SIT(nation | O ⋈ C)` overlap on `orders` without nesting, so view
//! matching can apply *either* but never *both*.
//!
//! Selection is greedy, as in \[4\]: repeatedly commit the applicable SIT
//! that removes the most independence assumptions (largest expression) and
//! stays compatible with what was committed before. Estimation then peels
//! predicates exactly like `getSelectivity`'s chain, but with the greedily
//! fixed statistics instead of per-decomposition optimal ones.
//!
//! Crucially — and this drives Figure 6 — `GVM` performs its view-matching
//! greedy pass **from scratch for every selectivity request**: it has no
//! cross-sub-plan memoization, while `getSelectivity` shares its memo
//! across all sub-queries of the same query.

use std::collections::HashMap;

use sqe_engine::{Database, Predicate, SpjQuery};

use crate::estimator::EstimatorStats;
use crate::matcher::SitMatcher;
use crate::predset::{PredSet, QueryContext};
use crate::sit::{Sit, SitCatalog, SitId};

/// The greedy view-matching estimator for one query.
pub struct GreedyViewMatching<'a> {
    db: &'a Database,
    ctx: QueryContext,
    matcher: SitMatcher<'a>,
}

impl<'a> GreedyViewMatching<'a> {
    /// Creates a GVM estimator for a query over a SIT catalog.
    pub fn new(db: &'a Database, query: &SpjQuery, catalog: &'a SitCatalog) -> Self {
        GreedyViewMatching {
            db,
            ctx: QueryContext::new(db, query),
            matcher: SitMatcher::new(catalog),
        }
    }

    /// The query context.
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }

    /// Instrumentation (view-matching calls are the interesting part).
    pub fn stats(&self) -> EstimatorStats {
        EstimatorStats {
            vm_calls: self.matcher.calls(),
            ..EstimatorStats::default()
        }
    }

    /// Estimated selectivity of the sub-query `σ_P`. Every call runs the
    /// complete greedy view-matching pass — no memoization, as in \[4\].
    pub fn selectivity(&mut self, p: PredSet) -> f64 {
        if p.is_empty() {
            return 1.0;
        }
        // Separable sets factor exactly (this much any estimator does).
        let comps = self.ctx.standard_decomposition(p);
        if comps.len() > 1 {
            return comps.into_iter().map(|c| self.selectivity(c)).product();
        }

        let assignment = self.greedy_assignment(p);

        // Chain estimate with the committed statistics: joins first, then
        // filters, mirroring the estimator's canonical order.
        let order: Vec<usize> = self
            .ctx
            .joins_in(p)
            .iter()
            .chain(self.ctx.filters_in(p).iter())
            .collect();
        let catalog = self.matcher.catalog();
        let mut sel = 1.0f64;
        for i in order {
            let pred = *self.ctx.predicate(i);
            sel *= match pred {
                Predicate::Join { left, right } => {
                    let hl = assignment.get(&(i, 0)).map(|&id| catalog.get(id));
                    let hr = assignment.get(&(i, 1)).map(|&id| catalog.get(id));
                    match (hl, hr) {
                        (Some(l), Some(r)) => l.histogram.join(&r.histogram).selectivity.max(1e-12),
                        _ => {
                            let nl = self.db.row_count(left.table).unwrap_or(1).max(1);
                            let nr = self.db.row_count(right.table).unwrap_or(1).max(1);
                            1.0 / nl.max(nr) as f64
                        }
                    }
                }
                _ => match assignment.get(&(i, 0)).map(|&id| catalog.get(id)) {
                    Some(sit) => filter_sel(&sit.histogram, &pred),
                    None => 1.0 / 3.0,
                },
            };
        }
        sel.clamp(0.0, 1.0)
    }

    /// Estimated cardinality of `σ_P(tables(P)^×)`.
    pub fn cardinality(&mut self, p: PredSet) -> f64 {
        self.selectivity(p) * self.ctx.cross_product_size(p) as f64
    }

    /// The greedy SIT selection of \[4\]: repeatedly view-match every
    /// still-unassigned predicate side against the catalog, commit the
    /// applicable SIT with the largest expression (removing the most
    /// independence assumptions) that stays laminar-compatible with what
    /// was committed before, and *re-run view matching* — each committed
    /// SIT rewrites the plan, changing what remains applicable. This
    /// iterative re-matching is what makes GVM expensive in view-matching
    /// calls (Figure 6).
    fn greedy_assignment(&mut self, p: PredSet) -> HashMap<(usize, usize), SitId> {
        // Slot list: one per (predicate, side). A SIT whose expression
        // contains the very predicate being estimated is not applicable to
        // it: view matching would place that SIT *above* the predicate in
        // the rewritten plan, never use it to estimate the predicate
        // itself.
        let mut slots: Vec<((usize, usize), sqe_engine::ColRef, Vec<Predicate>)> = Vec::new();
        for i in p.iter() {
            let others = self
                .ctx
                .predicates_of(self.ctx.joins_in(p).minus(PredSet::singleton(i)));
            let pred = self.ctx.predicate(i);
            for (side, col) in pred.columns().iter().enumerate() {
                slots.push(((i, side), col, others.clone()));
            }
        }

        let catalog = self.matcher.catalog();
        let mut committed: Vec<SitId> = Vec::new();
        let mut assignment: HashMap<(usize, usize), SitId> = HashMap::new();
        loop {
            // One greedy round: fresh view matching for every open slot.
            let mut best: Option<(usize, (usize, usize), SitId)> = None;
            for (slot, col, others) in &slots {
                if assignment.contains_key(slot) {
                    continue;
                }
                for id in self.matcher.applicable(*col, others) {
                    let sit = catalog.get(id);
                    if !committed.iter().all(|&c| compatible(sit, catalog.get(c))) {
                        continue;
                    }
                    let score = sit.cond.len();
                    let better = match &best {
                        None => true,
                        Some((s, bslot, bid)) => {
                            score > *s || (score == *s && (*slot, id) < (*bslot, *bid))
                        }
                    };
                    if better {
                        best = Some((score, *slot, id));
                    }
                }
            }
            let Some((_, slot, id)) = best else {
                break;
            };
            committed.push(id);
            assignment.insert(slot, id);
        }
        assignment
    }
}

/// View-matching realizability: two SIT expressions can coexist in one
/// operator tree iff one is contained in the other or they touch disjoint
/// tables. Base histograms (empty expressions) are compatible with
/// everything.
fn compatible(a: &Sit, b: &Sit) -> bool {
    let contains = |big: &Sit, small: &Sit| small.cond.iter().all(|p| big.cond.contains(p));
    if contains(a, b) || contains(b, a) {
        return true;
    }
    let tables = |s: &Sit| -> Vec<_> {
        let mut t: Vec<_> = s.cond.iter().flat_map(|p| p.tables().iter()).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let (ta, tb) = (tables(a), tables(b));
    ta.iter().all(|t| !tb.contains(t))
}

/// Histogram estimate for a filter predicate (shared with the estimator's
/// logic but kept separate so GVM has no dependency on its internals).
/// `pub(crate)` so the independence-only degradation floor in
/// [`crate::baseline`] applies the identical per-filter estimate.
pub(crate) fn filter_sel(h: &sqe_histogram::Histogram, pred: &Predicate) -> f64 {
    use sqe_engine::CmpOp;
    let sel = match *pred {
        Predicate::Range { lo, hi, .. } => h.range_selectivity(lo, hi),
        Predicate::Filter { op, value, .. } => match op {
            CmpOp::Lt => h.cmp_selectivity(value, true, true),
            CmpOp::Le => h.cmp_selectivity(value, true, false),
            CmpOp::Gt => h.cmp_selectivity(value, false, true),
            CmpOp::Ge => h.cmp_selectivity(value, false, false),
            CmpOp::Eq => h.eq_selectivity(value),
            CmpOp::Neq => 1.0 - h.eq_selectivity(value),
        },
        Predicate::Join { .. } => unreachable!("filter_sel on join"),
    };
    sel.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// Three chained skewed tables modelling the Figure 1 situation:
    /// l(order_fk) ⋈ o(id, price, cust_fk) ⋈ cst(id, nation), with price
    /// correlated with l-fan-out and nation skewed.
    fn fig1_db() -> Database {
        let mut db = Database::new();
        // l: 8 rows referencing order 0 six times (order 0 is "big").
        db.add_table(
            TableBuilder::new("l")
                .column("order_fk", vec![0, 0, 0, 0, 0, 0, 1, 2])
                .build()
                .unwrap(),
        );
        // o: order 0 expensive (price 100), others cheap.
        db.add_table(
            TableBuilder::new("o")
                .column("id", vec![0, 1, 2, 3])
                .column("price", vec![100, 10, 10, 10])
                .column("cust_fk", vec![0, 0, 1, 1])
                .build()
                .unwrap(),
        );
        // cst: customer 0 in nation 0 (USA), customer 1 elsewhere.
        db.add_table(
            TableBuilder::new("cst")
                .column("id", vec![0, 1])
                .column("nation", vec![0, 5])
                .build()
                .unwrap(),
        );
        db
    }

    fn preds() -> (Predicate, Predicate, Predicate, Predicate) {
        let j_lo = Predicate::join(c(0, 0), c(1, 0));
        let j_oc = Predicate::join(c(1, 2), c(2, 0));
        let f_price = Predicate::filter(c(1, 1), CmpOp::Ge, 100);
        let f_nation = Predicate::filter(c(2, 1), CmpOp::Eq, 0);
        (j_lo, j_oc, f_price, f_nation)
    }

    fn catalog_with_overlapping_sits(db: &Database) -> SitCatalog {
        let (j_lo, j_oc, _, _) = preds();
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(1, 0), c(1, 1), c(1, 2), c(2, 0), c(2, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
        }
        // The two overlapping SITs of Figure 1.
        cat.add(Sit::build(db, c(1, 1), vec![j_lo]).unwrap());
        cat.add(Sit::build(db, c(2, 1), vec![j_oc]).unwrap());
        cat
    }

    #[test]
    fn laminar_compatibility_rejects_overlap() {
        let db = fig1_db();
        let (j_lo, j_oc, _, _) = preds();
        let a = Sit::build(&db, c(1, 1), vec![j_lo]).unwrap();
        let b = Sit::build(&db, c(2, 1), vec![j_oc]).unwrap();
        // Both touch table `o` but neither nests: incompatible.
        assert!(!compatible(&a, &b));
        // Base histograms are compatible with anything.
        let base = Sit::build_base(&db, c(2, 1)).unwrap();
        assert!(compatible(&a, &base));
        assert!(compatible(&base, &b));
        // Nesting is compatible.
        let big = Sit::build(&db, c(1, 1), vec![j_lo, j_oc]).unwrap();
        assert!(compatible(&a, &big));
    }

    #[test]
    fn gvm_uses_at_most_one_of_the_overlapping_sits() {
        let db = fig1_db();
        let (j_lo, j_oc, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![j_lo, j_oc, f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        let p = gvm.context().all();
        let assignment = gvm.greedy_assignment(p);
        let non_base: Vec<SitId> = assignment
            .values()
            .copied()
            .filter(|&id| !gvm.matcher.catalog().get(id).is_base())
            .collect();
        // Exactly one of the two join SITs can be committed.
        let mut conds: Vec<usize> = non_base
            .iter()
            .map(|&id| gvm.matcher.catalog().get(id).cond.len())
            .collect();
        conds.sort_unstable();
        assert_eq!(conds, vec![1], "only one overlapping SIT may be used");
    }

    #[test]
    fn gvm_estimate_is_a_valid_selectivity() {
        let db = fig1_db();
        let (j_lo, j_oc, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![j_lo, j_oc, f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        let all = gvm.context().all();
        let sel = gvm.selectivity(all);
        assert!((0.0..=1.0).contains(&sel));
        let card = gvm.cardinality(all);
        assert!(card >= 0.0);
    }

    #[test]
    fn gvm_repeats_view_matching_per_request() {
        let db = fig1_db();
        let (j_lo, j_oc, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![j_lo, j_oc, f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        let all = gvm.context().all();
        gvm.selectivity(all);
        let first = gvm.stats().vm_calls;
        assert!(first > 0);
        gvm.selectivity(all);
        assert_eq!(
            gvm.stats().vm_calls,
            2 * first,
            "no memoization across requests — the Figure 6 effect"
        );
    }

    #[test]
    fn single_predicate_estimates_match_base_histograms() {
        let db = fig1_db();
        let (j_lo, j_oc, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![j_lo, j_oc, f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        // Singleton filter subsets: plain base-histogram estimates.
        // f_price is predicate index 2 (after canonical ordering) — find it.
        for i in 0..4 {
            let s = gvm.selectivity(PredSet::singleton(i));
            assert!((0.0..=1.0).contains(&s));
        }
        // nation = 0 selects 1 of 2 customers.
        let nation_idx = q.predicates.iter().position(|p| *p == f_nation).unwrap();
        let s = gvm.selectivity(PredSet::singleton(nation_idx));
        assert!((s - 0.5).abs() < 1e-9, "nation selectivity {s}");
    }

    #[test]
    fn gvm_never_uses_a_sit_containing_its_own_predicate() {
        let db = fig1_db();
        let (j_lo, j_oc, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![j_lo, j_oc, f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        let all = gvm.context().all();
        let assignment = gvm.greedy_assignment(all);
        for (&(pred_idx, _), &sit_id) in &assignment {
            let pred = *gvm.ctx.predicate(pred_idx);
            let sit = gvm.matcher.catalog().get(sit_id);
            assert!(
                !sit.cond.contains(&pred),
                "predicate {pred} estimated by a SIT conditioned on itself"
            );
        }
    }

    #[test]
    fn empty_and_separable_sets_behave() {
        let db = fig1_db();
        let (_, _, f_price, f_nation) = preds();
        let cat = catalog_with_overlapping_sits(&db);
        let q = SpjQuery::from_predicates(vec![f_price, f_nation]).unwrap();
        let mut gvm = GreedyViewMatching::new(&db, &q, &cat);
        assert_eq!(gvm.selectivity(PredSet::EMPTY), 1.0);
        // Two filters on different tables: product of singletons.
        let all = gvm.context().all();
        let s = gvm.selectivity(all);
        let s0 = gvm.selectivity(PredSet::singleton(0));
        let s1 = gvm.selectivity(PredSet::singleton(1));
        assert!((s - s0 * s1).abs() < 1e-12);
    }
}

//! Live catalogs: delta ingest with incremental SIT maintenance.
//!
//! The rest of this workspace builds a [`SitCatalog`] once and estimates
//! against a frozen snapshot. [`LiveCatalog`] closes that gap: it owns a
//! database plus its catalog and consumes [`DeltaBatch`] streams, keeping
//! every SIT *provably close* to the data it summarizes.
//!
//! ## The maintenance ladder
//!
//! Per batch, each SIT falls into one of three regimes (cheapest first):
//!
//! 1. **Incremental merge** — base-table histograms (`cond = ∅`) whose
//!    column changed fold the batch's value flow straight into their
//!    buckets ([`sqe_histogram::merge_delta`]). Mass stays exact; each
//!    merged op perturbs a range estimate by at most one row.
//! 2. **Drift-triggered rebuild** — after a merge, the maintained
//!    histogram is compared against the histogram captured at the last
//!    rebuild with the §3.5 `diff` metric
//!    ([`sqe_histogram::diff_from_histograms`]). Past
//!    [`DeltaConfig::drift_threshold`] the distribution has genuinely
//!    moved and the SIT rebuilds from the live data.
//! 3. **Staleness-bound rebuild** — join SITs (`cond ≠ ∅`) cannot merge
//!    incrementally (their histogram lives over a query expression's
//!    result, which a row delta does not localize), and merged base SITs
//!    accumulate placement error. Both carry a per-SIT op counter; when
//!    `ops_since_refresh / rows_at_refresh` would exceed
//!    [`DeltaConfig::max_staleness`], the SIT rebuilds.
//!
//! The invariant after every [`LiveCatalog::ingest`]: every SIT's
//! staleness is within the declared bound, and SITs over untouched tables
//! are not rebuilt (their [`SitId`]s — and any cache entries keyed by
//! them — stay valid, which is what makes the service's partial installs
//! cheap).
//!
//! Ingest is transactional: the successor database and all rebuilds are
//! computed *before* any state commits, so a panic mid-ingest (the
//! `delta::apply_batch` failpoint sits at the top for exactly this) leaves
//! the catalog at the previous batch boundary, ready to retry.

use sqe_engine::delta::{apply_batch, DeltaBatch};
use sqe_engine::{Database, Result as EngineResult, TableId};
use sqe_histogram::{diff_from_histograms, merge_delta, Histogram};

use crate::failpoint;
use crate::sit::{Sit, SitCatalog, SitId, SitOptions};

/// Maintenance knobs for a [`LiveCatalog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaConfig {
    /// Per-SIT staleness bound: the maximum tolerated
    /// `ops_since_refresh / rows_at_refresh` ratio. Crossing it forces a
    /// rebuild during the ingest that crossed it.
    pub max_staleness: f64,
    /// Rebuild when the maintained histogram's `diff` against its
    /// last-rebuilt self exceeds this (base SITs only — join SITs have no
    /// maintained histogram to compare).
    pub drift_threshold: f64,
    /// Histogram construction options for rebuilds (must match the
    /// options the catalog was originally built with for bit-identical
    /// refreshes).
    pub opts: SitOptions,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            max_staleness: 0.10,
            drift_threshold: 0.05,
            opts: SitOptions::default(),
        }
    }
}

/// Per-SIT maintenance state.
#[derive(Debug, Clone)]
struct SitState {
    /// Row ops affecting this SIT since its last rebuild.
    ops_since_refresh: usize,
    /// Base-expression row count at the last rebuild (staleness
    /// denominator).
    rows_at_refresh: usize,
    /// Last measured drift (`diff` of the maintained histogram vs the
    /// one captured at the last rebuild). Always 0 for join SITs.
    drift: f64,
    /// The histogram as of the last rebuild — the drift baseline.
    baseline: Histogram,
}

/// What one [`LiveCatalog::ingest`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Sequence number of the ingested batch.
    pub batch_seq: u64,
    /// Row ops applied to the database.
    pub ops_applied: usize,
    /// Distinct tables the batch touched, ascending.
    pub tables_touched: Vec<TableId>,
    /// Base SITs maintained by incremental bucket merge.
    pub merges: usize,
    /// SITs rebuilt because merged drift crossed the threshold.
    pub drift_rebuilds: usize,
    /// SITs rebuilt because the staleness bound was crossed.
    pub staleness_rebuilds: usize,
    /// Every SIT rebuilt this ingest (drift + staleness), ascending.
    pub sits_refreshed: Vec<SitId>,
    /// Every SIT maintained by incremental merge this ingest, ascending.
    /// Their ids are stable but their *histograms changed*: any cached
    /// product computed from the old histogram (SIT-pair join
    /// selectivities, `H3` products) is stale, exactly as for
    /// [`sits_refreshed`].
    pub sits_merged: Vec<SitId>,
    /// Affected SITs left in place (merged or deferred within bounds).
    pub sits_deferred: usize,
}

impl IngestReport {
    /// Total SITs rebuilt this ingest.
    pub fn rebuilds(&self) -> usize {
        self.sits_refreshed.len()
    }
}

/// A database plus its SIT catalog, kept current under a mutation stream.
#[derive(Debug, Clone)]
pub struct LiveCatalog {
    db: Database,
    catalog: SitCatalog,
    config: DeltaConfig,
    states: Vec<SitState>,
    batches_ingested: u64,
    ops_ingested: u64,
}

impl LiveCatalog {
    /// Wraps a database and a catalog *built from that database* for live
    /// maintenance. Every SIT starts fresh (zero staleness, zero drift).
    pub fn new(db: Database, catalog: SitCatalog, config: DeltaConfig) -> Self {
        let states = catalog
            .iter()
            .map(|(_, sit)| SitState {
                ops_since_refresh: 0,
                rows_at_refresh: expr_rows(&db, sit),
                drift: 0.0,
                baseline: sit.histogram.clone(),
            })
            .collect();
        LiveCatalog {
            db,
            catalog,
            config,
            states,
            batches_ingested: 0,
            ops_ingested: 0,
        }
    }

    /// The current database state.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The maintained catalog.
    pub fn catalog(&self) -> &SitCatalog {
        &self.catalog
    }

    /// The maintenance configuration.
    pub fn config(&self) -> &DeltaConfig {
        &self.config
    }

    /// Batches ingested so far.
    pub fn batches_ingested(&self) -> u64 {
        self.batches_ingested
    }

    /// Row ops ingested so far.
    pub fn ops_ingested(&self) -> u64 {
        self.ops_ingested
    }

    /// One SIT's staleness: affected ops since its last rebuild over the
    /// rows its expression had then. 0 for a freshly (re)built SIT.
    pub fn staleness(&self, id: SitId) -> f64 {
        let s = &self.states[id.0 as usize];
        s.ops_since_refresh as f64 / s.rows_at_refresh.max(1) as f64
    }

    /// One SIT's last measured drift (base SITs only; 0 otherwise).
    pub fn drift(&self, id: SitId) -> f64 {
        self.states[id.0 as usize].drift
    }

    /// The largest staleness across the catalog — the number the ingest
    /// soak asserts stays bounded.
    pub fn max_staleness_observed(&self) -> f64 {
        (0..self.states.len())
            .map(|i| self.staleness(SitId(i as u32)))
            .fold(0.0, f64::max)
    }

    /// Ingests one batch: applies it to the database and walks the
    /// maintenance ladder for every affected SIT. On error (malformed
    /// batch) the catalog is untouched.
    pub fn ingest(&mut self, batch: &DeltaBatch) -> EngineResult<IngestReport> {
        failpoint::fire("delta::apply_batch");
        let (next_db, log) = apply_batch(&self.db, batch)?;
        let touched = log.tables_touched();

        let mut report = IngestReport {
            batch_seq: batch.seq,
            ops_applied: log.ops_applied(),
            tables_touched: touched.clone(),
            ..IngestReport::default()
        };

        // Stage every catalog change; commit only when the whole batch
        // resolved (rebuilds can fail on a malformed catalog/db pair).
        let mut replacements: Vec<(SitId, Sit, SitState)> = Vec::new();
        for (id, sit) in self.catalog.iter() {
            let affected = sit_tables(sit).any(|t| touched.contains(&t));
            if !affected {
                continue;
            }
            let state = &self.states[id.0 as usize];
            let weight = affected_ops(&log, sit);
            if weight == 0 {
                // The table was touched but this SIT's columns and
                // expression inputs saw no value flow (e.g. an update to
                // an unrelated column of the same table, logged only for
                // that column). Base SITs are then exactly current; join
                // SITs may still shift, so weight counts table-level ops
                // for them (see `affected_ops`).
                continue;
            }

            let ops_after = state.ops_since_refresh + weight;
            let stale = ops_after as f64 / state.rows_at_refresh.max(1) as f64;

            if sit.is_base() {
                // Regime 1: fold the value flow into the buckets, then
                // check drift (regime 2) and staleness (regime 3).
                let changes = log.for_column(sit.attr);
                let merged = match changes {
                    Some(ch) => merge_delta(
                        &sit.histogram,
                        &ch.inserted,
                        &ch.deleted,
                        ch.null_delta,
                        self.config.opts.buckets,
                    ),
                    None => sit.histogram.clone(),
                };
                let drift = diff_from_histograms(&state.baseline, &merged);
                if drift > self.config.drift_threshold || stale > self.config.max_staleness {
                    let fresh = Sit::build_base_with(&next_db, sit.attr, self.config.opts)?;
                    let state = SitState {
                        ops_since_refresh: 0,
                        rows_at_refresh: expr_rows(&next_db, &fresh),
                        drift: 0.0,
                        baseline: fresh.histogram.clone(),
                    };
                    if drift > self.config.drift_threshold {
                        report.drift_rebuilds += 1;
                    } else {
                        report.staleness_rebuilds += 1;
                    }
                    replacements.push((id, fresh, state));
                } else {
                    report.merges += 1;
                    report.sits_deferred += 1;
                    report.sits_merged.push(id);
                    let merged_sit = Sit {
                        attr: sit.attr,
                        cond: Vec::new(),
                        histogram: merged,
                        diff: 0.0,
                    };
                    let mut next_state = state.clone();
                    next_state.ops_since_refresh = ops_after;
                    next_state.drift = drift;
                    replacements.push((id, merged_sit, next_state));
                }
            } else if stale > self.config.max_staleness {
                // Regime 3 for join SITs: refresh the expression.
                let fresh =
                    Sit::build_with(&next_db, sit.attr, sit.cond.clone(), self.config.opts)?;
                let state = SitState {
                    ops_since_refresh: 0,
                    rows_at_refresh: expr_rows(&next_db, &fresh),
                    drift: 0.0,
                    baseline: fresh.histogram.clone(),
                };
                report.staleness_rebuilds += 1;
                replacements.push((id, fresh, state));
            } else {
                // Within bounds: defer, but remember the debt.
                report.sits_deferred += 1;
                let mut next_state = state.clone();
                next_state.ops_since_refresh = ops_after;
                replacements.push((id, sit.clone(), next_state));
            }
        }

        // Commit.
        self.db = next_db;
        for (id, sit, state) in replacements {
            let rebuilt = state.ops_since_refresh == 0;
            let replaced = self.catalog.replace(id, sit);
            debug_assert!(replaced, "replace preserves attr, id stays valid");
            self.states[id.0 as usize] = state;
            if rebuilt {
                report.sits_refreshed.push(id);
            }
        }
        report.sits_refreshed.sort_unstable();
        report.sits_merged.sort_unstable();
        self.batches_ingested += 1;
        self.ops_ingested += report.ops_applied as u64;
        debug_assert!(
            self.max_staleness_observed() <= self.config.max_staleness + f64::EPSILON,
            "staleness bound violated after ingest"
        );
        Ok(report)
    }

    /// Rebuilds every SIT with outstanding maintenance debt from the
    /// current database. Afterwards the catalog is bit-identical to one
    /// built cold from this database with the same options.
    pub fn refresh_all(&mut self) -> EngineResult<Vec<SitId>> {
        let stale: Vec<SitId> = self
            .catalog
            .iter()
            .filter(|(id, _)| self.states[id.0 as usize].ops_since_refresh > 0)
            .map(|(id, _)| id)
            .collect();
        for &id in &stale {
            let sit = self.catalog.get(id);
            let fresh = Sit::build_with(&self.db, sit.attr, sit.cond.clone(), self.config.opts)?;
            let state = SitState {
                ops_since_refresh: 0,
                rows_at_refresh: expr_rows(&self.db, &fresh),
                drift: 0.0,
                baseline: fresh.histogram.clone(),
            };
            self.catalog.replace(id, fresh);
            self.states[id.0 as usize] = state;
        }
        Ok(stale)
    }
}

/// The tables a SIT's expression reads: `tables(cond) ∪ {attr.table}`.
fn sit_tables(sit: &Sit) -> impl Iterator<Item = TableId> + '_ {
    std::iter::once(sit.attr.table).chain(sit.cond.iter().flat_map(|p| p.tables().iter()))
}

/// How many of the batch's row ops affect this SIT.
///
/// Base SITs count only their own column's value flow (an update to a
/// sibling column cannot move their histogram). Join SITs count every
/// *row op* against any table their expression reads — conservative,
/// since any of them can change the expression's result, but counted per
/// row, not per column-value movement (an insert into an 8-column fact
/// table is one op of churn, not eight — per-column weights would inflate
/// staleness by the table arity and force rebuilds arity times too
/// often).
fn affected_ops(log: &sqe_engine::DeltaLog, sit: &Sit) -> usize {
    if sit.is_base() {
        log.for_column(sit.attr).map_or(0, |ch| ch.op_weight())
    } else {
        let tables: Vec<TableId> = {
            let mut t: Vec<TableId> = sit_tables(sit).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        tables.iter().map(|&t| log.ops_for_table(t)).sum()
    }
}

/// Row count of the SIT's base expression — the staleness denominator.
/// For base SITs the table's rows; for join SITs the attr table's rows
/// (the expression result size would need an execution to know; the attr
/// table bounds how fast its distribution can move).
fn expr_rows(db: &Database, sit: &Sit) -> usize {
    db.row_count(sit.attr.table).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{build_pool, PoolSpec};
    use sqe_engine::delta::{RowOp, TableDelta};
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, Predicate, SpjQuery};

    fn small_db() -> Database {
        let mut db = Database::new();
        let a: Vec<i64> = (0..60).map(|r| (r % 6) as i64).collect();
        let b: Vec<i64> = (0..60).map(|r| (r % 10) as i64).collect();
        db.add_table(
            TableBuilder::new("r")
                .column("a", a.clone())
                .column("b", b.clone())
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("a", a)
                .column("c", b)
                .build()
                .unwrap(),
        );
        db
    }

    fn small_catalog(db: &Database) -> SitCatalog {
        let queries = vec![SpjQuery::from_predicates(vec![
            Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0)),
            Predicate::filter(ColRef::new(TableId(0), 1), CmpOp::Eq, 3),
            Predicate::filter(ColRef::new(TableId(1), 1), CmpOp::Eq, 4),
        ])
        .unwrap()];
        build_pool(db, &queries, PoolSpec::ji(1)).expect("pool")
    }

    fn insert_r(values: Vec<Option<i64>>) -> DeltaBatch {
        DeltaBatch {
            seq: 0,
            deltas: vec![TableDelta {
                table: TableId(0),
                ops: vec![RowOp::Insert { values }],
            }],
        }
    }

    #[test]
    fn untouched_tables_leave_sits_alone() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(db, catalog, DeltaConfig::default());
        let before: Vec<(SitId, Histogram)> = live
            .catalog()
            .iter()
            .map(|(id, s)| (id, s.histogram.clone()))
            .collect();
        let report = live.ingest(&insert_r(vec![Some(2), Some(5)])).unwrap();
        assert_eq!(report.tables_touched, vec![TableId(0)]);
        for (id, hist) in before {
            let sit = live.catalog().get(id);
            if sit_tables(sit).any(|t| t == TableId(0)) {
                continue;
            }
            assert_eq!(sit.histogram, hist, "SIT over untouched table changed");
            assert_eq!(live.staleness(id), 0.0);
        }
    }

    #[test]
    fn small_batches_merge_without_rebuilds() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(db, catalog, DeltaConfig::default());
        // One insert into a 60-row table: ~1.7% staleness, no drift.
        let report = live.ingest(&insert_r(vec![Some(2), Some(5)])).unwrap();
        assert!(report.merges > 0, "base SITs over r must merge");
        assert_eq!(report.rebuilds(), 0);
        assert!(live.max_staleness_observed() <= 0.10);
        // The merged histogram saw the new value.
        let (id, _) = live
            .catalog()
            .iter()
            .find(|(_, s)| s.is_base() && s.attr == ColRef::new(TableId(0), 0))
            .expect("base SIT on r.a");
        let h = &live.catalog().get(id).histogram;
        assert_eq!(h.total_rows(), 61.0);
    }

    #[test]
    fn staleness_bound_forces_rebuilds() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(
            db,
            catalog,
            DeltaConfig {
                max_staleness: 0.05,
                drift_threshold: 10.0, // unreachable: isolate the staleness path
                ..DeltaConfig::default()
            },
        );
        // 10 ops against 60 rows: 16% > 5% bound somewhere along the way.
        let mut rebuilds = 0;
        for i in 0..10 {
            let r = live
                .ingest(&insert_r(vec![Some(i % 6), Some(i % 10)]))
                .unwrap();
            rebuilds += r.rebuilds();
            assert!(
                live.max_staleness_observed() <= 0.05 + f64::EPSILON,
                "bound must hold after every ingest"
            );
        }
        assert!(rebuilds > 0, "staleness bound must have fired");
    }

    #[test]
    fn heavy_drift_triggers_drift_rebuild() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(
            db,
            catalog,
            DeltaConfig {
                max_staleness: 100.0, // unreachable: isolate the drift path
                drift_threshold: 0.10,
                ..DeltaConfig::default()
            },
        );
        // Pour a brand-new modal value into r.a: the distribution moves.
        let mut drift_rebuilds = 0;
        for _ in 0..40 {
            let r = live.ingest(&insert_r(vec![Some(500), Some(5)])).unwrap();
            drift_rebuilds += r.drift_rebuilds;
        }
        assert!(drift_rebuilds > 0, "drift threshold must have fired");
    }

    #[test]
    fn refresh_all_converges_to_cold_build() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(db.clone(), catalog, DeltaConfig::default());
        for i in 0..8 {
            live.ingest(&insert_r(vec![Some(i % 6), Some((i * 3) % 10)]))
                .unwrap();
        }
        live.refresh_all().unwrap();
        assert_eq!(live.max_staleness_observed(), 0.0);

        // Cold build from the final database state, same spec.
        let cold = small_catalog(live.db());
        assert_eq!(live.catalog().len(), cold.len());
        for ((id, warm), (_, cold)) in live.catalog().iter().zip(cold.iter()) {
            assert_eq!(warm.attr, cold.attr, "{id:?}");
            assert_eq!(warm.cond, cold.cond, "{id:?}");
            assert_eq!(warm.histogram, cold.histogram, "{id:?}");
            assert_eq!(warm.diff.to_bits(), cold.diff.to_bits(), "{id:?}");
        }
    }

    #[test]
    fn malformed_batch_leaves_catalog_untouched() {
        let db = small_db();
        let catalog = small_catalog(&db);
        let mut live = LiveCatalog::new(db, catalog, DeltaConfig::default());
        let bad = DeltaBatch {
            seq: 9,
            deltas: vec![TableDelta {
                table: TableId(0),
                ops: vec![RowOp::Delete { row: 10_000 }],
            }],
        };
        assert!(live.ingest(&bad).is_err());
        assert_eq!(live.batches_ingested(), 0);
        assert_eq!(live.db().row_count(TableId(0)).unwrap(), 60);
        assert_eq!(live.max_staleness_observed(), 0.0);
    }
}

//! # sqe-core — conditional selectivity and statistics on query expressions
//!
//! The primary contribution of Bruno & Chaudhuri, *"Conditional Selectivity
//! for Statistics on Query Expressions"* (SIGMOD 2004), implemented as a
//! reusable library:
//!
//! * [`predset`] — predicate subsets of a query as bitsets, with the
//!   separability test (Definition 2) and the unique *standard
//!   decomposition* into non-separable factors (Lemma 2);
//! * [`decomposition`] — the decomposition-count recurrence `T(n)` and the
//!   bounds of Lemma 1, plus an exhaustive enumerator used to validate the
//!   dynamic program on small inputs;
//! * [`sit`] — SITs (statistics on query expressions): a histogram over an
//!   attribute of the result of a join query expression, together with the
//!   §3.5 `diff` value, and the [`sit::SitCatalog`];
//! * [`pool`] — the `J_i` SIT pools of §5 (all SITs whose expression has at
//!   most `i` join predicates syntactically present in a workload);
//! * [`matcher`] — candidate-SIT identification for a conditional factor
//!   (§3.3), instrumented with the view-matching call counter used by
//!   Figure 6;
//! * [`error`] — the error functions: `nInd` (§3.2), `Diff` (§3.5), and the
//!   oracle `Opt` (§5);
//! * [`estimator`] — the [`estimator::SelectivityEstimator`] implementing
//!   algorithm `getSelectivity` (Figure 3): a memoized dynamic program over
//!   predicate subsets returning the most accurate decomposition, run on a
//!   dense flat-table subset-lattice engine (or a recursive fallback for
//!   large queries — see [`estimator::DpStrategy`]);
//! * [`flat`] — the flat memo tables behind the DP engine: a dense
//!   mask-indexed value table and an open-addressed `u64`-keyed table;
//! * [`cache`] — canonical cache keys and the cross-query shared-cache
//!   interface consumed by the `sqe-service` estimation service;
//! * [`delta`] — live catalogs: batched delta ingest with incremental
//!   histogram maintenance, drift-triggered rebuilds, and per-SIT
//!   staleness bounds;
//! * [`gvm`] — the greedy view-matching baseline of \[4\] (SIGMOD 2002),
//!   including its laminar compatibility restriction that prevents it from
//!   combining overlapping SITs (the limitation that motivates this paper);
//! * [`baseline`] — the `noSit` estimator (base-table statistics only,
//!   mirroring a conventional optimizer).

pub mod backend;
pub mod baseline;
pub mod beam;
pub mod bn;
pub mod budget;
pub mod cache;
pub mod decomposition;
pub mod delta;
pub mod error;
pub mod estimator;
pub mod failpoint;
pub mod feedback;
pub mod flat;
pub mod groupby;
pub mod gvm;
pub mod ladder;
mod link;
pub mod matcher;
pub mod metrics;
mod par;
pub mod persist;
pub mod pessimistic;
pub mod pool;
pub mod predset;
pub mod sit;
pub mod sit2;
mod steal;

pub use backend::{BackendKind, DiffBackend, PeelQuery, SelectivityBackend};
pub use baseline::NoSitEstimator;
pub use beam::{BeamConfig, BeamStats};
pub use bn::{BnBackend, BnCatalog};
pub use budget::{Budget, BudgetMeter, CancelToken, DegradeReason, ExhaustReason, Quality};
pub use cache::{CacheKey, SharedEstimatorCache};
pub use decomposition::{count_decompositions, decomposition_bounds, ComponentTable};
pub use delta::{DeltaConfig, IngestReport, LiveCatalog};
pub use error::ErrorMode;
pub use estimator::{
    DpStrategy, EstimatorStats, FillSchedule, SelectivityEstimator, WS_MIN_LATTICE_MASKS,
};
pub use feedback::{FeedbackStore, Observation};
pub use flat::{DenseMemo, FlatMemo, PeelMemo};
pub use groupby::{cardenas, true_group_count};
pub use gvm::GreedyViewMatching;
pub use ladder::{BudgetedEstimate, Ladder};
pub use metrics::{MetricsSink, NullSink};
pub use persist::{clean_stale_temps, load_catalog, save_catalog, stale_temp_files};
pub use pessimistic::{BoundSketch, PessimisticBackend};
pub use pool::{build_pool, build_pool_threaded, build_pool_with, PoolSpec};
pub use predset::{PredSet, QueryContext};
pub use sit::{Sit, SitCatalog, SitId, SitOptions};
pub use sit2::{build_pool2, Sit2, Sit2Catalog, Sit2Id};
pub use steal::FillStats;

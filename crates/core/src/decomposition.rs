//! Decomposition counting and exhaustive enumeration (§2, Lemma 1).
//!
//! The number of decompositions of `Sel(p1,…,pn)` follows the recurrence
//!
//! ```text
//! T(1) = 1,   T(n) = Σ_{i=1..n} C(n, i) · T(n − i)     (T(0) = 1)
//! ```
//!
//! (choose the first factor's predicate set `P1` with `|P1| = i`, then
//! decompose the remaining conditioning set recursively). Lemma 1 sandwiches
//! `T(n)` between `0.5·(n+1)!` and `1.5ⁿ·n!`, which motivates the dynamic
//! program: exploring all decompositions is factorially expensive while
//! `getSelectivity` is `O(3ⁿ)`.
//!
//! The exhaustive enumerator is used by tests to validate that the dynamic
//! program finds the true optimum on small inputs.

use crate::predset::PredSet;

/// `T(n)`: the number of decompositions of a selectivity value over `n`
/// predicates, computed exactly (saturating at `u128::MAX`).
pub fn count_decompositions(n: usize) -> u128 {
    let mut t = vec![0u128; n + 1];
    t[0] = 1;
    if n == 0 {
        return 1;
    }
    // Pascal triangle for the binomials.
    let mut binom = vec![vec![0u128; n + 1]; n + 1];
    binom[0][0] = 1;
    for i in 1..=n {
        binom[i][0] = 1;
        for j in 1..=i {
            binom[i][j] = binom[i - 1][j - 1].saturating_add(binom[i - 1][j]);
        }
    }
    for m in 1..=n {
        let mut acc: u128 = 0;
        for i in 1..=m {
            acc = acc.saturating_add(binom[m][i].saturating_mul(t[m - i]));
        }
        t[m] = acc;
    }
    t[n]
}

/// The Lemma 1 bounds `(0.5·(n+1)!, 1.5ⁿ·n!)` for `T(n)`, saturating.
pub fn decomposition_bounds(n: usize) -> (u128, u128) {
    let mut fact: u128 = 1;
    for k in 2..=n as u128 {
        fact = fact.saturating_mul(k);
    }
    let fact_n1 = fact.saturating_mul(n as u128 + 1);
    let lower = fact_n1 / 2;
    // 1.5ⁿ·n! = 3ⁿ·n!/2ⁿ — compute in f64 then saturate for big n.
    let upper_f = 1.5f64.powi(n as i32) * (fact as f64);
    let upper = if upper_f >= u128::MAX as f64 {
        u128::MAX
    } else {
        upper_f.ceil() as u128
    };
    (lower, upper)
}

/// One decomposition: the ordered chain of peeled predicate sets. Factor `k`
/// of the chain is `Sel(chain[k] | chain[k+1] ∪ … ∪ chain.last())`; the last
/// factor is unconditioned.
pub type Chain = Vec<PredSet>;

/// Exhaustively enumerates every decomposition of `set` (every ordered
/// partition of the predicate set). Exponential — tests only.
pub fn enumerate_decompositions(set: PredSet) -> Vec<Chain> {
    if set.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for first in set.subsets() {
        let rest = set.minus(first);
        for mut tail in enumerate_decompositions(rest) {
            let mut chain = Vec::with_capacity(tail.len() + 1);
            chain.push(first);
            chain.append(&mut tail);
            out.push(chain);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_matches_known_small_values() {
        // T(1)=1; T(2)= C(2,1)·T(1)+C(2,2)·T(0)=3; T(3)=C(3,1)·3+C(3,2)·1+C(3,3)·1=13
        assert_eq!(count_decompositions(0), 1);
        assert_eq!(count_decompositions(1), 1);
        assert_eq!(count_decompositions(2), 3);
        assert_eq!(count_decompositions(3), 13);
        assert_eq!(count_decompositions(4), 75);
        assert_eq!(count_decompositions(5), 541); // ordered Bell numbers
    }

    #[test]
    fn enumeration_count_matches_recurrence() {
        for n in 1..=6 {
            let chains = enumerate_decompositions(PredSet::full(n));
            assert_eq!(chains.len() as u128, count_decompositions(n), "n={n}");
        }
    }

    #[test]
    fn chains_are_ordered_partitions() {
        let set = PredSet::full(3);
        for chain in enumerate_decompositions(set) {
            let mut union = PredSet::EMPTY;
            for part in &chain {
                assert!(!part.is_empty());
                assert!(union.intersect(*part).is_empty(), "parts overlap");
                union = union.union(*part);
            }
            assert_eq!(union, set);
        }
    }

    #[test]
    fn lemma1_bounds_hold() {
        for n in 1..=12 {
            let t = count_decompositions(n);
            let (lo, hi) = decomposition_bounds(n);
            assert!(lo <= t, "n={n}: lower bound {lo} > T={t}");
            assert!(t <= hi, "n={n}: T={t} > upper bound {hi}");
        }
    }

    #[test]
    fn growth_dwarfs_3_to_the_n() {
        // The DP explores O(3ⁿ) states; the decomposition space grows like
        // (n+1)!/2 — superexponentially larger.
        for n in 6..=12u32 {
            let t = count_decompositions(n as usize);
            let dp = 3u128.pow(n);
            assert!(t > dp, "n={n}: T(n)={t} should exceed 3^n={dp}");
        }
    }

    #[test]
    fn empty_set_has_single_empty_decomposition() {
        let chains = enumerate_decompositions(PredSet::EMPTY);
        assert_eq!(chains, vec![Vec::<PredSet>::new()]);
    }
}

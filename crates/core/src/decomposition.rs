//! Decomposition counting and exhaustive enumeration (§2, Lemma 1).
//!
//! The number of decompositions of `Sel(p1,…,pn)` follows the recurrence
//!
//! ```text
//! T(1) = 1,   T(n) = Σ_{i=1..n} C(n, i) · T(n − i)     (T(0) = 1)
//! ```
//!
//! (choose the first factor's predicate set `P1` with `|P1| = i`, then
//! decompose the remaining conditioning set recursively). Lemma 1 sandwiches
//! `T(n)` between `0.5·(n+1)!` and `1.5ⁿ·n!`, which motivates the dynamic
//! program: exploring all decompositions is factorially expensive while
//! `getSelectivity` is `O(3ⁿ)`.
//!
//! The exhaustive enumerator is used by tests to validate that the dynamic
//! program finds the true optimum on small inputs.
//!
//! [`ComponentTable`] is the dense DP engine's companion table: it memoizes
//! the first standard-decomposition factor of every visited mask so that
//! separability tests and decompositions inside the subset-lattice loop are
//! a single indexed load instead of a fresh graph traversal.

use crate::predset::{PredSet, QueryContext};

/// `T(n)`: the number of decompositions of a selectivity value over `n`
/// predicates, computed exactly (saturating at `u128::MAX`).
pub fn count_decompositions(n: usize) -> u128 {
    let mut t = vec![0u128; n + 1];
    t[0] = 1;
    if n == 0 {
        return 1;
    }
    // Pascal triangle for the binomials.
    let mut binom = vec![vec![0u128; n + 1]; n + 1];
    binom[0][0] = 1;
    for i in 1..=n {
        binom[i][0] = 1;
        for j in 1..=i {
            binom[i][j] = binom[i - 1][j - 1].saturating_add(binom[i - 1][j]);
        }
    }
    for m in 1..=n {
        let mut acc: u128 = 0;
        for i in 1..=m {
            acc = acc.saturating_add(binom[m][i].saturating_mul(t[m - i]));
        }
        t[m] = acc;
    }
    t[n]
}

/// The Lemma 1 bounds `(0.5·(n+1)!, 1.5ⁿ·n!)` for `T(n)`, saturating.
pub fn decomposition_bounds(n: usize) -> (u128, u128) {
    let mut fact: u128 = 1;
    for k in 2..=n as u128 {
        fact = fact.saturating_mul(k);
    }
    let fact_n1 = fact.saturating_mul(n as u128 + 1);
    let lower = fact_n1 / 2;
    // 1.5ⁿ·n! = 3ⁿ·n!/2ⁿ — compute in f64 then saturate for big n.
    let upper_f = 1.5f64.powi(n as i32) * (fact as f64);
    let upper = if upper_f >= u128::MAX as f64 {
        u128::MAX
    } else {
        upper_f.ceil() as u128
    };
    (lower, upper)
}

/// One decomposition: the ordered chain of peeled predicate sets. Factor `k`
/// of the chain is `Sel(chain[k] | chain[k+1] ∪ … ∪ chain.last())`; the last
/// factor is unconditioned.
pub type Chain = Vec<PredSet>;

/// Exhaustively enumerates every decomposition of `set` (every ordered
/// partition of the predicate set). Exponential — tests only.
pub fn enumerate_decompositions(set: PredSet) -> Vec<Chain> {
    if set.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for first in set.subsets() {
        let rest = set.minus(first);
        for mut tail in enumerate_decompositions(rest) {
            let mut chain = Vec::with_capacity(tail.len() + 1);
            chain.push(first);
            chain.append(&mut tail);
            out.push(chain);
        }
    }
    out
}

/// Per-mask memoized standard decompositions for the dense DP engine.
///
/// For every predicate-set mask `m`, `first_comp[m]` caches the connected
/// component of `m`'s lowest predicate index within the connectivity graph
/// restricted to `m` — the first factor of `m`'s standard decomposition
/// (Lemma 2). The full ordered decomposition is recovered by chaining:
/// `C₁ = first_comp[m]`, `C₂ = first_comp[m ∖ C₁]`, … This makes the two
/// queries the subset-lattice loop issues constantly — "is `m` separable?"
/// and "what are `m`'s factors?" — indexed loads instead of graph walks.
///
/// Entries are computed on demand (sentinel `0` = unset; valid entries are
/// never `0` because a non-empty mask's first component contains its lowest
/// bit) via the incremental rule: with `i` the lowest bit of `m`, the
/// component of `i` is `{i}` unioned with every component of `m ∖ {i}` that
/// touches `adjacent(i)` — components merge through `i` only.
#[derive(Debug, Clone)]
pub struct ComponentTable {
    first_comp: Vec<u32>,
}

impl ComponentTable {
    /// A table covering all `2ⁿ` subset masks of an `n`-predicate query.
    pub fn new(n: usize) -> Self {
        ComponentTable {
            first_comp: vec![0u32; 1usize << n],
        }
    }

    /// The first standard-decomposition factor of `set`, memoized. The
    /// empty set yields itself.
    pub fn ensure(&mut self, ctx: &QueryContext, set: PredSet) -> PredSet {
        let m = set.0;
        if m == 0 {
            return PredSet::EMPTY;
        }
        let cached = self.first_comp[m as usize];
        if cached != 0 {
            return PredSet(cached);
        }
        let i = m.trailing_zeros() as usize;
        let adj = ctx.adjacent(i).0;
        let mut comp = 1u32 << i;
        // Chain the components of m ∖ {i}; those adjacent to i merge in.
        let mut rest = m & (m - 1);
        while rest != 0 {
            let c = self.ensure(ctx, PredSet(rest)).0;
            if c & adj != 0 {
                comp |= c;
            }
            rest &= !c;
        }
        self.first_comp[m as usize] = comp;
        PredSet(comp)
    }

    /// True when `set` splits into ≥ 2 factors (Definition 2). Memoizes as
    /// a side effect.
    pub fn is_separable(&mut self, ctx: &QueryContext, set: PredSet) -> bool {
        !set.is_empty() && self.ensure(ctx, set) != set
    }

    /// The already-memoized first factor of `set`, without computing.
    /// Returns `None` for unvisited masks (and the empty set's factor as
    /// `Some(EMPTY)` — it is always "known").
    pub fn get(&self, set: PredSet) -> Option<PredSet> {
        if set.is_empty() {
            return Some(PredSet::EMPTY);
        }
        let cached = self.first_comp[set.0 as usize];
        if cached != 0 {
            Some(PredSet(cached))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_matches_known_small_values() {
        // T(1)=1; T(2)= C(2,1)·T(1)+C(2,2)·T(0)=3; T(3)=C(3,1)·3+C(3,2)·1+C(3,3)·1=13
        assert_eq!(count_decompositions(0), 1);
        assert_eq!(count_decompositions(1), 1);
        assert_eq!(count_decompositions(2), 3);
        assert_eq!(count_decompositions(3), 13);
        assert_eq!(count_decompositions(4), 75);
        assert_eq!(count_decompositions(5), 541); // ordered Bell numbers
    }

    #[test]
    fn enumeration_count_matches_recurrence() {
        for n in 1..=6 {
            let chains = enumerate_decompositions(PredSet::full(n));
            assert_eq!(chains.len() as u128, count_decompositions(n), "n={n}");
        }
    }

    #[test]
    fn chains_are_ordered_partitions() {
        let set = PredSet::full(3);
        for chain in enumerate_decompositions(set) {
            let mut union = PredSet::EMPTY;
            for part in &chain {
                assert!(!part.is_empty());
                assert!(union.intersect(*part).is_empty(), "parts overlap");
                union = union.union(*part);
            }
            assert_eq!(union, set);
        }
    }

    #[test]
    fn lemma1_bounds_hold() {
        for n in 1..=12 {
            let t = count_decompositions(n);
            let (lo, hi) = decomposition_bounds(n);
            assert!(lo <= t, "n={n}: lower bound {lo} > T={t}");
            assert!(t <= hi, "n={n}: T={t} > upper bound {hi}");
        }
    }

    #[test]
    fn growth_dwarfs_3_to_the_n() {
        // The DP explores O(3ⁿ) states; the decomposition space grows like
        // (n+1)!/2 — superexponentially larger.
        for n in 6..=12u32 {
            let t = count_decompositions(n as usize);
            let dp = 3u128.pow(n);
            assert!(t > dp, "n={n}: T(n)={t} should exceed 3^n={dp}");
        }
    }

    #[test]
    fn empty_set_has_single_empty_decomposition() {
        let chains = enumerate_decompositions(PredSet::EMPTY);
        assert_eq!(chains, vec![Vec::<PredSet>::new()]);
    }

    fn chain_ctx() -> QueryContext {
        use sqe_engine::table::TableBuilder;
        use sqe_engine::{CmpOp, ColRef, Database, Predicate, SpjQuery, TableId};
        let mut db = Database::new();
        for i in 0..3 {
            db.add_table(
                TableBuilder::new(format!("t{i}"))
                    .column("a", vec![1, 2, 3])
                    .column("b", vec![4, 5, 6])
                    .build()
                    .unwrap(),
            );
        }
        // p0: T0 filter, p1: T0–T1 join, p2: T1–T2 join, p3: T2 filter.
        let preds = vec![
            Predicate::filter(ColRef::new(TableId(0), 0), CmpOp::Lt, 5),
            Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 0)),
            Predicate::join(ColRef::new(TableId(1), 1), ColRef::new(TableId(2), 0)),
            Predicate::filter(ColRef::new(TableId(2), 1), CmpOp::Eq, 7),
        ];
        let q = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        QueryContext::new(&db, &q)
    }

    #[test]
    fn component_table_matches_standard_decomposition() {
        let ctx = chain_ctx();
        let mut table = ComponentTable::new(4);
        for mask in 0u32..16 {
            let set = PredSet(mask);
            // Chain the table exactly the way the dense engine does.
            let mut chained = Vec::new();
            let mut rest = set;
            while !rest.is_empty() {
                let c = table.ensure(&ctx, rest);
                chained.push(c);
                rest = rest.minus(c);
            }
            assert_eq!(chained, ctx.standard_decomposition(set), "mask {mask:#b}");
            assert_eq!(
                table.is_separable(&ctx, set),
                ctx.is_separable(set),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn component_table_get_reports_only_visited_masks() {
        let ctx = chain_ctx();
        let mut table = ComponentTable::new(4);
        assert_eq!(table.get(PredSet::EMPTY), Some(PredSet::EMPTY));
        assert_eq!(table.get(PredSet(0b1001)), None);
        let c = table.ensure(&ctx, PredSet(0b1001));
        // p0 (T0) and p3 (T2) are disconnected: first factor is {p0}.
        assert_eq!(c, PredSet::singleton(0));
        assert_eq!(table.get(PredSet(0b1001)), Some(PredSet::singleton(0)));
        // ensure memoized the chain's sub-steps too.
        assert_eq!(table.get(PredSet(0b1000)), Some(PredSet::singleton(3)));
    }
}

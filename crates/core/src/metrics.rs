//! `MetricsSink` — a per-request instrumentation seam threaded through the
//! engine and the service layers.
//!
//! The pattern follows SpacetimeDB's `ExecutionMetrics`: the hot path is
//! handed a sink *trait object* and reports what it did (which ladder rung
//! answered, how wide the safety envelope was, which catalog epoch it
//! observed); the sink decides what to aggregate. Production front ends
//! (the `sqe-server` crate) install one sink per tenant so rung mix,
//! shed/quarantine counts, and latency percentiles are attributable
//! without reconstructing them from logs; everything else runs with
//! [`NullSink`], whose methods are no-op defaults the optimizer erases.
//!
//! Sinks **observe** — they must never influence an answer. Every method
//! takes `&self` (sinks are shared across threads) and has an empty
//! default body, so implementors opt into exactly the events they care
//! about. All counters are recorded with relaxed atomics by the provided
//! implementations: these are monitoring signals, not synchronization.

use crate::budget::{DegradeReason, Quality};

/// Observer for per-request engine and service events.
///
/// Implementations must be cheap and non-blocking: methods are called on
/// the estimate hot path (once per rung attempt / answer, not per DP
/// node). The default for every method is a no-op, so a sink implements
/// only what it aggregates.
pub trait MetricsSink: Send + Sync {
    /// The degradation ladder is about to try a rung. Called once per
    /// attempted rung in descending-quality order; an unbudgeted (or
    /// unlimited-budget) estimate reports a single attempt at its top
    /// rung.
    fn rung_attempted(&self, _quality: Quality) {}

    /// The ladder answered from `quality`; `reason` is why anything below
    /// the top rung was needed (`None` for undegraded answers).
    fn rung_answered(&self, _quality: Quality, _reason: Option<DegradeReason>) {}

    /// One estimate completed end-to-end in `latency_ns`, answered from
    /// `quality` (`cached` = the whole-query cache answered).
    fn estimate_served(&self, _latency_ns: u64, _quality: Quality, _cached: bool) {}

    /// A request was refused by admission control or a quota, with this
    /// retry hint (nanoseconds).
    fn shed(&self, _retry_after_ns: u64) {}

    /// A panicking request quarantined its snapshot's cache.
    fn quarantine(&self) {}

    /// Width of the safety envelope for one answer: the guaranteed upper
    /// bound divided by the (max(1) clamped) point cardinality estimate —
    /// `1.0` means the bound is tight against the estimate, larger means
    /// a wider envelope. Only reported when the bound is known and finite.
    fn bound_width(&self, _ratio: f64) {}

    /// The catalog epoch that answered one request (monotone per tenant;
    /// sinks typically keep the max, exposing the ingest generation the
    /// tenant's traffic has observed).
    fn ingest_epoch_observed(&self, _epoch: u64) {}
}

/// The default sink: ignores every event. Zero-sized, so threading it
/// through costs one vtable pointer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl MetricsSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        attempts: AtomicU64,
        answers: AtomicU64,
    }

    impl MetricsSink for Counting {
        fn rung_attempted(&self, _q: Quality) {
            self.attempts.fetch_add(1, Ordering::Relaxed);
        }
        fn rung_answered(&self, _q: Quality, _r: Option<DegradeReason>) {
            self.answers.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn null_sink_accepts_every_event() {
        let s = NullSink;
        s.rung_attempted(Quality::Full);
        s.rung_answered(Quality::Independence, Some(DegradeReason::Deadline));
        s.estimate_served(1_000, Quality::Full, false);
        s.shed(5_000_000);
        s.quarantine();
        s.bound_width(2.5);
        s.ingest_epoch_observed(7);
    }

    #[test]
    fn custom_sinks_override_only_what_they_need() {
        let s = Counting::default();
        s.rung_attempted(Quality::Full);
        s.rung_attempted(Quality::Pruned);
        s.rung_answered(Quality::Pruned, Some(DegradeReason::Deadline));
        s.estimate_served(10, Quality::Pruned, false); // default no-op
        assert_eq!(s.attempts.load(Ordering::Relaxed), 2);
        assert_eq!(s.answers.load(Ordering::Relaxed), 1);
    }
}

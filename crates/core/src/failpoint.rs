//! Name-keyed failpoints for fault-injection testing, shared by the whole
//! workspace.
//!
//! A failpoint is a named site in production code — `failpoint::fire("dp::
//! solve_mask")` — that normally does nothing. Tests (or the chaos bench)
//! arm a site with an [`Action`] via [`arm`]/[`arm_with`] or the
//! `SQE_FAILPOINTS` environment variable; the next time execution reaches
//! it, the action fires: panic, sleep, or (at fallible sites that call
//! [`fire_err`]) an injected `io::Error`.
//!
//! **Zero-cost when disabled**: the hot path is a single relaxed load of a
//! global counter of armed sites; the registry lock is taken only while at
//! least one site is armed. Sites therefore go inside tight DP loops
//! without measurable overhead.
//!
//! Env syntax (entries separated by `;` or `,`):
//!
//! ```text
//! SQE_FAILPOINTS="par::publish=panic;persist::save=error%7#3;dp::solve_mask=sleep(2)"
//! ```
//!
//! `name=action[%K][#N]` arms `name` with `action` (one of `panic`,
//! `sleep(ms)`, `error`), firing with probability 1/K (deterministic
//! xorshift, default every time) for at most N hits (default unlimited).
//!
//! The registry survives panics it causes itself: all locking recovers
//! from poisoning, so a failpoint-induced panic in one test thread never
//! wedges the framework for the next.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when execution reaches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep for the given number of milliseconds (models a stall).
    Sleep(u64),
    /// Make [`fire_err`] return an injected `io::Error`. Ignored by
    /// infallible [`fire`] sites.
    Error,
}

struct FpState {
    action: Action,
    /// Fire with probability 1/one_in (1 = always).
    one_in: u32,
    /// Remaining hits before the site self-disarms (`None` = unlimited).
    remaining: Option<u32>,
    /// Per-site deterministic xorshift state for the 1/K coin.
    rng: u64,
}

/// Count of armed sites — the hot-path gate. Maintained equal to
/// `registry.len()` under the registry lock.
static ARMED: AtomicUsize = AtomicUsize::new(0);

static REGISTRY: OnceLock<Mutex<HashMap<String, FpState>>> = OnceLock::new();

fn registry() -> std::sync::MutexGuard<'static, HashMap<String, FpState>> {
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        // A failpoint panic must not wedge the framework itself.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arms `name` to fire `action` on every hit, without limit.
pub fn arm(name: &str, action: Action) {
    arm_with(name, action, 1, None, 0x9E3779B97F4A7C15);
}

/// Arms `name` with full control: fire with probability `1/one_in`
/// (clamped to ≥1), at most `limit` times, with `seed` driving the
/// deterministic coin.
pub fn arm_with(name: &str, action: Action, one_in: u32, limit: Option<u32>, seed: u64) {
    let mut reg = registry();
    reg.insert(
        name.to_string(),
        FpState {
            action,
            one_in: one_in.max(1),
            remaining: limit,
            // xorshift must never be seeded with 0.
            rng: seed | 1,
        },
    );
    ARMED.store(reg.len(), Ordering::Release);
}

/// Disarms one site. No-op if it was not armed.
pub fn disarm(name: &str) {
    let mut reg = registry();
    reg.remove(name);
    ARMED.store(reg.len(), Ordering::Release);
}

/// Disarms every site. Tests should call this in teardown.
pub fn disarm_all() {
    let mut reg = registry();
    reg.clear();
    ARMED.store(0, Ordering::Release);
}

/// Names of currently armed sites (for chaos-run logging).
pub fn armed_sites() -> Vec<String> {
    let mut names: Vec<String> = registry().keys().cloned().collect();
    names.sort();
    names
}

/// Parses `spec` in the `SQE_FAILPOINTS` syntax and arms every entry.
/// Returns an error message for the first malformed entry.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split([';', ',']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry '{entry}' is missing '='"))?;
        // Peel the optional #N hit limit, then the optional %K probability.
        let (rest, limit) = match rest.split_once('#') {
            Some((head, n)) => {
                let n: u32 = n
                    .parse()
                    .map_err(|_| format!("failpoint '{name}': bad hit limit '#{n}'"))?;
                (head, Some(n))
            }
            None => (rest, None),
        };
        let (action_str, one_in) = match rest.split_once('%') {
            Some((head, k)) => {
                let k: u32 = k
                    .parse()
                    .map_err(|_| format!("failpoint '{name}': bad probability '%{k}'"))?;
                (head, k)
            }
            None => (rest, 1),
        };
        let action = match action_str {
            "panic" => Action::Panic,
            "error" => Action::Error,
            s if s.starts_with("sleep(") && s.ends_with(')') => {
                let ms: u64 = s["sleep(".len()..s.len() - 1]
                    .parse()
                    .map_err(|_| format!("failpoint '{name}': bad sleep '{s}'"))?;
                Action::Sleep(ms)
            }
            other => return Err(format!("failpoint '{name}': unknown action '{other}'")),
        };
        arm_with(name, action, one_in, limit, fxhash(name));
    }
    Ok(())
}

/// Arms failpoints from the `SQE_FAILPOINTS` environment variable, once
/// per process. Safe (and cheap) to call from every service constructor.
pub fn init_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Ok(spec) = std::env::var("SQE_FAILPOINTS") {
            if let Err(msg) = arm_from_spec(&spec) {
                eprintln!("SQE_FAILPOINTS ignored: {msg}");
                disarm_all();
            }
        }
    });
}

/// Serializes tests that arm failpoints. The registry is process-global,
/// so any two tests in the same binary that arm sites must hold this
/// guard; it recovers from poisoning because failpoint tests panic on
/// purpose.
#[doc(hidden)]
pub fn test_serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Stable per-name seed so env-armed probabilistic sites are
/// reproducible run-to-run.
fn fxhash(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// The decision for one hit, computed under the registry lock but acted
/// on outside it (sleeping or panicking while holding the lock would
/// stall or poison unrelated sites).
enum Decision {
    Nothing,
    Panic(String),
    Sleep(Duration),
    Error(String),
}

fn decide(name: &str) -> Decision {
    let mut reg = registry();
    let Some(fp) = reg.get_mut(name) else {
        return Decision::Nothing;
    };
    if fp.remaining == Some(0) {
        return Decision::Nothing;
    }
    if fp.one_in > 1 {
        // xorshift64* — deterministic per (seed, hit index).
        fp.rng ^= fp.rng << 13;
        fp.rng ^= fp.rng >> 7;
        fp.rng ^= fp.rng << 17;
        if fp.rng.wrapping_mul(0x2545F4914F6CDD1D) % fp.one_in as u64 != 0 {
            return Decision::Nothing;
        }
    }
    if let Some(n) = &mut fp.remaining {
        *n -= 1;
    }
    match fp.action {
        Action::Panic => Decision::Panic(format!("failpoint '{name}' fired: panic")),
        Action::Sleep(ms) => Decision::Sleep(Duration::from_millis(ms)),
        Action::Error => Decision::Error(format!("failpoint '{name}' fired: injected error")),
    }
}

/// An infallible injection site. Panics or sleeps if armed to;
/// [`Action::Error`] is ignored here (the site has no error channel).
#[inline]
pub fn fire(name: &str) {
    if ARMED.load(Ordering::Acquire) == 0 {
        return;
    }
    fire_slow(name);
}

#[cold]
fn fire_slow(name: &str) {
    match decide(name) {
        Decision::Nothing | Decision::Error(_) => {}
        Decision::Panic(msg) => panic!("{msg}"),
        Decision::Sleep(d) => std::thread::sleep(d),
    }
}

/// A fallible injection site: like [`fire`], but [`Action::Error`]
/// surfaces as an `io::Error` the caller propagates.
#[inline]
pub fn fire_err(name: &str) -> std::io::Result<()> {
    if ARMED.load(Ordering::Acquire) == 0 {
        return Ok(());
    }
    fire_err_slow(name)
}

#[cold]
fn fire_err_slow(name: &str) -> std::io::Result<()> {
    match decide(name) {
        Decision::Nothing => Ok(()),
        Decision::Panic(msg) => panic!("{msg}"),
        Decision::Sleep(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        Decision::Error(msg) => Err(std::io::Error::other(msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; every test that arms sites —
    /// here and in other modules of this binary — serializes behind the
    /// shared guard.
    use super::test_serial_guard as serial;

    #[test]
    fn disabled_sites_are_inert() {
        let _g = serial();
        disarm_all();
        fire("nope");
        assert!(fire_err("nope").is_ok());
        assert_eq!(ARMED.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn error_action_fires_only_at_fallible_sites() {
        let _g = serial();
        disarm_all();
        arm("site", Action::Error);
        // Infallible site: ignored.
        fire("site");
        let err = fire_err("site").unwrap_err();
        assert!(err.to_string().contains("site"), "{err}");
        disarm_all();
        assert!(fire_err("site").is_ok());
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = serial();
        disarm_all();
        arm("boom", Action::Panic);
        let res = std::panic::catch_unwind(|| fire("boom"));
        disarm_all();
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("failpoint 'boom'"), "{msg}");
    }

    #[test]
    fn hit_limit_self_disarms() {
        let _g = serial();
        disarm_all();
        arm_with("twice", Action::Error, 1, Some(2), 7);
        assert!(fire_err("twice").is_err());
        assert!(fire_err("twice").is_err());
        assert!(fire_err("twice").is_ok());
        disarm_all();
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let _g = serial();
        disarm_all();
        let run = |seed: u64| -> Vec<bool> {
            arm_with("coin", Action::Error, 3, None, seed);
            let fired = (0..64).map(|_| fire_err("coin").is_err()).collect();
            disarm("coin");
            fired
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.iter().any(|&f| f), "1-in-3 over 64 hits must fire");
        assert!(!a.iter().all(|&f| f), "1-in-3 must not fire every time");
        disarm_all();
    }

    #[test]
    fn env_spec_parses_all_forms_and_rejects_garbage() {
        let _g = serial();
        disarm_all();
        arm_from_spec("a=panic; b=sleep(5)%4 , c=error#2").unwrap();
        assert_eq!(armed_sites(), vec!["a", "b", "c"]);
        {
            let reg = registry();
            assert_eq!(reg["a"].action, Action::Panic);
            assert_eq!(reg["a"].one_in, 1);
            assert_eq!(reg["b"].action, Action::Sleep(5));
            assert_eq!(reg["b"].one_in, 4);
            assert_eq!(reg["c"].action, Action::Error);
            assert_eq!(reg["c"].remaining, Some(2));
        }
        disarm_all();
        assert!(arm_from_spec("x=explode").is_err());
        assert!(arm_from_spec("no-equals").is_err());
        assert!(arm_from_spec("x=error%zero").is_err());
        disarm_all();
    }
}

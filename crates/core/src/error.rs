//! Error functions ranking candidate decompositions (§3.2, §3.5, §5).
//!
//! All three are *monotonic* and *algebraic* (Definition 3) with `E = sum`,
//! so the principle of optimality holds and `getSelectivity`'s dynamic
//! program is exact for each of them:
//!
//! * **`nInd`** (§3.2, adapted from \[4\]): counts independence assumptions.
//!   A predicate estimated with `SIT(a|Q′)` inside a factor conditioned on
//!   `Q` contributes `|Q − Q′|` — one assumption per uncovered conditioning
//!   predicate. Purely syntactic, free to evaluate, but ties are frequent.
//! * **`Diff`** (§3.5): replaces the syntactic count with the *semantic*
//!   weight `1 − diff_H`, where `diff_H` is the stored variation distance
//!   between the SIT attribute's base distribution and its distribution
//!   over the SIT's expression. A SIT whose expression does not change the
//!   distribution (`diff = 0`, Example 4's foreign-key join) is recognized
//!   as no better than a base histogram. When the SIT covers the entire
//!   conditioning set the contribution is 0 (no assumption is made).
//! * **`Opt`** (§5): the oracle — `|estimate − true conditional
//!   selectivity|`. Only of theoretical interest (it needs the true values
//!   it is supposed to estimate) but it bounds what any ranking can achieve.
//!
//! Because this reproduction uses unidimensional SITs (as the paper's own
//! experiments do), factors with several predicates expand into an implicit
//! chain of single-predicate conditional factors (Example 3's "implicitly
//! applying an atomic decomposition"), and the formulas above are applied
//! per predicate. They coincide with the paper's `Σ_i |P_i|·|Q_i − Q′_i|`
//! and `Σ_i |P_i|·(1 − diff_{H_i})` when each factor carries one SIT.

/// Which error function ranks decompositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorMode {
    /// Count independence assumptions (`GS-nInd`).
    NInd,
    /// Weight assumptions by stored distribution divergence (`GS-Diff`).
    Diff,
    /// Oracle: true absolute deviation per factor (`GS-Opt`).
    Opt,
}

impl ErrorMode {
    /// Error contribution of estimating one predicate, conditioned on a set
    /// of size `cond_len`, using a SIT that covers `covered_len` of those
    /// predicates and has divergence `diff`.
    ///
    /// Not meaningful for [`ErrorMode::Opt`] (whose error is computed from
    /// the true selectivity by the estimator); `Opt` falls back to the
    /// `nInd` value so SIT *pre-selection* still favours coverage before
    /// the oracle comparison happens.
    pub fn sit_error(self, cond_len: usize, covered_len: usize, diff: f64) -> f64 {
        debug_assert!(covered_len <= cond_len);
        match self {
            ErrorMode::NInd | ErrorMode::Opt => (cond_len - covered_len) as f64,
            // The paper's formula Σ|P_i|·(1 − diff_{H_i}) charges every
            // predicate for the statistic it uses, *regardless of
            // coverage*: minimizing the total error maximizes the amount of
            // distribution divergence the chosen SITs capture. (Zeroing
            // the charge on full coverage looks tempting but breaks the
            // ranking: decompositions that dump all conditioning into one
            // factor would dominate while ignoring useful SITs.)
            ErrorMode::Diff => 1.0 - diff.clamp(0.0, 1.0),
        }
    }

    /// Error charged when *no* statistic exists for a predicate and a magic
    /// default constant is used: strictly worse than any SIT-based
    /// estimate.
    pub fn fallback_error(self, cond_len: usize) -> f64 {
        match self {
            ErrorMode::NInd | ErrorMode::Opt => (cond_len + 1) as f64,
            ErrorMode::Diff => 2.0,
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            ErrorMode::NInd => "GS-nInd",
            ErrorMode::Diff => "GS-Diff",
            ErrorMode::Opt => "GS-Opt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nind_counts_uncovered_conditioning() {
        // The paper's example: nInd({Sel(p|q1,q2), SIT(p|q1)}) = 1.
        assert_eq!(ErrorMode::NInd.sit_error(2, 1, 0.9), 1.0);
        assert_eq!(ErrorMode::NInd.sit_error(2, 0, 0.9), 2.0);
        assert_eq!(ErrorMode::NInd.sit_error(2, 2, 0.0), 0.0);
        assert_eq!(ErrorMode::NInd.sit_error(0, 0, 0.0), 0.0);
    }

    #[test]
    fn nind_ignores_diff() {
        assert_eq!(
            ErrorMode::NInd.sit_error(3, 1, 0.0),
            ErrorMode::NInd.sit_error(3, 1, 1.0)
        );
    }

    #[test]
    fn diff_weights_by_divergence() {
        // Example 4: two SITs with the same syntactic coverage; the one
        // whose expression actually shifts the distribution wins.
        let useless = ErrorMode::Diff.sit_error(2, 1, 0.0); // FK join, diff 0
        let useful = ErrorMode::Diff.sit_error(2, 1, 0.8);
        assert_eq!(useless, 1.0, "diff=0 SIT behaves like a base histogram");
        assert!((useful - 0.2).abs() < 1e-12);
        assert!(useful < useless);
    }

    #[test]
    fn diff_charges_regardless_of_coverage() {
        // Σ|P_i|·(1 − diff): coverage does not appear in the paper's Diff
        // formula — every predicate pays for the statistic it uses.
        assert_eq!(
            ErrorMode::Diff.sit_error(2, 2, 0.3),
            ErrorMode::Diff.sit_error(2, 0, 0.3)
        );
        assert!((ErrorMode::Diff.sit_error(0, 0, 0.3) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn diff_clamps_out_of_range_divergence() {
        assert_eq!(ErrorMode::Diff.sit_error(1, 0, 7.0), 0.0);
        assert_eq!(ErrorMode::Diff.sit_error(1, 0, -3.0), 1.0);
    }

    #[test]
    fn fallback_is_worse_than_any_sit() {
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            for cond in 0..4 {
                let fallback = mode.fallback_error(cond);
                let worst_sit = mode.sit_error(cond, 0, 0.0);
                assert!(fallback > worst_sit, "{mode:?} cond={cond}");
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ErrorMode::NInd.label(), "GS-nInd");
        assert_eq!(ErrorMode::Diff.label(), "GS-Diff");
        assert_eq!(ErrorMode::Opt.label(), "GS-Opt");
    }
}

//! Algorithm `getSelectivity` (Figure 3): the memoized dynamic program that
//! returns the most accurate decomposition of `Sel_R(P)` for a monotonic,
//! algebraic error function.
//!
//! ## Structure
//!
//! `get_selectivity(P)` follows the paper line by line:
//!
//! 1. memo lookup (lines 1–2);
//! 2. if `Sel(P)` is *separable*, recurse on the factors of its standard
//!    decomposition and combine (lines 3–7);
//! 3. otherwise enumerate every atomic decomposition `Sel(P′|Q)·Sel(Q)`
//!    with `P′ ⊆ P`, recursively solve `Sel(Q)`, locally pick the best SITs
//!    for the conditional factor, and keep the decomposition minimizing the
//!    merged error (lines 8–17);
//! 4. memoize and return (lines 18–19).
//!
//! ## Unidimensional factors
//!
//! Like the paper's own experiments, this reproduction uses unidimensional
//! SITs, so a factor `Sel(P′|Q)` with several predicates is approximated by
//! expanding it into the implicit chain
//! `Sel(p₁|p₂…pₘ,Q) · Sel(p₂|p₃…pₘ,Q) · … · Sel(pₘ|Q)` (Example 3's
//! "implicitly applying an atomic decomposition"; joins first, then
//! filters), each link estimated with its own best SIT. Per-link results
//! are memoized on `(predicate, conditioning-set)`, which keeps the `O(3ⁿ)`
//! subset walk cheap: each of the at most `n·2ⁿ` links is estimated once.
//!
//! The `H3` mechanism of §3.3 is supported: a filter on a join attribute
//! may be estimated from the *result histogram* of joining the two side
//! SITs, which covers the join predicate in the conditioning set without
//! any independence assumption.
//!
//! ## The dense subset-lattice engine
//!
//! The DP runs in one of two modes, chosen from `n` at construction (see
//! [`DpStrategy`]):
//!
//! * **Dense** (`n ≤ 16` under `Auto`): the memo is a flat `2ⁿ`-slot
//!   [`DenseMemo`] indexed directly by mask, standard decompositions come
//!   from a memoized per-mask [`ComponentTable`], and the lattice is filled
//!   **bottom-up in ascending popcount order** per non-separable component
//!   (every `Sel(Q)` a subset walk reads has fewer predicates than the mask
//!   being solved, so it is already a plain indexed load). §3.4 pruning
//!   becomes one AND against a subset-OR table.
//! * **Recursive** (large `n`): the original top-down recursion, with the
//!   `HashMap` memo replaced by an open-addressed [`FlatMemo`].
//!
//! Both engines are **bit-identical**: every memo state's value is a pure
//! function of its sub-states' values, the non-separable subset walk runs
//! the same descending-submask order with the same strict-`<` tie-break,
//! and separable products multiply components in the same ascending order —
//! so visiting the identical state set in a different topological order
//! reproduces the identical `f64`s (the property `tests/dense_engine.rs`
//! pins and the 8-thread determinism suite relies on).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sqe_engine::{CardinalityOracle, ColRef, Database, Predicate, SpjQuery};
use sqe_histogram::Histogram;

use crate::cache::{CacheKey, SharedEstimatorCache};
use crate::decomposition::ComponentTable;
use crate::error::ErrorMode;
use crate::flat::{peel_key, DenseMemo, FlatMemo};
use crate::matcher::SitMatcher;
use crate::predset::{PredSet, QueryContext};
use crate::sit::{SitCatalog, SitId};
use crate::sit2::{Sit2Catalog, Sit2Id};

/// Default equality selectivity when no statistic exists (System R lore).
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default range / inequality selectivity when no statistic exists.
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Floor for degenerate estimates, avoiding hard zeros that would wipe out
/// entire decompositions.
const MIN_SEL: f64 = 1e-12;
/// Default group-count cap when no statistic exists for a grouping
/// attribute.
pub(crate) const DEFAULT_GROUPS: f64 = 100.0;
/// `Auto` uses the dense engine up to this many predicates (a `2¹⁶`-slot
/// value table is 1 MiB — cheap next to the `3ⁿ` walk it accelerates).
const DENSE_AUTO_MAX: usize = 16;
/// Hard ceiling for [`DpStrategy::Dense`]: past this the `2ⁿ` tables cost
/// real memory (2²⁰ slots ≈ 16 MiB) and the request falls back to the
/// recursive engine.
const DENSE_HARD_MAX: usize = 20;

/// How the subset-lattice DP materializes its memo (see the module docs).
/// Every strategy returns bit-identical results; only speed and memory
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpStrategy {
    /// Dense for `n ≤ 16`, recursive above — the right call unless
    /// benchmarking one engine specifically.
    #[default]
    Auto,
    /// Force the flat `2ⁿ` tables (capped at `n ≤ 20`; larger queries fall
    /// back to recursive regardless).
    Dense,
    /// Force the top-down recursion with open-addressed memos.
    Recursive,
}

impl DpStrategy {
    /// Whether an `n`-predicate query runs on the dense tables.
    fn use_dense(self, n: usize) -> bool {
        match self {
            DpStrategy::Auto => n <= DENSE_AUTO_MAX,
            DpStrategy::Dense => n <= DENSE_HARD_MAX,
            DpStrategy::Recursive => false,
        }
    }
}

/// Instrumentation counters exposed by the estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EstimatorStats {
    /// View-matching calls issued (Figure 6's unit of work).
    pub vm_calls: u64,
    /// Entries in the subset memo (`Sel(P)` values computed).
    pub memo_entries: usize,
    /// Entries in the per-link memo (single-predicate conditional factors).
    pub peel_entries: usize,
    /// Time spent manipulating histograms (Figure 8's "histogram
    /// manipulation" component; the rest of wall time is "decomposition
    /// analysis").
    pub histogram_time: Duration,
}

/// The `getSelectivity` dynamic program for one query.
///
/// The estimator is stateful: the memoization table persists across
/// requests, so during the optimization of a single query every sub-plan's
/// selectivity request after the first reuses prior work (the integration
/// property §4 relies on).
pub struct SelectivityEstimator<'a> {
    db: &'a Database,
    ctx: QueryContext,
    matcher: SitMatcher<'a>,
    mode: ErrorMode,
    /// Mask-based §3.3 candidate index: for every attribute the query's
    /// predicates mention, the catalog's `for_attr` list restricted to SITs
    /// whose condition lies inside this query's predicate set, each paired
    /// with that condition as a mask over the query's predicate indices.
    /// Applicability (`cond ⊆ cset`) and maximality then reduce to bitwise
    /// tests — no predicate materialization or comparisons on the peel path.
    cand_index: CandIndex,
    /// Condition mask per usable SIT (the same masks as `cand_index`, keyed
    /// by id for the `H3` coverage computation).
    sit_cond_masks: HashMap<SitId, u32>,
    /// Mask-based index over the two-attribute SITs, keyed by the `y`
    /// attribute (built when a [`Sit2Catalog`] is attached).
    sit2_index: HashMap<ColRef, Vec<(Sit2Id, u32)>>,
    /// Filter selectivity per `(SIT, predicate index)` — the same SIT
    /// histogram is ranged with the same filter under thousands of
    /// conditioning sets, and the estimate depends on neither.
    filter_sel_cache: HashMap<(SitId, usize), f64>,
    /// Filter estimate and divergence per `(H3 pair, predicate index)`,
    /// collapsing the per-option `H3` histogram walk the same way.
    h3_sel_cache: HashMap<(SitId, SitId, usize), (f64, f64)>,
    /// Dense subset memo (flat `2ⁿ` table), present iff the resolved
    /// strategy is dense. Exactly one of `memo_dense`/`memo_sparse` holds
    /// this query's `Sel(P)` values.
    memo_dense: Option<DenseMemo>,
    /// Subset memo of the recursive engine (open-addressed, keyed by mask).
    memo_sparse: FlatMemo,
    /// Per-mask standard decompositions, memoized (dense engine only).
    comp_table: Option<ComponentTable>,
    /// Per-link memo keyed by `peel_key(i, cset)` — open-addressed in both
    /// engines (dense would need `n·2ⁿ` slots).
    peel_memo: FlatMemo,
    /// Join selectivity per SIT pair: the same pair is picked for many
    /// conditioning sets, so this collapses the histogram-join work from
    /// `O(n·2ⁿ)` to the number of distinct pairs.
    join_cache: HashMap<(SitId, SitId), f64>,
    /// Joined result histogram (`H3`, §3.3) and its divergence estimate per
    /// SIT pair.
    h3_cache: HashMap<(SitId, SitId), (Histogram, f64)>,
    oracle: Option<CardinalityOracle<'a>>,
    hist_time: Duration,
    /// Optional multidimensional SITs (§3.3's `SIT(x, X|Q)`), consulted by
    /// filter peels for carried-`H3` and filter-on-filter estimates.
    sit2: Option<&'a Sit2Catalog>,
    /// Carried-H3 cache per (grid, other-side SIT): estimated join
    /// selectivity, carried histogram, divergence.
    carry_cache: HashMap<(Sit2Id, SitId), (Histogram, f64)>,
    /// Conditional-y cache per (grid, x-range).
    cond2_cache: HashMap<(Sit2Id, i64, i64), (Histogram, f64)>,
    /// §3.4's optional SIT-driven pruning: when set, the subset loop skips
    /// atomic decompositions that no available SIT could improve.
    sit_driven: Option<Vec<(u32, u32)>>,
    /// Subset-OR rollup of `sit_driven` (dense engine only, built lazily):
    /// `prune_table[q]` ORs the attribute masks of every SIT whose
    /// condition fits inside `q`, turning the §3.4 skip test into a single
    /// AND.
    prune_table: Option<Vec<u32>>,
    /// Optional cross-query cache, consulted after the per-query memos
    /// miss and written back on every computed link / join product (see
    /// [`crate::cache`] for the validity contract).
    shared: Option<&'a dyn SharedEstimatorCache>,
}

impl<'a> SelectivityEstimator<'a> {
    /// Creates an estimator for `query` using the SITs in `catalog` ranked
    /// by `mode`. `ErrorMode::Opt` constructs an internal true-cardinality
    /// oracle (it is only of theoretical interest, per §5).
    pub fn new(
        db: &'a Database,
        query: &SpjQuery,
        catalog: &'a SitCatalog,
        mode: ErrorMode,
    ) -> Self {
        let oracle = matches!(mode, ErrorMode::Opt).then(|| CardinalityOracle::new(db));
        let ctx = QueryContext::new(db, query);
        let (cand_index, sit_cond_masks) = build_cand_index(catalog, ctx.predicates());
        let mut est = SelectivityEstimator {
            db,
            ctx,
            matcher: SitMatcher::new(catalog),
            mode,
            cand_index,
            sit_cond_masks,
            sit2_index: HashMap::new(),
            filter_sel_cache: HashMap::new(),
            h3_sel_cache: HashMap::new(),
            memo_dense: None,
            memo_sparse: FlatMemo::new(),
            comp_table: None,
            peel_memo: FlatMemo::new(),
            join_cache: HashMap::new(),
            h3_cache: HashMap::new(),
            oracle,
            hist_time: Duration::ZERO,
            sit2: None,
            carry_cache: HashMap::new(),
            cond2_cache: HashMap::new(),
            sit_driven: None,
            prune_table: None,
            shared: None,
        };
        est.apply_strategy(DpStrategy::Auto);
        est
    }

    /// Selects the DP engine explicitly (see [`DpStrategy`]). Resets the
    /// subset memo; call before the first estimation.
    pub fn with_strategy(mut self, strategy: DpStrategy) -> Self {
        self.apply_strategy(strategy);
        self
    }

    fn apply_strategy(&mut self, strategy: DpStrategy) {
        let n = self.ctx.predicates().len();
        if strategy.use_dense(n) {
            self.memo_dense = Some(DenseMemo::new(n));
            self.comp_table = Some(ComponentTable::new(n));
        } else {
            self.memo_dense = None;
            self.comp_table = None;
        }
        self.memo_sparse = FlatMemo::new();
        self.prune_table = None;
    }

    /// Attaches a cross-query shared cache. The estimator consults it when
    /// its own memos miss and writes every freshly computed per-link factor
    /// and SIT join product back, so concurrent and successive estimators
    /// over the same catalog snapshot reuse each other's work.
    ///
    /// The cache must only be shared among estimators with an identical
    /// configuration (database, catalogs, pruning) — see [`crate::cache`].
    pub fn with_shared_cache(mut self, cache: &'a dyn SharedEstimatorCache) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Attaches a catalog of two-attribute SITs (§3.3's multidimensional
    /// generalization). Filter peels gain two extra option families: the
    /// carried-`H3` path (grid joined against the far side of a join in
    /// the conditioning set) and filter-conditioned-on-filter estimates.
    pub fn with_sit2_catalog(mut self, catalog: &'a Sit2Catalog) -> Self {
        self.sit2 = Some(catalog);
        // Translate each grid's condition to a predicate-index mask, in
        // `for_y` order; grids conditioned on predicates outside this query
        // can never apply and are dropped (same rule as `cand_index`).
        let preds = self.ctx.predicates();
        let mut index: HashMap<ColRef, Vec<(Sit2Id, u32)>> = HashMap::new();
        for y in query_attrs(preds) {
            let mut list = Vec::new();
            for &id in catalog.for_y(y) {
                if let Some(mask) = cond_to_mask(&catalog.get(id).cond, preds) {
                    list.push((id, mask));
                }
            }
            index.insert(y, list);
        }
        self.sit2_index = index;
        self
    }

    /// Enables the §3.4 SIT-driven pruning: "if the number of available
    /// SITs is small, those SITs can drive the search for the best
    /// decomposition instead of blindly trying a large number of atomic
    /// decompositions that are known not to be successful". The subset loop
    /// then only explores decompositions `Sel(P′|Q)·Sel(Q)` for which some
    /// available non-base SIT has its attribute inside `P′` and its
    /// expression inside `Q` — plus the always-valid `P′ = P` fallback.
    ///
    /// Pruning never changes which SITs are *usable*; it may merely skip
    /// orderings whose estimates coincide with unpruned ones, so accuracy
    /// is preserved in practice while the explored space shrinks sharply.
    pub fn with_sit_driven_pruning(mut self) -> Self {
        // Precompute, per usable non-base SIT, (attribute-predicate mask,
        // condition mask) over this query's predicate indices. SITs whose
        // expression mentions predicates outside the query can never apply.
        let mut masks: Vec<(u32, u32)> = Vec::new();
        let preds = self.ctx.predicates().to_vec();
        for (_, sit) in self.matcher.catalog().iter() {
            if sit.is_base() {
                continue;
            }
            let mut cond_mask = 0u32;
            let mut usable = true;
            for c in &sit.cond {
                match preds.iter().position(|p| p == c) {
                    Some(i) => cond_mask |= 1 << i,
                    None => {
                        usable = false;
                        break;
                    }
                }
            }
            if !usable {
                continue;
            }
            let mut attr_mask = 0u32;
            for (i, p) in preds.iter().enumerate() {
                if p.columns().iter().any(|c| c == sit.attr) {
                    attr_mask |= 1 << i;
                }
            }
            if attr_mask != 0 {
                masks.push((attr_mask, cond_mask));
            }
        }
        masks.sort_unstable();
        masks.dedup();
        self.sit_driven = Some(masks);
        self.prune_table = None;
        self
    }

    /// The query context (predicate indexing).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }

    /// Instrumentation snapshot. Entry counts are **occupied** slots of the
    /// flat tables, never their capacity.
    pub fn stats(&self) -> EstimatorStats {
        EstimatorStats {
            vm_calls: self.matcher.calls(),
            memo_entries: self
                .memo_dense
                .as_ref()
                .map_or(self.memo_sparse.len(), DenseMemo::len),
            peel_entries: self.peel_memo.len(),
            histogram_time: self.hist_time,
        }
    }

    /// Most accurate selectivity estimate for the full query.
    pub fn selectivity(&mut self) -> f64 {
        let all = self.ctx.all();
        self.get_selectivity(all).0
    }

    /// Estimated cardinality of the sub-query `σ_P(tables(P)^×)`.
    pub fn cardinality(&mut self, p: PredSet) -> f64 {
        let (sel, _) = self.get_selectivity(p);
        sel * self.ctx.cross_product_size(p) as f64
    }

    /// Algorithm `getSelectivity` (Figure 3): returns `(selectivity,
    /// error)` for the most accurate non-separable decomposition of
    /// `Sel(P)`.
    pub fn get_selectivity(&mut self, p: PredSet) -> (f64, f64) {
        if p.is_empty() {
            return (1.0, 0.0);
        }
        if let Some(r) = self.memo_get(p) {
            return r;
        }
        if self.memo_dense.is_some() {
            self.fill_dense(p)
        } else {
            self.compute_recursive(p)
        }
    }

    /// Memo probe across both layouts.
    #[inline]
    fn memo_get(&self, p: PredSet) -> Option<(f64, f64)> {
        match &self.memo_dense {
            Some(dense) => dense.get(p.0),
            None => self.memo_sparse.get(p.0 as u64),
        }
    }

    /// The memoized first standard-decomposition factor of `set` (dense
    /// engine; computes and caches on first touch).
    #[inline]
    fn first_comp(&mut self, set: PredSet) -> PredSet {
        self.comp_table
            .as_mut()
            .expect("first_comp is dense-engine only")
            .ensure(&self.ctx, set)
    }

    /// Dense engine entry point: fills the flat tables bottom-up for `p`
    /// (not yet memoized, non-empty) and returns its value.
    fn fill_dense(&mut self, p: PredSet) -> (f64, f64) {
        if self.sit_driven.is_some() && self.prune_table.is_none() {
            self.build_prune_table();
        }
        let first = self.first_comp(p);
        if first == p {
            return self.fill_component(p);
        }
        // Separable (lines 4-7): solve each factor's sub-lattice, multiply
        // in ascending component order — the recursion's exact arithmetic.
        let mut sel = 1.0;
        let mut err = 0.0;
        let mut rest = p;
        while !rest.is_empty() {
            let c = self.first_comp(rest);
            rest = rest.minus(c);
            let (s, e) = match self.memo_get(c) {
                Some(r) => r,
                None => self.fill_component(c),
            };
            sel *= s;
            err += e;
        }
        let result = (sel, err);
        self.memo_dense
            .as_mut()
            .expect("dense engine active")
            .set(p.0, result);
        result
    }

    /// Fills every subset of the non-separable component `comp` in
    /// ascending popcount order. Each mask's dependencies (its proper
    /// subsets) live in earlier popcount ranks, so every `Sel(Q)` the
    /// subset walk needs is a plain indexed load by the time it is read.
    fn fill_component(&mut self, comp: PredSet) -> (f64, f64) {
        for k in 1..=comp.len() {
            for m in comp.subsets_of_size(k) {
                if self
                    .memo_dense
                    .as_ref()
                    .expect("dense engine active")
                    .contains(m.0)
                {
                    continue;
                }
                let fc = self.first_comp(m);
                let result = if fc != m {
                    // Separable submask: product over its components, all
                    // filled in earlier ranks.
                    let mut sel = 1.0;
                    let mut err = 0.0;
                    let mut rest = m;
                    while !rest.is_empty() {
                        let c = self.first_comp(rest);
                        rest = rest.minus(c);
                        let (s, e) = self
                            .memo_get(c)
                            .expect("component filled in an earlier popcount rank");
                        sel *= s;
                        err += e;
                    }
                    (sel, err)
                } else {
                    self.solve_nonseparable(m)
                };
                self.memo_dense
                    .as_mut()
                    .expect("dense engine active")
                    .set(m.0, result);
            }
        }
        self.memo_get(comp)
            .expect("comp is its own final popcount rank")
    }

    /// Lines 9-17 for a non-separable mask on the dense engine: every
    /// atomic decomposition `Sel(P′|Q)·Sel(Q)`, with `Sel(Q)` read straight
    /// from the flat table. Same descending-submask order and strict-`<`
    /// tie-break as the recursion — bit-identical by construction.
    fn solve_nonseparable(&mut self, m: PredSet) -> (f64, f64) {
        let mut best_err = f64::INFINITY;
        let mut best_sel = DEFAULT_RANGE_SEL.powi(m.len() as i32);
        let pruning = self.prune_table.is_some();
        for p_prime in m.subsets() {
            let q = m.minus(p_prime);
            if pruning {
                // §3.4 as pure bitwise work: some SIT fits inside Q and
                // touches P′ iff the rolled-up attribute mask hits P′. The
                // full-set factor (Q = ∅) always stays as fallback.
                let table = self.prune_table.as_ref().expect("checked above");
                let keep = p_prime == m || table[q.0 as usize] & p_prime.0 != 0;
                if !keep {
                    continue;
                }
            }
            let (sel_q, err_q) = if q.is_empty() {
                (1.0, 0.0)
            } else {
                self.memo_get(q).expect("proper subsets fill first")
            };
            let (sel_f, err_f) = self.factor(p_prime, q);
            let total = err_f + err_q;
            if total < best_err {
                best_err = total;
                best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
            }
        }
        (best_sel, best_err)
    }

    /// Subset-OR rollup of the §3.4 masks: `prune_table[q] = ⋃ {attr mask
    /// of SITs whose condition ⊆ q}`, built with the standard
    /// sum-over-subsets pass (one bit per round).
    fn build_prune_table(&mut self) {
        let n = self.ctx.predicates().len();
        let mut table = vec![0u32; 1usize << n];
        if let Some(masks) = &self.sit_driven {
            for &(a, c) in masks {
                table[c as usize] |= a;
            }
        }
        for b in 0..n {
            let bit = 1usize << b;
            for m in 0..table.len() {
                if m & bit != 0 {
                    table[m] |= table[m ^ bit];
                }
            }
        }
        self.prune_table = Some(table);
    }

    /// The original top-down recursion (large `n`), on open-addressed
    /// memos and allocation-free decomposition chains.
    fn compute_recursive(&mut self, p: PredSet) -> (f64, f64) {
        let first = self.ctx.first_component(p);
        let result = if first != p {
            // Lines 4-7: separable — solve each non-separable factor of the
            // standard decomposition independently (exact by Property 2).
            let mut sel = 1.0;
            let mut err = 0.0;
            let mut rest = p;
            while !rest.is_empty() {
                let c = self.ctx.first_component(rest);
                rest = rest.minus(c);
                let (s, e) = self.get_selectivity(c);
                sel *= s;
                err += e;
            }
            (sel, err)
        } else {
            // Lines 9-17: non-separable — try every atomic decomposition
            // Sel(P′|Q)·Sel(Q).
            let mut best_err = f64::INFINITY;
            let mut best_sel = DEFAULT_RANGE_SEL.powi(p.len() as i32);
            for p_prime in p.subsets() {
                let q = p.minus(p_prime);
                if let Some(masks) = &self.sit_driven {
                    // §3.4: skip decompositions no SIT could improve. The
                    // full-set factor (Q = ∅) always stays as fallback.
                    let keep = p_prime == p
                        || masks
                            .iter()
                            .any(|&(a, c)| a & p_prime.0 != 0 && c & !q.0 == 0);
                    if !keep {
                        continue;
                    }
                }
                let (sel_q, err_q) = self.get_selectivity(q);
                let (sel_f, err_f) = self.factor(p_prime, q);
                let total = err_f + err_q;
                if total < best_err {
                    best_err = total;
                    best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
                }
            }
            (best_sel, best_err)
        };
        self.memo_sparse.insert(p.0 as u64, result);
        result
    }

    /// Approximates the single conditional factor `Sel(P′|Q)` with the best
    /// available SITs, returning `(selectivity, error)`. This is the
    /// building block a Cascades-coupled optimizer calls for each memo
    /// entry (§4.2), where the entry's operator parameters form `P′` and
    /// its inputs form `Q`.
    pub fn conditional_factor(&mut self, p_prime: PredSet, q: PredSet) -> (f64, f64) {
        self.factor(p_prime, q)
    }

    /// Approximates the conditional factor `Sel(P′|Q)` with available SITs
    /// by expanding it into the implicit single-predicate chain. Peels
    /// joins first, then filters, each group in ascending index order —
    /// iterating the mask bits directly (no `order` vector; this runs on
    /// every one of the up-to-`3ⁿ` lattice visits).
    fn factor(&mut self, p_prime: PredSet, q: PredSet) -> (f64, f64) {
        let mut remaining = p_prime;
        let mut sel = 1.0;
        let mut err = 0.0;
        for group in [self.ctx.joins_in(p_prime), self.ctx.filters_in(p_prime)] {
            let mut bits = group.0;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                remaining = remaining.minus(PredSet::singleton(i));
                let cset = q.union(remaining);
                let (s, e) = self.peel(i, cset);
                sel *= s;
                err += e;
            }
        }
        (sel.clamp(0.0, 1.0), err)
    }

    /// §3.3 candidate SITs through the precomputed mask index: applicable
    /// (`cond_mask ⊆ cset`) and maximal among the applicable, in catalog
    /// `for_attr` order — the exact set [`SitMatcher::candidates`] returns
    /// for `predicates_of(cset)`, with both tests reduced to bitwise
    /// operations (conditions map injectively to predicate-index masks, so
    /// set inclusion ≡ mask inclusion). Counts one view-matching call.
    fn mask_candidates(&self, attr: ColRef, cset: PredSet) -> Vec<SitId> {
        self.matcher.record_call();
        let Some(list) = self.cand_index.get(&attr) else {
            return Vec::new();
        };
        let outside = !cset.0;
        let mut out = Vec::with_capacity(list.len());
        for (k, &(id, m)) in list.iter().enumerate() {
            if m & outside != 0 {
                continue;
            }
            let dominated = list
                .iter()
                .enumerate()
                .any(|(j, &(_, om))| j != k && om & outside == 0 && om != m && m & !om == 0);
            if !dominated {
                out.push(id);
            }
        }
        out
    }

    /// Estimates the single-predicate conditional factor `Sel(pᵢ | cset)`,
    /// memoized on `(i, cset)`.
    fn peel(&mut self, i: usize, cset: PredSet) -> (f64, f64) {
        let key = peel_key(i, cset.0);
        if let Some(r) = self.peel_memo.get(key) {
            return r;
        }
        let pred = *self.ctx.predicate(i);
        // Cross-query lookup: the link's value depends only on the
        // predicate, the conditioning *set*, and the mode (every in-link
        // choice below breaks ties by value, never by within-query
        // ordering), so the canonicalized key is exact.
        let shared_key = self
            .shared
            .map(|_| CacheKey::conditional(self.mode, &[pred], &self.ctx.predicates_of(cset)));
        // Shared-cache hooks fire exactly on flat-table misses, as the
        // HashMap version's did on map misses.
        if let (Some(cache), Some(k)) = (self.shared, &shared_key) {
            if let Some(r) = cache.get_link(k) {
                self.peel_memo.insert(key, r);
                return r;
            }
        }
        let result = match pred {
            Predicate::Join { .. } => self.peel_join(i, &pred, cset),
            _ => self.peel_filter(i, &pred, cset),
        };
        debug_assert!(result.0.is_finite() && result.1.is_finite());
        if let (Some(cache), Some(k)) = (self.shared, shared_key) {
            cache.put_link(k, result);
        }
        self.peel_memo.insert(key, result);
        result
    }

    /// `Sel(x = y | cset)`: join the best SITs for both sides.
    fn peel_join(&mut self, i: usize, pred: &Predicate, cset: PredSet) -> (f64, f64) {
        let Predicate::Join { left, right } = *pred else {
            unreachable!("peel_join only receives joins")
        };
        let cand_l = self.mask_candidates(left, cset);
        let cand_r = self.mask_candidates(right, cset);
        if cand_l.is_empty() || cand_r.is_empty() {
            // No statistics at all: classic 1/max(|L|,|R|) default.
            let nl = self.db.row_count(left.table).unwrap_or(1).max(1);
            let nr = self.db.row_count(right.table).unwrap_or(1).max(1);
            let est = (1.0 / nl.max(nr) as f64).max(MIN_SEL);
            let err = self.fallback_error(i, est, cset);
            return (est, err);
        }
        match self.mode {
            ErrorMode::NInd | ErrorMode::Diff => {
                let (l, el) = self.pick_best(&cand_l, cset);
                let (r, er) = self.pick_best(&cand_r, cset);
                let est = self.join_selectivity(l, r);
                // A join uses two statistics; each side's uncovered
                // conditioning (or divergence shortfall) is its own set of
                // independence assumptions, so side errors add.
                (est, el + er)
            }
            ErrorMode::Opt => {
                // Oracle mode: try every candidate pair, score by true
                // deviation.
                let truth = self.true_conditional(i, cset);
                let mut best = (f64::INFINITY, MIN_SEL);
                for &l in &cand_l {
                    for &r in &cand_r {
                        let est = self.join_selectivity(l, r);
                        let dev = opt_deviation(est, truth);
                        if dev < best.0 {
                            best = (dev, est);
                        }
                    }
                }
                (best.1, best.0)
            }
        }
    }

    /// `Sel(filter | cset)`: best own-attribute SIT, or the §3.3 `H3`
    /// mechanism when the filter sits on a join attribute of `cset`.
    fn peel_filter(&mut self, i: usize, pred: &Predicate, cset: PredSet) -> (f64, f64) {
        let col = match pred.columns() {
            sqe_engine::predicate::PredColumns::One(c) => c,
            sqe_engine::predicate::PredColumns::Two(c, _) => c,
        };
        let truth = matches!(self.mode, ErrorMode::Opt).then(|| self.true_conditional(i, cset));

        // Option set: (error, coverage, estimate). Larger coverage wins
        // ties; smaller estimate wins remaining ties. Every criterion is a
        // property of the option itself — never its position — so the
        // choice is invariant under predicate reordering, which cross-query
        // link caching relies on (two queries listing the same conditioning
        // set in different orders assemble this vector in different orders).
        let mut options: Vec<(f64, usize, f64)> = Vec::new();

        let catalog = self.matcher.catalog();
        for id in self.mask_candidates(col, cset) {
            let sit = catalog.get(id);
            let est = match self.filter_sel_cache.get(&(id, i)) {
                Some(&e) => e,
                None => {
                    let start = Instant::now();
                    let e = filter_selectivity(&sit.histogram, pred);
                    self.hist_time += start.elapsed();
                    self.filter_sel_cache.insert((id, i), e);
                    e
                }
            };
            let err = match (self.mode, truth) {
                (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                _ => self.mode.sit_error(cset.len(), sit.cond.len(), sit.diff),
            };
            options.push((err, sit.cond.len(), est));
        }

        // H3: for a join j = (col = other) in cset, join the two sides'
        // SITs (conditioned on cset − j) and range over the result
        // histogram. Covers j plus both SIT conditions.
        for j in self.ctx.joins_in(cset).iter() {
            let Predicate::Join { left, right } = *self.ctx.predicate(j) else {
                continue;
            };
            let other = if left == col {
                right
            } else if right == col {
                left
            } else {
                continue;
            };
            let sub = cset.minus(PredSet::singleton(j));
            let cand_c = self.mask_candidates(col, sub);
            let cand_o = self.mask_candidates(other, sub);
            let (Some((sc, _)), Some((so, _))) = (
                self.pick_best_opt(&cand_c, sub),
                self.pick_best_opt(&cand_o, sub),
            ) else {
                continue;
            };
            // H3's divergence from the attribute's original distribution:
            // at least the attribute-side SIT's own divergence, plus
            // whatever the join itself adds. The ranged estimate depends
            // only on the pair and the filter, so it is computed once per
            // `(pair, filter)` across all conditioning sets.
            let (est, h3_diff) = match self.h3_sel_cache.get(&(sc, so, i)) {
                Some(&v) => v,
                None => {
                    let (est, d, spent) = {
                        let (h, d) = self.h3_join(sc, so);
                        let start = Instant::now();
                        (filter_selectivity(h, pred), *d, start.elapsed())
                    };
                    self.hist_time += spent;
                    self.h3_sel_cache.insert((sc, so, i), (est, d));
                    (est, d)
                }
            };
            // Coverage: the join predicate itself plus both conditions
            // (condition masks are exact, so the union's popcount is the
            // deduplicated size the predicate-set version computed).
            let union = self.sit_cond_masks[&sc] | self.sit_cond_masks[&so];
            let coverage = (1 + union.count_ones() as usize).min(cset.len());
            let err = match (self.mode, truth) {
                (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                (ErrorMode::Diff, _) => 1.0 - h3_diff.clamp(0.0, 1.0),
                _ => (cset.len() - coverage) as f64,
            };
            options.push((err, coverage, est));
        }

        self.push_sit2_options(&mut options, col, pred, cset, truth);

        match options.into_iter().min_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then(b.1.cmp(&a.1))
                .then(a.2.total_cmp(&b.2))
        }) {
            Some((err, _, est)) => (est.max(MIN_SEL), err),
            None => {
                let est = default_filter_selectivity(pred);
                let err = self.fallback_error(i, est, cset);
                (est, err)
            }
        }
    }

    /// Adds the multidimensional-SIT options (§3.3) for a filter peel:
    /// carried-`H3` distributions through joins in the conditioning set,
    /// and conditionals on co-located filters.
    fn push_sit2_options(
        &mut self,
        options: &mut Vec<(f64, usize, f64)>,
        col: sqe_engine::ColRef,
        pred: &Predicate,
        cset: PredSet,
        truth: Option<f64>,
    ) {
        let Some(sit2s) = self.sit2 else {
            return;
        };
        // (a) Carried H3: a join j ∈ cset with its near side on col's
        // table, a grid over (near, col), and a 1-D SIT for the far side.
        // The grid path is a *fallback*: when a direct 1-D SIT already
        // conditions on j (it is finer — 200 buckets vs a 32-wide grid
        // dimension), the multidimensional detour only adds resolution
        // noise, so skip it (the maximality spirit of §3.3's rule 3).
        let direct = self.mask_candidates(col, cset);
        let catalog = self.matcher.catalog();
        // Both grid paths are *fallbacks*: a join-conditioned 1-D SIT for
        // the attribute is built on the exact expression at 200-bucket
        // resolution and captures the dominant join interaction; the grid
        // detour (32-wide carried dimension, containment assumptions in
        // the grid join) only competes when no such SIT exists.
        if direct.iter().any(|&id| !catalog.get(id).cond.is_empty()) {
            return;
        }
        for j in self.ctx.joins_in(cset).iter() {
            let jpred = *self.ctx.predicate(j);
            let Predicate::Join { left, right } = jpred else {
                continue;
            };
            for (near, far) in [(left, right), (right, left)] {
                if near.table != col.table {
                    continue;
                }
                let sub = cset.minus(PredSet::singleton(j));
                let candidates: Vec<Sit2Id> = self
                    .sit2_index
                    .get(&col)
                    .map(|list| {
                        list.iter()
                            .filter(|&&(id, m)| m & !sub.0 == 0 && sit2s.get(id).x == near)
                            .map(|&(id, _)| id)
                            .collect()
                    })
                    .unwrap_or_default();
                if candidates.is_empty() {
                    continue;
                }
                let cand_far = self.mask_candidates(far, sub);
                let Some((far_id, _)) = self.pick_best_opt(&cand_far, sub) else {
                    continue;
                };
                for s2_id in candidates {
                    let (carried, divergence) = self.carried_h3(sit2s, s2_id, far_id);
                    if carried.total_rows() <= 0.0 {
                        continue;
                    }
                    let s2 = sit2s.get(s2_id);
                    let start = Instant::now();
                    let gated = shrink_conditional(&carried, &s2.y_marginal, pred, divergence);
                    self.hist_time += start.elapsed();
                    let Some((est, divergence)) = gated else {
                        continue;
                    };
                    let far_cond = &self.matcher.catalog().get(far_id).cond;
                    let coverage = (1 + s2.cond.len() + far_cond.len()).min(cset.len());
                    let err = match (self.mode, truth) {
                        (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                        (ErrorMode::Diff, _) => 1.0 - divergence,
                        _ => (cset.len() - coverage) as f64,
                    };
                    options.push((err, coverage, est));
                }
            }
        }
        // (b) Filter-conditioned-on-filter: another filter g ∈ cset on the
        // same table with a grid over (attr(g), col).
        for g in self.ctx.filters_in(cset).iter() {
            let gpred = *self.ctx.predicate(g);
            let gcol = match gpred.columns() {
                sqe_engine::predicate::PredColumns::One(c) => c,
                sqe_engine::predicate::PredColumns::Two(c, _) => c,
            };
            if gcol.table != col.table || gcol == col {
                continue;
            }
            let Some((glo, ghi)) = filter_bounds(&gpred) else {
                continue;
            };
            let sub = cset.minus(PredSet::singleton(g));
            let candidates: Vec<Sit2Id> = self
                .sit2_index
                .get(&col)
                .map(|list| {
                    list.iter()
                        .filter(|&&(id, m)| m & !sub.0 == 0 && sit2s.get(id).x == gcol)
                        .map(|&(id, _)| id)
                        .collect()
                })
                .unwrap_or_default();
            for s2_id in candidates {
                let (conditional, divergence) = self.conditional2(sit2s, s2_id, glo, ghi);
                if conditional.total_rows() <= 0.0 {
                    continue;
                }
                let s2 = sit2s.get(s2_id);
                let start = Instant::now();
                let gated = shrink_conditional(&conditional, &s2.y_marginal, pred, divergence);
                self.hist_time += start.elapsed();
                let Some((est, divergence)) = gated else {
                    continue;
                };
                let coverage = (1 + s2.cond.len()).min(cset.len());
                let err = match (self.mode, truth) {
                    (ErrorMode::Opt, Some(t)) => opt_deviation(est, t),
                    (ErrorMode::Diff, _) => 1.0 - divergence,
                    _ => (cset.len() - coverage) as f64,
                };
                options.push((err, coverage, est));
            }
        }
    }

    /// Carried-`H3` histogram of a grid joined against a 1-D SIT (cached).
    fn carried_h3(
        &mut self,
        sit2s: &Sit2Catalog,
        s2_id: Sit2Id,
        far_id: SitId,
    ) -> (Histogram, f64) {
        if let Some(hit) = self.carry_cache.get(&(s2_id, far_id)) {
            return hit.clone();
        }
        let s2 = sit2s.get(s2_id);
        let far = self.matcher.catalog().get(far_id);
        let start = Instant::now();
        let (_, carried) = s2.grid.join_carry(&far.histogram);
        let divergence = s2.conditional_divergence(&carried).max(far.diff);
        self.hist_time += start.elapsed();
        self.carry_cache
            .insert((s2_id, far_id), (carried.clone(), divergence));
        (carried, divergence)
    }

    /// Conditional-`y` histogram of a grid restricted to an x-range
    /// (cached).
    fn conditional2(
        &mut self,
        sit2s: &Sit2Catalog,
        s2_id: Sit2Id,
        lo: i64,
        hi: i64,
    ) -> (Histogram, f64) {
        if let Some(hit) = self.cond2_cache.get(&(s2_id, lo, hi)) {
            return hit.clone();
        }
        let s2 = sit2s.get(s2_id);
        let start = Instant::now();
        let conditional = s2.grid.conditional_y(lo, hi);
        let divergence = s2.conditional_divergence(&conditional);
        self.hist_time += start.elapsed();
        self.cond2_cache
            .insert((s2_id, lo, hi), (conditional.clone(), divergence));
        (conditional, divergence)
    }

    /// Best SIT among candidates under the mode's SIT error; returns the
    /// SIT and its error contribution.
    fn pick_best(&self, candidates: &[SitId], cset: PredSet) -> (SitId, f64) {
        self.pick_best_opt(candidates, cset)
            .expect("pick_best requires non-empty candidates")
    }

    fn pick_best_opt(&self, candidates: &[SitId], cset: PredSet) -> Option<(SitId, f64)> {
        candidates
            .iter()
            .map(|&id| {
                let sit = self.matcher.catalog().get(id);
                let e = self.mode.sit_error(cset.len(), sit.cond.len(), sit.diff);
                (id, e)
            })
            .min_by(|a, b| {
                a.1.total_cmp(&b.1).then_with(|| {
                    // Tie: larger coverage, then smaller id.
                    let ca = self.matcher.catalog().get(a.0).cond.len();
                    let cb = self.matcher.catalog().get(b.0).cond.len();
                    cb.cmp(&ca).then(a.0.cmp(&b.0))
                })
            })
    }

    /// Histogram join selectivity of two SITs (timed, cached per pair).
    fn join_selectivity(&mut self, l: SitId, r: SitId) -> f64 {
        if let Some(&sel) = self.join_cache.get(&(l, r)) {
            return sel;
        }
        if let Some(cache) = self.shared {
            if let Some(sel) = cache.get_join((l, r)) {
                self.join_cache.insert((l, r), sel);
                return sel;
            }
        }
        let hl = &self.matcher.catalog().get(l).histogram;
        let hr = &self.matcher.catalog().get(r).histogram;
        let start = Instant::now();
        let sel = hl.join(hr).selectivity.max(MIN_SEL);
        self.hist_time += start.elapsed();
        if let Some(cache) = self.shared {
            cache.put_join((l, r), sel);
        }
        self.join_cache.insert((l, r), sel);
        sel
    }

    /// The `H3` result histogram of joining two SITs plus its divergence
    /// from the attribute side's original distribution (timed, cached).
    fn h3_join(&mut self, attr_side: SitId, other_side: SitId) -> &(Histogram, f64) {
        if !self.h3_cache.contains_key(&(attr_side, other_side)) {
            if let Some(hit) = self
                .shared
                .and_then(|cache| cache.get_h3((attr_side, other_side)))
            {
                self.h3_cache.insert((attr_side, other_side), hit);
                return &self.h3_cache[&(attr_side, other_side)];
            }
            let sit_c = self.matcher.catalog().get(attr_side);
            let sit_o = self.matcher.catalog().get(other_side);
            let start = Instant::now();
            let joined = sit_c.histogram.join(&sit_o.histogram);
            let h3_diff = sqe_histogram::diff_from_histograms(&sit_c.histogram, &joined.histogram)
                .max(sit_c.diff);
            self.hist_time += start.elapsed();
            if let Some(cache) = self.shared {
                cache.put_h3((attr_side, other_side), (joined.histogram.clone(), h3_diff));
            }
            self.h3_cache
                .insert((attr_side, other_side), (joined.histogram, h3_diff));
        }
        &self.h3_cache[&(attr_side, other_side)]
    }

    /// The best applicable SIT histogram for `attr` under a predicate
    /// context (used by Group-By estimation). Counts a view-matching call.
    pub(crate) fn best_histogram_for(
        &self,
        attr: sqe_engine::ColRef,
        preds: &[Predicate],
    ) -> Option<&'a Histogram> {
        let candidates = self.matcher.candidates(attr, preds);
        let cset = PredSet::full(preds.len().min(crate::predset::MAX_PREDICATES));
        let (id, _) = self.pick_best_opt(&candidates, cset)?;
        Some(&self.matcher.catalog().get(id).histogram)
    }

    /// True `Sel(pᵢ | cset)` from the oracle (Opt mode only).
    fn true_conditional(&mut self, i: usize, cset: PredSet) -> f64 {
        let all = cset.union(PredSet::singleton(i));
        let tables = self.ctx.tables_of(all);
        let p = [*self.ctx.predicate(i)];
        let q = self.ctx.predicates_of(cset);
        self.oracle
            .as_mut()
            .expect("oracle present in Opt mode")
            .conditional_selectivity(&tables, &p, &q)
            .unwrap_or(0.0)
    }

    /// Error charged for a default (statistics-free) estimate.
    fn fallback_error(&mut self, i: usize, est: f64, cset: PredSet) -> f64 {
        match self.mode {
            ErrorMode::Opt => {
                let t = self.true_conditional(i, cset);
                opt_deviation(est, t)
            }
            mode => mode.fallback_error(cset.len()),
        }
    }
}

/// The distinct attributes mentioned by a query's predicates, in first-use
/// order.
fn query_attrs(preds: &[Predicate]) -> Vec<ColRef> {
    let mut attrs = Vec::new();
    for p in preds {
        for c in p.columns().iter() {
            if !attrs.contains(&c) {
                attrs.push(c);
            }
        }
    }
    attrs
}

/// Translates a SIT condition into a mask over the query's predicate
/// indices; `None` when some condition predicate is not in the query (such
/// a SIT can never be applicable for any conditioning subset).
fn cond_to_mask(cond: &[Predicate], preds: &[Predicate]) -> Option<u32> {
    let mut mask = 0u32;
    for c in cond {
        mask |= 1 << preds.iter().position(|p| p == c)?;
    }
    Some(mask)
}

/// Per-attribute candidate lists with condition masks (see
/// [`SelectivityEstimator::mask_candidates`]).
type CandIndex = HashMap<ColRef, Vec<(SitId, u32)>>;

/// Builds the per-attribute candidate index: for every attribute the query
/// mentions, the catalog's `for_attr` list (order preserved) restricted to
/// usable SITs, with condition masks — plus the id → mask side table.
fn build_cand_index(catalog: &SitCatalog, preds: &[Predicate]) -> (CandIndex, HashMap<SitId, u32>) {
    let mut by_attr = HashMap::new();
    let mut masks = HashMap::new();
    for attr in query_attrs(preds) {
        let mut list = Vec::new();
        for &id in catalog.for_attr(attr) {
            if let Some(mask) = cond_to_mask(&catalog.get(id).cond, preds) {
                masks.insert(id, mask);
                list.push((id, mask));
            }
        }
        by_attr.insert(attr, list);
    }
    (by_attr, masks)
}

/// `Opt`'s per-factor deviation: the absolute log-ratio between estimate
/// and truth. Factor selectivities multiply, so log deviations *add* — the
/// sum over a decomposition's factors bounds the log error of the final
/// product, which makes the oracle ranking compose correctly (a plain
/// absolute difference would let many tiny-but-relatively-wrong factors
/// outrank one accurate large factor).
fn opt_deviation(est: f64, truth: f64) -> f64 {
    if truth <= MIN_SEL && est <= MIN_SEL {
        return 0.0;
    }
    (est.max(MIN_SEL).ln() - truth.max(MIN_SEL).ln()).abs()
}

/// Histogram estimate for a filter predicate.
fn filter_selectivity(h: &Histogram, pred: &Predicate) -> f64 {
    use sqe_engine::CmpOp;
    let sel = match *pred {
        Predicate::Range { lo, hi, .. } => h.range_selectivity(lo, hi),
        Predicate::Filter { op, value, .. } => match op {
            CmpOp::Lt => h.cmp_selectivity(value, true, true),
            CmpOp::Le => h.cmp_selectivity(value, true, false),
            CmpOp::Gt => h.cmp_selectivity(value, false, true),
            CmpOp::Ge => h.cmp_selectivity(value, false, false),
            CmpOp::Eq => h.eq_selectivity(value),
            CmpOp::Neq => 1.0 - h.eq_selectivity(value),
        },
        Predicate::Join { .. } => unreachable!("filter_selectivity on join"),
    };
    sel.clamp(0.0, 1.0)
}

/// Gates a grid-derived conditional estimate on *local* statistical
/// significance. Total-variation divergence is global — a predicate range
/// holding 5% of the mass can double its conditional share while barely
/// moving the TV distance — so the gate tests the predicate's own range:
/// with `m` rows behind the conditional, the range's conditional row count
/// must deviate from its marginal expectation by more than ~1.5 Poisson
/// standard deviations, otherwise the shift is sampling noise (the failure
/// mode observed on small dimension tables) and the option is withdrawn.
fn shrink_conditional(
    conditional: &Histogram,
    marginal: &Histogram,
    pred: &Predicate,
    divergence: f64,
) -> Option<(f64, f64)> {
    const Z_THRESHOLD: f64 = 1.5;
    let m = conditional.valid_rows().max(1.0);
    let est_cond = filter_selectivity(conditional, pred);
    let est_marg = filter_selectivity(marginal, pred);
    let observed = est_cond * m;
    let expected = est_marg * m;
    let z = (observed - expected) / expected.max(1.0).sqrt();
    if z.abs() < Z_THRESHOLD {
        return None;
    }
    Some((est_cond, divergence.clamp(0.0, 1.0)))
}

/// The value range a filter predicate admits, when expressible (None for
/// `<>`). Open sides use wide sentinels that stay overflow-safe in bucket
/// arithmetic.
pub(crate) fn filter_bounds(pred: &Predicate) -> Option<(i64, i64)> {
    use sqe_engine::CmpOp;
    const LO: i64 = i64::MIN / 4;
    const HI: i64 = i64::MAX / 4;
    match *pred {
        Predicate::Range { lo, hi, .. } => Some((lo, hi)),
        Predicate::Filter { op, value, .. } => match op {
            CmpOp::Lt => Some((LO, value - 1)),
            CmpOp::Le => Some((LO, value)),
            CmpOp::Gt => Some((value + 1, HI)),
            CmpOp::Ge => Some((value, HI)),
            CmpOp::Eq => Some((value, value)),
            CmpOp::Neq => None,
        },
        Predicate::Join { .. } => None,
    }
}

/// Magic-constant estimate when no statistic exists.
fn default_filter_selectivity(pred: &Predicate) -> f64 {
    use sqe_engine::CmpOp;
    match *pred {
        Predicate::Range { .. } => DEFAULT_RANGE_SEL,
        Predicate::Filter { op, .. } => match op {
            CmpOp::Eq => DEFAULT_EQ_SEL,
            CmpOp::Neq => 1.0 - DEFAULT_EQ_SEL,
            _ => DEFAULT_RANGE_SEL,
        },
        Predicate::Join { .. } => DEFAULT_EQ_SEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// r(a, x) ⋈ s(y, b): r.a correlated with fan-out (a=1 rows match 4×).
    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .column("b", vec![1, 2, 3, 4, 5, 6])
                .build()
                .unwrap(),
        );
        db
    }

    fn full_catalog(db: &Database) -> SitCatalog {
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
            cat.add(Sit::build(db, col, vec![join]).unwrap());
        }
        cat
    }

    fn base_catalog(db: &Database) -> SitCatalog {
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
        }
        cat
    }

    fn query(_db: &Database) -> SpjQuery {
        SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        ])
        .unwrap()
    }

    #[test]
    fn empty_set_is_identity() {
        let db = skewed_db();
        let cat = base_catalog(&db);
        let q = query(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        assert_eq!(est.get_selectivity(PredSet::EMPTY), (1.0, 0.0));
    }

    #[test]
    fn single_filter_matches_base_histogram() {
        let db = skewed_db();
        let cat = base_catalog(&db);
        let q = query(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        // p1 = (r.a = 1): true selectivity 2/6.
        let (sel, err) = est.get_selectivity(PredSet::singleton(1));
        assert!((sel - 1.0 / 3.0).abs() < 1e-9, "sel {sel}");
        assert_eq!(err, 0.0, "unconditioned base estimate has no assumptions");
    }

    #[test]
    fn sits_fix_the_skewed_conditional() {
        // True Sel(a=1 ∧ join) = 8/36. Independence says (1/3)·(6/36)=2/36.
        // With SIT(a|join), getSelectivity should find ≈ 8/36.
        let db = skewed_db();
        let q = query(&db);

        let base_cat = base_catalog(&db);
        let mut base_est = SelectivityEstimator::new(&db, &q, &base_cat, ErrorMode::NInd);
        let base = base_est.selectivity();

        let full_cat = full_catalog(&db);
        let mut sit_est = SelectivityEstimator::new(&db, &q, &full_cat, ErrorMode::NInd);
        let with_sits = sit_est.selectivity();

        let truth = 8.0 / 36.0;
        assert!(
            (with_sits - truth).abs() < (base - truth).abs(),
            "SITs must improve: base {base}, sits {with_sits}, truth {truth}"
        );
        assert!((with_sits - truth).abs() < 0.02, "sit estimate {with_sits}");
    }

    #[test]
    fn error_zero_when_sits_cover_everything() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (_, err) = est.get_selectivity(est.context().all());
        // Decomposition Sel(a=1|join)·Sel(join) with SIT(a|join): the
        // filter link is fully covered and the join link unconditioned.
        assert_eq!(err, 0.0);
    }

    #[test]
    fn memoization_reuses_subset_work() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.selectivity();
        let calls_after_first = est.stats().vm_calls;
        // Every subset of the query is already memoized: further requests
        // are free.
        est.get_selectivity(PredSet::singleton(0));
        est.get_selectivity(PredSet::singleton(1));
        est.selectivity();
        assert_eq!(est.stats().vm_calls, calls_after_first);
    }

    #[test]
    fn separable_sets_multiply() {
        // Two filters on different tables, no join: Sel must factor.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
            Predicate::filter(c(1, 1), CmpOp::Le, 2),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (s01, _) = est.get_selectivity(est.context().all());
        let (s0, _) = est.get_selectivity(PredSet::singleton(0));
        let (s1, _) = est.get_selectivity(PredSet::singleton(1));
        assert!((s01 - s0 * s1).abs() < 1e-12);
    }

    #[test]
    fn cardinality_scales_by_cross_product() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let all = est.context().all();
        let card = est.cardinality(all);
        let (sel, _) = est.get_selectivity(all);
        assert!((card - sel * 36.0).abs() < 1e-9);
    }

    #[test]
    fn opt_mode_beats_or_matches_nind() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let truth = 8.0 / 36.0;
        let mut nind = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let mut opt = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Opt);
        let e_nind = (nind.selectivity() - truth).abs();
        let e_opt = (opt.selectivity() - truth).abs();
        assert!(
            e_opt <= e_nind + 1e-9,
            "Opt ({e_opt}) must not lose to nInd ({e_nind})"
        );
    }

    #[test]
    fn diff_mode_prefers_divergent_sits() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let truth = 8.0 / 36.0;
        let sel = est.selectivity();
        assert!((sel - truth).abs() < 0.02, "diff-mode estimate {sel}");
    }

    #[test]
    fn fallback_without_any_statistics() {
        let db = skewed_db();
        let q = query(&db);
        let empty = SitCatalog::new();
        let mut est = SelectivityEstimator::new(&db, &q, &empty, ErrorMode::NInd);
        let (sel, err) = est.get_selectivity(est.context().all());
        assert!(sel > 0.0 && sel <= 1.0);
        assert!(err > 0.0, "defaults must carry positive error");
    }

    #[test]
    fn h3_mechanism_estimates_filter_on_join_attribute() {
        // Filter on r.x (the join attribute): H3 = join of SIT(x|·) with
        // SIT(y|·) gives the x-distribution over the join; the estimate is
        // conditioned on the join without extra assumptions.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 1), CmpOp::Eq, 10),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (sel, err) = est.get_selectivity(est.context().all());
        // Truth: join is 8 of 36 tuples; among them x=10 in 8 → Sel=8/36·1
        // ... join tuples with x=10: r rows {0,1} × s rows {0,1,2,3} = 8.
        let truth = 8.0 / 36.0;
        assert!((sel - truth).abs() < 0.05, "H3 estimate {sel} vs {truth}");
        assert_eq!(err, 0.0, "H3 covers the entire conditioning set");
    }

    #[test]
    fn sit_driven_pruning_preserves_sit_usage() {
        // §3.4: with pruning, the decomposition that exploits the SIT must
        // still be found.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut full = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let mut pruned =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit_driven_pruning();
        let all = full.context().all();
        let (sel_full, _) = full.get_selectivity(all);
        let (sel_pruned, _) = pruned.get_selectivity(all);
        assert!(
            (sel_full - sel_pruned).abs() < 1e-9,
            "pruned {sel_pruned} vs full {sel_full}"
        );
        // And the pruned search does no more work than the full one.
        assert!(pruned.stats().peel_entries <= full.stats().peel_entries);
    }

    #[test]
    fn sit_driven_pruning_with_empty_catalog_still_estimates() {
        let db = skewed_db();
        let q = query(&db);
        let empty = SitCatalog::new();
        let mut est =
            SelectivityEstimator::new(&db, &q, &empty, ErrorMode::NInd).with_sit_driven_pruning();
        let all = est.context().all();
        let (sel, _) = est.get_selectivity(all);
        assert!(sel > 0.0 && sel <= 1.0);
    }

    #[test]
    fn sit_driven_pruning_ignores_foreign_sits() {
        // A SIT over predicates not in this query must not enter the
        // pruning mask set.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![Predicate::filter(c(0, 0), CmpOp::Eq, 1)]).unwrap();
        let cat = full_catalog(&db); // contains join-conditioned SITs
        let est =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd).with_sit_driven_pruning();
        let masks = est.sit_driven.as_ref().unwrap();
        assert!(
            masks.is_empty(),
            "join SITs are unusable for a join-free query"
        );
    }

    #[test]
    fn sit2_carried_h3_fixes_filter_through_join() {
        // Filter on r.a, joined through r.x = s.y: the 2-D grid over
        // (r.x, r.a) carries the true conditional, even with only base 1-D
        // statistics available.
        let db = skewed_db();
        let q = query(&db);
        let cat = base_catalog(&db);
        let mut sit2s = crate::sit2::Sit2Catalog::new();
        sit2s.add(crate::sit2::Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap());
        let mut est =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit2_catalog(&sit2s);
        let all = est.context().all();
        let (sel, _) = est.get_selectivity(all);
        let truth = 8.0 / 36.0;
        assert!(
            (sel - truth).abs() < 0.01,
            "2-D estimate {sel} vs truth {truth}"
        );
        // Without the grid the same catalog underestimates.
        let mut base_only = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let (base_sel, _) = base_only.get_selectivity(all);
        assert!((base_sel - truth).abs() > (sel - truth).abs());
    }

    #[test]
    fn sit2_filter_on_filter_captures_correlation() {
        // r.a and r.x are perfectly correlated; a query with filters on
        // both is mis-estimated under independence but exact with the grid.
        // (Rows are replicated so the correlation clears the estimator's
        // statistical-significance gate.)
        let mut db = Database::new();
        let rep = |v: &[i64]| -> Vec<i64> {
            v.iter().flat_map(|&x| std::iter::repeat_n(x, 20)).collect()
        };
        db.add_table(
            sqe_engine::table::TableBuilder::new("r")
                .column("a", rep(&[1, 1, 2, 2, 3, 3]))
                .column("x", rep(&[10, 10, 20, 20, 30, 30]))
                .build()
                .unwrap(),
        );
        db.add_table(
            sqe_engine::table::TableBuilder::new("s")
                .column("y", rep(&[10, 10, 10, 10, 20, 30]))
                .column("b", rep(&[1, 2, 3, 4, 5, 6]))
                .build()
                .unwrap(),
        );
        let q = SpjQuery::from_predicates(vec![
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
            Predicate::filter(c(0, 1), CmpOp::Eq, 10),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut sit2s = crate::sit2::Sit2Catalog::new();
        sit2s.add(crate::sit2::Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap());
        let truth = 2.0 / 6.0; // both filters select the same two rows
        let mut with_grid =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit2_catalog(&sit2s);
        let all = with_grid.context().all();
        let (sel2, _) = with_grid.get_selectivity(all);
        assert!((sel2 - truth).abs() < 0.01, "grid estimate {sel2}");
        let mut indep = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let (sel1, _) = indep.get_selectivity(all);
        // Independence: (1/3)·(1/3) = 1/9 ≠ 1/3.
        assert!((sel1 - 1.0 / 9.0).abs() < 0.01, "independence {sel1}");
    }

    #[test]
    fn stats_track_timing_and_memo_sizes() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.selectivity();
        let stats = est.stats();
        assert!(stats.memo_entries >= 3);
        assert!(stats.peel_entries >= 2);
        assert!(stats.vm_calls > 0);
    }

    #[test]
    fn stats_report_occupied_slots_not_capacity() {
        // The dense memo holds 2ⁿ slots and the flat peel table ≥ 64; the
        // 2-predicate query computes exactly 3 subsets, and the counts must
        // reflect that — identically under both engines.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut dense = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd)
            .with_strategy(DpStrategy::Dense);
        dense.selectivity();
        assert_eq!(
            dense.stats().memo_entries,
            3,
            "occupied, not the 4-slot table"
        );
        let mut rec = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd)
            .with_strategy(DpStrategy::Recursive);
        rec.selectivity();
        assert_eq!(rec.stats().memo_entries, 3);
        assert_eq!(dense.stats().peel_entries, rec.stats().peel_entries);
        assert!(
            dense.stats().peel_entries < 64,
            "peel count must not report the table's minimum capacity"
        );
    }

    #[test]
    fn strategies_are_bit_identical_on_fixtures() {
        // Deterministic spot-check (the broad randomized version lives in
        // tests/dense_engine.rs): every subset of both fixture queries, all
        // engines, identical bits.
        let db = skewed_db();
        let cat = full_catalog(&db);
        for q in [
            query(&db),
            SpjQuery::from_predicates(vec![
                Predicate::join(c(0, 1), c(1, 0)),
                Predicate::filter(c(0, 0), CmpOp::Eq, 1),
                Predicate::filter(c(1, 1), CmpOp::Le, 3),
                Predicate::filter(c(0, 1), CmpOp::Ge, 10),
            ])
            .unwrap(),
        ] {
            for mode in [ErrorMode::NInd, ErrorMode::Diff] {
                let mut dense =
                    SelectivityEstimator::new(&db, &q, &cat, mode).with_strategy(DpStrategy::Dense);
                let mut rec = SelectivityEstimator::new(&db, &q, &cat, mode)
                    .with_strategy(DpStrategy::Recursive);
                let n = q.predicates.len();
                for mask in 1u32..(1 << n) {
                    let p = PredSet(mask);
                    let (sd, ed) = dense.get_selectivity(p);
                    let (sr, er) = rec.get_selectivity(p);
                    assert_eq!(sd.to_bits(), sr.to_bits(), "sel mask {mask:#b}");
                    assert_eq!(ed.to_bits(), er.to_bits(), "err mask {mask:#b}");
                }
            }
        }
    }

    #[test]
    fn sit_driven_pruning_identical_across_strategies() {
        // The dense engine's subset-OR prune table must keep exactly the
        // decompositions the mask loop keeps.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut dense = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense)
            .with_sit_driven_pruning();
        let mut rec = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Recursive)
            .with_sit_driven_pruning();
        let (sd, ed) = dense.get_selectivity(dense.context().all());
        let (sr, er) = rec.get_selectivity(rec.context().all());
        assert_eq!(sd.to_bits(), sr.to_bits());
        assert_eq!(ed.to_bits(), er.to_bits());
        assert_eq!(dense.stats().peel_entries, rec.stats().peel_entries);
    }
}

//! Algorithm `getSelectivity` (Figure 3): the memoized dynamic program that
//! returns the most accurate decomposition of `Sel_R(P)` for a monotonic,
//! algebraic error function.
//!
//! ## Structure
//!
//! `get_selectivity(P)` follows the paper line by line:
//!
//! 1. memo lookup (lines 1–2);
//! 2. if `Sel(P)` is *separable*, recurse on the factors of its standard
//!    decomposition and combine (lines 3–7);
//! 3. otherwise enumerate every atomic decomposition `Sel(P′|Q)·Sel(Q)`
//!    with `P′ ⊆ P`, recursively solve `Sel(Q)`, locally pick the best SITs
//!    for the conditional factor, and keep the decomposition minimizing the
//!    merged error (lines 8–17);
//! 4. memoize and return (lines 18–19).
//!
//! ## Unidimensional factors
//!
//! Like the paper's own experiments, this reproduction uses unidimensional
//! SITs, so a factor `Sel(P′|Q)` with several predicates is approximated by
//! expanding it into the implicit chain
//! `Sel(p₁|p₂…pₘ,Q) · Sel(p₂|p₃…pₘ,Q) · … · Sel(pₘ|Q)` (Example 3's
//! "implicitly applying an atomic decomposition"; joins first, then
//! filters), each link estimated with its own best SIT. Per-link results
//! are memoized on `(predicate, conditioning-set)`, which keeps the `O(3ⁿ)`
//! subset walk cheap: each of the at most `n·2ⁿ` links is estimated once.
//!
//! The `H3` mechanism of §3.3 is supported: a filter on a join attribute
//! may be estimated from the *result histogram* of joining the two side
//! SITs, which covers the join predicate in the conditioning set without
//! any independence assumption.
//!
//! ## The dense subset-lattice engine
//!
//! The DP runs in one of two modes, chosen from `n` at construction (see
//! [`DpStrategy`]):
//!
//! * **Dense** (`n ≤ 16` under `Auto`): the memo is a flat `2ⁿ`-slot
//!   [`DenseMemo`] indexed directly by mask, standard decompositions come
//!   from a memoized per-mask [`ComponentTable`], and the lattice is filled
//!   **bottom-up in ascending popcount order** per non-separable component
//!   (every `Sel(Q)` a subset walk reads has fewer predicates than the mask
//!   being solved, so it is already a plain indexed load). §3.4 pruning
//!   becomes one AND against a subset-OR table.
//! * **Recursive** (large `n`): the original top-down recursion, with the
//!   `HashMap` memo replaced by an open-addressed [`FlatMemo`].
//!
//! Both engines are **bit-identical**: every memo state's value is a pure
//! function of its sub-states' values, the non-separable subset walk runs
//! the same descending-submask order with the same strict-`<` tie-break,
//! and separable products multiply components in the same ascending order —
//! so visiting the identical state set in a different topological order
//! reproduces the identical `f64`s (the property `tests/dense_engine.rs`
//! pins and the 8-thread determinism suite relies on).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use sqe_engine::{CardinalityOracle, ColRef, Database, Predicate, SpjQuery};
use sqe_histogram::Histogram;

use crate::backend::{DiffBackend, SelectivityBackend};
use crate::beam::{BeamConfig, BeamStats, Scored};
use crate::budget::{BudgetMeter, ExhaustReason};
use crate::cache::SharedEstimatorCache;
use crate::decomposition::ComponentTable;
use crate::error::ErrorMode;
use crate::flat::{peel_key, DenseMemo, FlatMemo, PeelMemo};
use crate::link::{CandIndex, LinkCtx, LinkState, DEFAULT_RANGE_SEL};
use crate::matcher::SitMatcher;
use crate::par::{Claim, ClaimError, OnceMap};
use crate::predset::{PredSet, QueryContext};
use crate::sit::{SitCatalog, SitId};
use crate::sit2::{Sit2Catalog, Sit2Id};
use crate::steal::{AbortOnExit, FillStats, StealScheduler, WorkerStats};

pub(crate) use crate::link::filter_bounds;

/// Default group-count cap when no statistic exists for a grouping
/// attribute.
pub(crate) const DEFAULT_GROUPS: f64 = 100.0;
/// Minimum number of same-rank masks per worker before the dense fill
/// spawns threads: below this, scope setup and link-state forking cost
/// more than the rank's arithmetic (small components stay serial).
const PAR_MIN_MASKS_PER_WORKER: usize = 8;

/// Lattice size (`2^|component|`) at or above which [`FillSchedule::Auto`]
/// engages the work-stealing fill. Below it the fill stays serial: measured
/// on this workload, a component under ~2048 masks finishes its whole
/// lattice in well under the time the fill needs to allocate scheduler
/// state, fork link caches, and spawn a thread scope — parallelism there is
/// pure oversubscription (the regression the committed single-core
/// BENCH_estimator numbers exhibited at 0.55–0.66× serial). `2048` masks
/// means components of **11+ predicates** parallelize; anything smaller
/// runs the brutal serial path.
pub const WS_MIN_LATTICE_MASKS: usize = 2048;

/// Above the [`WS_MIN_LATTICE_MASKS`] threshold, grant one worker per this
/// many lattice masks (so a 2048-mask component gets at most 2 workers, a
/// 65 536-mask one up to 64) before capping at the configured thread count.
const WS_MASKS_PER_WORKER: usize = 1024;

/// `Auto` uses the dense engine up to this many predicates (a `2¹⁶`-slot
/// value table is 1 MiB — cheap next to the `3ⁿ` walk it accelerates).
const DENSE_AUTO_MAX: usize = 16;
/// Hard ceiling for [`DpStrategy::Dense`]: past this the `2ⁿ` tables cost
/// real memory (2²⁰ slots ≈ 16 MiB) and the request falls back to the
/// recursive engine.
const DENSE_HARD_MAX: usize = 20;

/// How the subset-lattice DP materializes its memo (see the module docs).
/// Every strategy returns bit-identical results; only speed and memory
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DpStrategy {
    /// Dense for `n ≤ 16`, recursive above — the right call unless
    /// benchmarking one engine specifically.
    #[default]
    Auto,
    /// Force the flat `2ⁿ` tables (capped at `n ≤ 20`; larger queries fall
    /// back to recursive regardless).
    Dense,
    /// Force the top-down recursion with open-addressed memos. Exact at
    /// any `n`, but the walk is O(3ⁿ) — past `n = 20` expect seconds to
    /// hours per query. Serial: `dp_threads` is ignored (surfaced via
    /// [`FillStats::dp_threads_ignored`]).
    Recursive,
    /// Force the beam-search approximate engine (see [`crate::beam`]):
    /// bounded-frontier best-first decomposition search on the sparse
    /// memo, exact only at [`BeamConfig::UNBOUNDED`]. What `Auto` routes
    /// `n > 20` to instead of the recursive cliff.
    Beam,
}

impl DpStrategy {
    /// Whether an `n`-predicate query runs on the dense tables.
    fn use_dense(self, n: usize) -> bool {
        match self {
            DpStrategy::Auto => n <= DENSE_AUTO_MAX,
            DpStrategy::Dense => n <= DENSE_HARD_MAX,
            DpStrategy::Recursive | DpStrategy::Beam => false,
        }
    }

    /// Whether an `n`-predicate query runs on the beam-search approximate
    /// engine. `Auto` stays exact through `n = 20` (dense to 16, recursive
    /// above) and routes wider queries to the beam — an *approximate*
    /// answer in bounded time instead of an exact one in O(3ⁿ); the
    /// quality ladder labels such answers [`crate::Quality::Beam`].
    pub fn use_beam(self, n: usize) -> bool {
        match self {
            DpStrategy::Auto => n > DENSE_HARD_MAX,
            DpStrategy::Beam => true,
            DpStrategy::Dense | DpStrategy::Recursive => false,
        }
    }
}

/// How the dense engine parallelizes a component fill when
/// `dp_threads ≥ 2`. Every schedule is **bit-identical** to the serial
/// fill (values, memo/peel entry sets, `vm_calls`); only scheduling and
/// therefore speed differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillSchedule {
    /// Work-stealing for components of [`WS_MIN_LATTICE_MASKS`] or more
    /// lattice masks, serial below — the measured-threshold heuristic that
    /// keeps small queries off the scheduler entirely (see the constant's
    /// docs for the measurement rationale).
    #[default]
    Auto,
    /// The historical rank-synchronous fill: one barrier per popcount
    /// rank. Kept for comparison benchmarks and the schedule-equivalence
    /// proptests; loses to work-stealing on skewed ranks.
    RankBarrier,
    /// Work-stealing regardless of component size (tests force it so the
    /// scheduler is exercised at small `n`).
    WorkStealing,
}

/// Instrumentation counters exposed by the estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EstimatorStats {
    /// View-matching calls issued (Figure 6's unit of work).
    pub vm_calls: u64,
    /// Entries in the subset memo (`Sel(P)` values computed).
    pub memo_entries: usize,
    /// Entries in the per-link memo (single-predicate conditional factors).
    pub peel_entries: usize,
    /// Time spent manipulating histograms (Figure 8's "histogram
    /// manipulation" component; the rest of wall time is "decomposition
    /// analysis").
    pub histogram_time: Duration,
}

/// Builds a [`LinkCtx`] from the estimator's immutable fields. A macro —
/// not a method — so every call site performs plain disjoint field
/// accesses, leaving `links`, `oracle`, and the memo tables free for
/// simultaneous `&mut` borrows.
macro_rules! link_ctx {
    ($est:expr) => {
        LinkCtx {
            db: $est.db,
            ctx: &$est.ctx,
            catalog: $est.matcher.catalog(),
            mode: $est.mode,
            cand_index: &$est.cand_index,
            sit_cond_masks: &$est.sit_cond_masks,
            sit2: $est.sit2,
            sit2_index: &$est.sit2_index,
            shared: $est.shared,
            backend: &*$est.backend,
        }
    };
}

/// The `getSelectivity` dynamic program for one query.
///
/// The estimator is stateful: the memoization table persists across
/// requests, so during the optimization of a single query every sub-plan's
/// selectivity request after the first reuses prior work (the integration
/// property §4 relies on).
pub struct SelectivityEstimator<'a> {
    db: &'a Database,
    ctx: QueryContext,
    matcher: SitMatcher<'a>,
    mode: ErrorMode,
    /// Mask-based §3.3 candidate index: for every attribute the query's
    /// predicates mention, the catalog's `for_attr` list restricted to SITs
    /// whose condition lies inside this query's predicate set, each paired
    /// with that condition as a mask over the query's predicate indices.
    /// Applicability (`cond ⊆ cset`) and maximality then reduce to bitwise
    /// tests — no predicate materialization or comparisons on the peel path.
    cand_index: CandIndex,
    /// Condition mask per usable SIT (the same masks as `cand_index`, keyed
    /// by id for the `H3` coverage computation).
    sit_cond_masks: HashMap<SitId, u32>,
    /// Mask-based index over the two-attribute SITs, keyed by the `y`
    /// attribute (built when a [`Sit2Catalog`] is attached).
    sit2_index: HashMap<ColRef, Vec<(Sit2Id, u32)>>,
    /// The peel machinery's memoization state (value caches + counters),
    /// separated so worker threads can fork it — see [`crate::link`].
    links: LinkState,
    /// Dense subset memo (flat `2ⁿ` table), present iff the resolved
    /// strategy is dense. Exactly one of `memo_dense`/`memo_sparse` holds
    /// this query's `Sel(P)` values.
    memo_dense: Option<DenseMemo>,
    /// Subset memo of the recursive engine (open-addressed, keyed by mask).
    memo_sparse: FlatMemo,
    /// Per-mask standard decompositions, memoized (dense engine only).
    comp_table: Option<ComponentTable>,
    /// Per-link memo keyed by `peel_key(i, cset)` — dense `n·2ⁿ` slots
    /// when the dense engine runs at small `n` (the subset walk probes it
    /// hundreds of millions of times at `n = 16`), open-addressed
    /// otherwise.
    peel_memo: PeelMemo,
    /// The resolved strategy (drives the per-request engine dispatch; the
    /// memo layouts above are its materialization).
    strategy: DpStrategy,
    /// Knobs of the beam-search approximate engine (only consulted when
    /// `strategy.use_beam(n)` holds).
    beam_cfg: BeamConfig,
    /// Beam-search observability, cumulative over the estimator's
    /// requests (see [`Self::beam_stats`]).
    beam_stats: BeamStats,
    /// §3.4 guidance masks `(attribute mask, condition mask)` reused by
    /// the beam engine as a candidate *generator*; built lazily on the
    /// first beam expansion (independent of the pruning toggle).
    beam_guidance: Option<Vec<(u32, u32)>>,
    /// Live conditioning-set recursion depth of the beam walk (feeds
    /// `BeamStats::frontier_peak`).
    beam_depth: usize,
    oracle: Option<CardinalityOracle<'a>>,
    /// Optional multidimensional SITs (§3.3's `SIT(x, X|Q)`), consulted by
    /// filter peels for carried-`H3` and filter-on-filter estimates.
    sit2: Option<&'a Sit2Catalog>,
    /// Worker threads for the parallel dense fill (1 = serial). Set via
    /// [`Self::with_dp_threads`]; ignored — with
    /// [`FillStats::dp_threads_ignored`] raised — by the recursive and
    /// beam engines, and under `Opt` mode (the oracle is inherently
    /// sequential).
    dp_threads: usize,
    /// Which parallel fill runs when `dp_threads ≥ 2` (see
    /// [`FillSchedule`]).
    fill_schedule: FillSchedule,
    /// Cumulative work-stealing fill instrumentation (see
    /// [`Self::fill_stats`]).
    fill_stats: FillStats,
    /// §3.4's optional SIT-driven pruning: when set, the subset loop skips
    /// atomic decompositions that no available SIT could improve.
    sit_driven: Option<Vec<(u32, u32)>>,
    /// Subset-OR rollup of `sit_driven` (dense engine only, built lazily):
    /// `prune_table[q]` ORs the attribute masks of every SIT whose
    /// condition fits inside `q`, turning the §3.4 skip test into a single
    /// AND.
    prune_table: Option<Vec<u32>>,
    /// Optional cross-query cache, consulted after the per-query memos
    /// miss and written back on every computed link / join product (see
    /// [`crate::cache`] for the validity contract).
    shared: Option<&'a dyn SharedEstimatorCache>,
    /// Optional resource meter (see [`crate::budget`]): DP loops charge it
    /// — one unit per lattice mask solved plus one per freshly computed
    /// peel — and unwind with [`ExhaustReason`] once it trips. `None`
    /// leaves every path bit-identical to the unbudgeted estimator.
    meter: Option<Arc<BudgetMeter>>,
    /// The atomic-estimate backend consulted at the top of every peel (see
    /// [`crate::backend`]). The default [`DiffBackend`] intercepts nothing,
    /// leaving every path bit-identical to the pre-trait estimator.
    backend: Arc<dyn SelectivityBackend>,
}

impl<'a> SelectivityEstimator<'a> {
    /// Creates an estimator for `query` using the SITs in `catalog` ranked
    /// by `mode`. `ErrorMode::Opt` constructs an internal true-cardinality
    /// oracle (it is only of theoretical interest, per §5).
    pub fn new(
        db: &'a Database,
        query: &SpjQuery,
        catalog: &'a SitCatalog,
        mode: ErrorMode,
    ) -> Self {
        let oracle = matches!(mode, ErrorMode::Opt).then(|| CardinalityOracle::new(db));
        let ctx = QueryContext::new(db, query);
        let (cand_index, sit_cond_masks) = build_cand_index(catalog, ctx.predicates());
        let mut est = SelectivityEstimator {
            db,
            ctx,
            matcher: SitMatcher::new(catalog),
            mode,
            cand_index,
            sit_cond_masks,
            sit2_index: HashMap::new(),
            links: LinkState::new(),
            memo_dense: None,
            memo_sparse: FlatMemo::new(),
            comp_table: None,
            peel_memo: PeelMemo::sparse(),
            strategy: DpStrategy::Auto,
            beam_cfg: BeamConfig::default(),
            beam_stats: BeamStats::default(),
            beam_guidance: None,
            beam_depth: 0,
            oracle,
            sit2: None,
            dp_threads: 1,
            fill_schedule: FillSchedule::default(),
            fill_stats: FillStats::default(),
            sit_driven: None,
            prune_table: None,
            shared: None,
            meter: None,
            backend: Arc::new(DiffBackend),
        };
        est.apply_strategy(DpStrategy::Auto);
        est
    }

    /// Replaces the atomic-estimate backend (see [`crate::backend`]).
    /// Passing [`DiffBackend`] explicitly is bit-identical — values and
    /// instrumentation counts — to the default construction.
    pub fn with_backend(mut self, backend: Arc<dyn SelectivityBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the DP engine explicitly (see [`DpStrategy`]). Resets the
    /// subset memo; call before the first estimation.
    pub fn with_strategy(mut self, strategy: DpStrategy) -> Self {
        self.apply_strategy(strategy);
        self
    }

    /// Sets the worker-thread count for the dense engine's parallel
    /// lattice fill (the [`DpStrategy`]-level parallelism knob; `1` — the
    /// default — keeps the fill serial). Under the default
    /// [`FillSchedule::Auto`], components of [`WS_MIN_LATTICE_MASKS`] or
    /// more lattice masks run the dependency-counted work-stealing fill
    /// (see `DESIGN.md` §4h) and smaller ones stay serial; results are
    /// **bit-identical** to the serial fill either way. `Opt` mode stays
    /// serial regardless (its cardinality oracle is inherently
    /// sequential), as do the recursive and beam engines — when one of
    /// those runs with `threads ≥ 2` the knob is ignored and
    /// [`FillStats::dp_threads_ignored`] is raised so the configuration
    /// mismatch is observable.
    pub fn with_dp_threads(mut self, threads: usize) -> Self {
        self.dp_threads = threads.max(1);
        self
    }

    /// Selects the parallel fill schedule (see [`FillSchedule`]); only
    /// observable when `dp_threads ≥ 2`.
    pub fn with_fill_schedule(mut self, schedule: FillSchedule) -> Self {
        self.fill_schedule = schedule;
        self
    }

    /// Sets the beam-search knobs (see [`BeamConfig`]); only consulted
    /// when the resolved strategy routes this query to the beam engine.
    pub fn with_beam_config(mut self, cfg: BeamConfig) -> Self {
        self.beam_cfg = cfg;
        self
    }

    /// Whether this estimator's answers come from the beam-search
    /// approximate engine — i.e. the resolved strategy routes this query's
    /// width to the bounded-frontier walk instead of an exact lattice.
    /// Ladder and service label such answers [`crate::Quality::Beam`].
    pub fn is_beam(&self) -> bool {
        self.strategy.use_beam(self.ctx.predicates().len())
    }

    /// Beam-search instrumentation, cumulative over every request this
    /// estimator served (all zeros when the beam engine never ran). Feeds
    /// the wide-`n` diagnostics in `estimator_bench`.
    pub fn beam_stats(&self) -> &BeamStats {
        &self.beam_stats
    }

    fn apply_strategy(&mut self, strategy: DpStrategy) {
        self.strategy = strategy;
        let n = self.ctx.predicates().len();
        if strategy.use_dense(n) {
            self.memo_dense = Some(DenseMemo::new(n));
            self.comp_table = Some(ComponentTable::new(n));
        } else {
            self.memo_dense = None;
            self.comp_table = None;
        }
        // The dense peel layout needs n·2ⁿ slots — worth it exactly where
        // the dense subset walk hammers it (n ≤ 16 keeps the table ≤ 16
        // MiB; DpStrategy::Dense reaches to n = 20, where 320 MiB would
        // not be).
        self.peel_memo = if strategy.use_dense(n) && n <= DENSE_AUTO_MAX {
            PeelMemo::dense(n)
        } else {
            PeelMemo::sparse()
        };
        self.memo_sparse = FlatMemo::new();
        self.prune_table = None;
    }

    /// Attaches a shared [`BudgetMeter`]. Estimation then runs under that
    /// meter's deadline / work-quota / cancellation limits: use
    /// [`Self::try_get_selectivity`], which returns [`ExhaustReason`] when
    /// the meter trips mid-fill (the infallible [`Self::get_selectivity`]
    /// panics in that case). Rank-parallel workers poll the same meter, so
    /// one trip stops the whole fill cooperatively. Charging is amortized:
    /// the deadline clock is consulted roughly once per thousand work
    /// units, never per mask.
    pub fn with_budget_meter(mut self, meter: Arc<BudgetMeter>) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Attaches a cross-query shared cache. The estimator consults it when
    /// its own memos miss and writes every freshly computed per-link factor
    /// and SIT join product back, so concurrent and successive estimators
    /// over the same catalog snapshot reuse each other's work.
    ///
    /// The cache must only be shared among estimators with an identical
    /// configuration (database, catalogs, pruning) — see [`crate::cache`].
    pub fn with_shared_cache(mut self, cache: &'a dyn SharedEstimatorCache) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Attaches a catalog of two-attribute SITs (§3.3's multidimensional
    /// generalization). Filter peels gain two extra option families: the
    /// carried-`H3` path (grid joined against the far side of a join in
    /// the conditioning set) and filter-conditioned-on-filter estimates.
    pub fn with_sit2_catalog(mut self, catalog: &'a Sit2Catalog) -> Self {
        self.sit2 = Some(catalog);
        // Translate each grid's condition to a predicate-index mask, in
        // `for_y` order; grids conditioned on predicates outside this query
        // can never apply and are dropped (same rule as `cand_index`).
        let preds = self.ctx.predicates();
        let mut index: HashMap<ColRef, Vec<(Sit2Id, u32)>> = HashMap::new();
        for y in query_attrs(preds) {
            let mut list = Vec::new();
            for &id in catalog.for_y(y) {
                if let Some(mask) = cond_to_mask(&catalog.get(id).cond, preds) {
                    list.push((id, mask));
                }
            }
            index.insert(y, list);
        }
        self.sit2_index = index;
        self
    }

    /// Enables the §3.4 SIT-driven pruning: "if the number of available
    /// SITs is small, those SITs can drive the search for the best
    /// decomposition instead of blindly trying a large number of atomic
    /// decompositions that are known not to be successful". The subset loop
    /// then only explores decompositions `Sel(P′|Q)·Sel(Q)` for which some
    /// available non-base SIT has its attribute inside `P′` and its
    /// expression inside `Q` — plus the always-valid `P′ = P` fallback.
    ///
    /// Pruning never changes which SITs are *usable*; it may merely skip
    /// orderings whose estimates coincide with unpruned ones, so accuracy
    /// is preserved in practice while the explored space shrinks sharply.
    pub fn with_sit_driven_pruning(mut self) -> Self {
        self.sit_driven = Some(self.sit_guidance_masks());
        self.prune_table = None;
        self
    }

    /// Per usable non-base SIT, `(attribute-predicate mask, condition
    /// mask)` over this query's predicate indices — the §3.4 masks, shared
    /// by the pruning filter and the beam engine's candidate generator.
    /// SITs whose expression mentions predicates outside the query can
    /// never apply and are dropped.
    fn sit_guidance_masks(&self) -> Vec<(u32, u32)> {
        let mut masks: Vec<(u32, u32)> = Vec::new();
        let preds = self.ctx.predicates();
        for (_, sit) in self.matcher.catalog().iter() {
            if sit.is_base() {
                continue;
            }
            let Some(cond_mask) = cond_to_mask(&sit.cond, preds) else {
                continue;
            };
            let mut attr_mask = 0u32;
            for (i, p) in preds.iter().enumerate() {
                if p.columns().iter().any(|c| c == sit.attr) {
                    attr_mask |= 1 << i;
                }
            }
            if attr_mask != 0 {
                masks.push((attr_mask, cond_mask));
            }
        }
        masks.sort_unstable();
        masks.dedup();
        masks
    }

    /// The query context (predicate indexing).
    pub fn context(&self) -> &QueryContext {
        &self.ctx
    }

    /// Instrumentation snapshot. Entry counts are **occupied** slots of the
    /// flat tables, never their capacity.
    pub fn stats(&self) -> EstimatorStats {
        EstimatorStats {
            // The peel path counts its view-matching calls in the link
            // state (workers fork it); the matcher's own counter covers
            // the remaining callers (e.g. Group-By estimation).
            vm_calls: self.matcher.calls() + self.links.vm_calls,
            memo_entries: self
                .memo_dense
                .as_ref()
                .map_or(self.memo_sparse.len(), DenseMemo::len),
            peel_entries: self.peel_memo.len(),
            histogram_time: self.links.hist_time,
        }
    }

    /// Work-stealing fill instrumentation, cumulative over every parallel
    /// component fill this estimator ran (all zeros when the fills stayed
    /// serial or rank-synchronous). Feeds the scaling diagnostics in
    /// `estimator_bench`.
    pub fn fill_stats(&self) -> &FillStats {
        &self.fill_stats
    }

    /// Most accurate selectivity estimate for the full query.
    pub fn selectivity(&mut self) -> f64 {
        let all = self.ctx.all();
        self.get_selectivity(all).0
    }

    /// Estimated cardinality of the sub-query `σ_P(tables(P)^×)`.
    pub fn cardinality(&mut self, p: PredSet) -> f64 {
        let (sel, _) = self.get_selectivity(p);
        sel * self.ctx.cross_product_size(p) as f64
    }

    /// Algorithm `getSelectivity` (Figure 3): returns `(selectivity,
    /// error)` for the most accurate non-separable decomposition of
    /// `Sel(P)`. Panics if an attached [`BudgetMeter`] trips — budgeted
    /// callers use [`Self::try_get_selectivity`].
    pub fn get_selectivity(&mut self, p: PredSet) -> (f64, f64) {
        self.try_get_selectivity(p)
            .expect("budget exhausted: budgeted callers must use try_get_selectivity")
    }

    /// The fallible form of [`Self::get_selectivity`]: identical values on
    /// success, `Err` with the trip reason when the attached meter
    /// exhausts mid-computation. On `Err` the estimator's memo holds only
    /// complete, exact values (aborted masks are never committed), but the
    /// requested set is unsolved — callers degrade to a cheaper rung
    /// rather than retrying.
    pub fn try_get_selectivity(&mut self, p: PredSet) -> Result<(f64, f64), ExhaustReason> {
        if p.is_empty() {
            return Ok((1.0, 0.0));
        }
        if let Some(r) = self.memo_get(p) {
            return Ok(r);
        }
        if self.memo_dense.is_some() {
            return self.fill_dense(p);
        }
        if self.dp_threads >= 2 && self.fill_stats.dp_threads_ignored == 0 {
            // The recursive and beam engines are serial: a configured
            // thread knob buys nothing here. Surface it instead of
            // silently ignoring it (the knob only drives dense fills).
            self.fill_stats.dp_threads_ignored = 1;
        }
        if self.is_beam() {
            self.compute_beam(p)
        } else {
            self.compute_recursive(p)
        }
    }

    /// Memo probe across both layouts.
    #[inline]
    fn memo_get(&self, p: PredSet) -> Option<(f64, f64)> {
        match &self.memo_dense {
            Some(dense) => dense.get(p.0),
            None => self.memo_sparse.get(p.0 as u64),
        }
    }

    /// The memoized first standard-decomposition factor of `set` (dense
    /// engine; computes and caches on first touch).
    #[inline]
    fn first_comp(&mut self, set: PredSet) -> PredSet {
        self.comp_table
            .as_mut()
            .expect("first_comp is dense-engine only")
            .ensure(&self.ctx, set)
    }

    /// Dense engine entry point: fills the flat tables bottom-up for `p`
    /// (not yet memoized, non-empty) and returns its value.
    fn fill_dense(&mut self, p: PredSet) -> Result<(f64, f64), ExhaustReason> {
        if self.sit_driven.is_some() && self.prune_table.is_none() {
            self.build_prune_table();
        }
        let first = self.first_comp(p);
        if first == p {
            return self.fill_component(p);
        }
        // Separable (lines 4-7): solve each factor's sub-lattice, multiply
        // in ascending component order — the recursion's exact arithmetic.
        let mut sel = 1.0;
        let mut err = 0.0;
        let mut rest = p;
        while !rest.is_empty() {
            let c = self.first_comp(rest);
            rest = rest.minus(c);
            let (s, e) = match self.memo_get(c) {
                Some(r) => r,
                None => self.fill_component(c)?,
            };
            sel *= s;
            err += e;
        }
        let result = (sel, err);
        self.memo_dense
            .as_mut()
            .expect("dense engine active")
            .set(p.0, result);
        Ok(result)
    }

    /// Fills every subset of the non-separable component `comp`. The
    /// work-stealing schedule (when engaged — see [`Self::steal_workers`])
    /// orders masks by dependency counting; the serial and rank-barrier
    /// paths fill in ascending popcount order. Either way each mask's
    /// dependencies (its proper subsets) are complete before it is solved,
    /// so every `Sel(Q)` the subset walk needs is a plain indexed load by
    /// the time it is read.
    fn fill_component(&mut self, comp: PredSet) -> Result<(f64, f64), ExhaustReason> {
        let stealers = self.steal_workers(comp);
        if stealers >= 2 {
            return self.fill_component_stealing(comp, stealers);
        }
        for k in 1..=comp.len() {
            let pending: Vec<PredSet> = {
                let memo = self.memo_dense.as_ref().expect("dense engine active");
                comp.subsets_of_size(k)
                    .filter(|m| !memo.contains(m.0))
                    .collect()
            };
            let workers = self.rank_workers(pending.len());
            if workers >= 2 {
                self.fill_rank_parallel(&pending, workers)?;
            } else {
                for &m in &pending {
                    let result = self.solve_mask(m)?;
                    self.memo_dense
                        .as_mut()
                        .expect("dense engine active")
                        .set(m.0, result);
                }
            }
        }
        Ok(self
            .memo_get(comp)
            .expect("comp is its own final popcount rank"))
    }

    /// Worker count for the work-stealing fill of `comp`, or `1` when the
    /// fill should not steal: serial knob, `Opt` mode (the cardinality
    /// oracle executes queries through `&mut` state), the rank-barrier
    /// schedule, or — under [`FillSchedule::Auto`] — a component below the
    /// [`WS_MIN_LATTICE_MASKS`] threshold, which runs serially instead of
    /// oversubscribing (the satellite heuristic; measured rationale on the
    /// constant).
    fn steal_workers(&self, comp: PredSet) -> usize {
        if self.dp_threads <= 1 || self.oracle.is_some() {
            return 1;
        }
        let lattice = 1usize << comp.len();
        match self.fill_schedule {
            FillSchedule::RankBarrier => 1,
            FillSchedule::WorkStealing => self.dp_threads.min(lattice.saturating_sub(1)).max(1),
            FillSchedule::Auto => {
                if lattice >= WS_MIN_LATTICE_MASKS {
                    self.dp_threads.min(lattice / WS_MASKS_PER_WORKER)
                } else {
                    1
                }
            }
        }
    }

    /// Worker count for one rank of the rank-barrier fill: the configured
    /// thread knob, scaled down so every worker has at least
    /// [`PAR_MIN_MASKS_PER_WORKER`] masks (tiny ranks stay serial), and
    /// forced serial in `Opt` mode and under every other schedule (Auto's
    /// small-component fallback is *serial*, not rank-parallel).
    fn rank_workers(&self, pending: usize) -> usize {
        if self.fill_schedule != FillSchedule::RankBarrier
            || self.dp_threads <= 1
            || self.oracle.is_some()
        {
            return 1;
        }
        self.dp_threads
            .min(pending / PAR_MIN_MASKS_PER_WORKER)
            .max(1)
    }

    /// Fills `comp`'s lattice with the dependency-counted work-stealing
    /// scheduler (see [`crate::steal`] for the design and the memory-order
    /// argument). Bit-identity with the serial fill holds for the same
    /// reasons as the rank-barrier fill's — per-mask ownership, reads only
    /// of completed dependencies, exactly-once peels through one
    /// [`OnceMap`], pure forked link caches — with the rank barrier's
    /// "memo holds exactly the ranks below" invariant replaced by the
    /// dependency counts (a popped mask's every proper subset has
    /// completed, by induction over the counter protocol).
    ///
    /// On a budget trip or worker panic the fill aborts and commits
    /// **nothing** — no solved masks, no claimed peels — so the memo only
    /// ever holds complete, exact values.
    fn fill_component_stealing(
        &mut self,
        comp: PredSet,
        workers: usize,
    ) -> Result<(f64, f64), ExhaustReason> {
        // Workers probe the component table read-only: pre-ensure every
        // standard-decomposition chain any subset of comp may walk.
        let mut s = comp.0;
        while s != 0 {
            let mut rest = PredSet(s);
            while !rest.is_empty() {
                rest = rest.minus(self.first_comp(rest));
            }
            s = (s - 1) & comp.0;
        }
        let sched = StealScheduler::new(comp.0, workers);
        sched.seed();
        let mut forks: Vec<LinkState> = (0..workers).map(|_| self.links.fork()).collect();
        let once = OnceMap::new();
        let meter_arc = self.meter.clone();
        let locals: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::with_capacity(workers));
        {
            let lc = link_ctx!(self);
            let dense: &DenseMemo = self.memo_dense.as_ref().expect("dense engine active");
            let comps: &ComponentTable = self.comp_table.as_ref().expect("dense engine active");
            let prune: Option<&[u32]> = self.prune_table.as_deref();
            let base_peel: &PeelMemo = &self.peel_memo;
            let meter: Option<&BudgetMeter> = meter_arc.as_deref();
            let (lc, once, sched, locals) = (&lc, &once, &sched, &locals);
            std::thread::scope(|scope| {
                for (w, st) in forks.iter_mut().enumerate() {
                    scope.spawn(move || {
                        let guard = AbortOnExit::new(sched);
                        let mut stats = WorkerStats::default();
                        let mut local = FlatMemo::new();
                        let mut ready = Vec::new();
                        let mut inline = Vec::new();
                        let mut batch = Vec::new();
                        'fill: loop {
                            if sched.aborted() {
                                break;
                            }
                            let popped = sched.pop(w).or_else(|| {
                                let stolen = sched.steal(w);
                                if stolen.is_some() {
                                    stats.steals += 1;
                                }
                                stolen
                            });
                            let Some(first) = popped else {
                                if sched.done() {
                                    break;
                                }
                                stats.idle_spins += 1;
                                std::thread::yield_now();
                                continue;
                            };
                            // Process the popped mask, then any no-op
                            // cascade it releases, off a local stack —
                            // pre-memoized regions never touch the deques.
                            inline.push(first);
                            while let Some(cur) = inline.pop() {
                                let mask = PredSet(cur);
                                let value = match dense.get(cur) {
                                    // Pre-memoized: publish the existing
                                    // value so dependents can read it;
                                    // solve nothing, charge nothing.
                                    Some(v) => v,
                                    None => {
                                        let memo = |q: PredSet| Some(sched.value(q.0));
                                        match par_solve_mask(
                                            lc, st, &memo, comps, prune, base_peel, once,
                                            &mut local, meter, mask,
                                        ) {
                                            Ok(v) => {
                                                stats.solved += 1;
                                                stats.rank_tasks[mask.len()] += 1;
                                                v
                                            }
                                            Err(_) => {
                                                // Trips are sticky on the
                                                // shared meter; the reason
                                                // is re-read after the
                                                // scope joins.
                                                sched.set_abort();
                                                break 'fill;
                                            }
                                        }
                                    }
                                };
                                sched.store(cur, value);
                                stats.tasks += 1;
                                sched.complete(cur, &mut ready);
                                for r in ready.drain(..) {
                                    if dense.contains(r) {
                                        inline.push(r);
                                    } else {
                                        batch.push(r);
                                    }
                                }
                                if !batch.is_empty() {
                                    let depth = sched.push_batch(w, &batch);
                                    stats.max_queue_depth = stats.max_queue_depth.max(depth as u64);
                                    batch.clear();
                                }
                                sched.retire();
                            }
                        }
                        locals
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(stats);
                        guard.disarm();
                    });
                }
            });
        }
        if let Some(reason) = meter_arc.as_deref().and_then(BudgetMeter::tripped) {
            // Aborted fill: discard every solved mask and peel claim so
            // the memo only ever holds complete, exact values.
            return Err(reason);
        }
        for fork in forks {
            self.links.absorb(fork);
        }
        self.fill_stats.parallel_fills += 1;
        for stats in locals.into_inner().unwrap_or_else(PoisonError::into_inner) {
            self.fill_stats.merge_worker(&stats);
        }
        // Commit every subset of comp in one pass. Pre-memoized masks
        // republished their own dense value verbatim, so an unconditional
        // set rewrites them bit-identically (and DenseMemo's occupancy
        // count ignores overwrites).
        let memo = self.memo_dense.as_mut().expect("dense engine active");
        let mut m = comp.0;
        while m != 0 {
            memo.set(m, sched.value(m));
            m = (m - 1) & comp.0;
        }
        once.drain(|key, value| self.peel_memo.insert(key, value));
        Ok(self
            .memo_get(comp)
            .expect("the component root is the last scheduler node"))
    }

    /// Solves one not-yet-memoized mask of the dense lattice, all proper
    /// subsets already filled (the serial per-mask step).
    fn solve_mask(&mut self, m: PredSet) -> Result<(f64, f64), ExhaustReason> {
        crate::failpoint::fire("dp::solve_mask");
        if let Some(meter) = self.meter.as_deref() {
            meter.charge(1)?;
        }
        if self.first_comp(m) != m {
            // Separable submask: product over its components, all filled
            // in earlier ranks.
            let ct = self.comp_table.as_mut().expect("dense engine active");
            let ctx = &self.ctx;
            let memo_dense = &self.memo_dense;
            Ok(separable_product(
                |rest| ct.ensure(ctx, rest),
                |c| memo_dense.as_ref().expect("dense engine active").get(c.0),
                m,
            ))
        } else {
            self.solve_nonseparable(m)
        }
    }

    /// Solves one popcount rank of the dense lattice across scoped worker
    /// threads — bit-identical to the serial fill by construction:
    ///
    /// * **per-mask ownership** — each mask's result goes to its own slot,
    ///   claimed off an atomic cursor; no reductions, no shared
    ///   accumulators, and the commit into the dense memo happens on this
    ///   thread afterwards, in lattice order;
    /// * **rank barrier** — workers only *read* the memo, which holds
    ///   exactly the ranks `< k` (a mask's every dependency), so what a
    ///   worker observes is independent of scheduling;
    /// * **exactly-once peels** — new link values are computed under an
    ///   [`OnceMap`] claim, keeping the computed-key set (and thus
    ///   `peel_entries`/`vm_calls`) identical to the serial walk's;
    /// * **pure link caches** — workers fork the link state; every cached
    ///   value is a pure function of its key, so fork/absorb cannot change
    ///   any result.
    ///
    /// Under a budget meter, every worker polls the same sticky trip flag:
    /// the first trip makes all workers finish (or abandon) their current
    /// mask and stop claiming new ones, waits on the [`OnceMap`] are
    /// interrupted, and the whole rank returns `Err` without committing
    /// anything — the memo never holds values from an aborted rank.
    fn fill_rank_parallel(
        &mut self,
        pending: &[PredSet],
        workers: usize,
    ) -> Result<(), ExhaustReason> {
        // Workers probe the component table read-only: pre-ensure every
        // standard-decomposition chain they may walk.
        for &m in pending {
            let mut rest = m;
            while !rest.is_empty() {
                rest = rest.minus(self.first_comp(rest));
            }
        }
        let mut forks: Vec<LinkState> = (0..workers).map(|_| self.links.fork()).collect();
        let slots: Vec<Mutex<Option<(f64, f64)>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let once = OnceMap::new();
        let next = AtomicUsize::new(0);
        let meter_arc = self.meter.clone();
        {
            let lc = link_ctx!(self);
            let dense: &DenseMemo = self.memo_dense.as_ref().expect("dense engine active");
            let comps: &ComponentTable = self.comp_table.as_ref().expect("dense engine active");
            let prune: Option<&[u32]> = self.prune_table.as_deref();
            let base_peel: &PeelMemo = &self.peel_memo;
            let meter: Option<&BudgetMeter> = meter_arc.as_deref();
            let (lc, once, next, slots) = (&lc, &once, &next, &slots);
            std::thread::scope(|s| {
                for st in forks.iter_mut() {
                    s.spawn(move || {
                        // Worker-local replica of this rank's published peel
                        // values: repeat probes of a key stay lock-free, so
                        // the shared map is touched at most once per
                        // (worker, key) instead of once per probe.
                        let mut local = FlatMemo::new();
                        let memo = |q: PredSet| dense.get(q.0);
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= pending.len() {
                                break;
                            }
                            match par_solve_mask(
                                lc,
                                st,
                                &memo,
                                comps,
                                prune,
                                base_peel,
                                once,
                                &mut local,
                                meter,
                                pending[idx],
                            ) {
                                Ok(r) => {
                                    *slots[idx].lock().expect("result slot") = Some(r);
                                }
                                // Trips are sticky on the shared meter; the
                                // reason is re-read after the scope joins.
                                Err(_) => break,
                            }
                        }
                    });
                }
            });
        }
        if let Some(reason) = meter_arc.as_deref().and_then(BudgetMeter::tripped) {
            // Aborted rank: discard all partial slots and the rank's peel
            // claims so the memo only ever holds complete, exact values.
            return Err(reason);
        }
        // Rank barrier: commit results in lattice order, merge worker
        // state, move freshly computed peels into the per-query memo so
        // later ranks read them as plain hits.
        let memo = self.memo_dense.as_mut().expect("dense engine active");
        for (idx, &m) in pending.iter().enumerate() {
            let r = slots[idx]
                .lock()
                .expect("result slot")
                .take()
                .expect("every pending mask solved");
            memo.set(m.0, r);
        }
        for fork in forks {
            self.links.absorb(fork);
        }
        once.drain(|key, value| self.peel_memo.insert(key, value));
        Ok(())
    }

    /// Lines 9-17 for a non-separable mask on the dense engine: every
    /// atomic decomposition `Sel(P′|Q)·Sel(Q)`, with `Sel(Q)` read straight
    /// from the flat table. Same descending-submask order and strict-`<`
    /// tie-break as the recursion — bit-identical by construction.
    fn solve_nonseparable(&mut self, m: PredSet) -> Result<(f64, f64), ExhaustReason> {
        let lc = link_ctx!(self);
        let memo_dense = &self.memo_dense;
        let memo_sparse = &self.memo_sparse;
        let memo = |q: PredSet| match memo_dense {
            Some(d) => d.get(q.0),
            None => memo_sparse.get(q.0 as u64),
        };
        let peel_memo = &mut self.peel_memo;
        let links = &mut self.links;
        let oracle = &mut self.oracle;
        let meter = self.meter.as_deref();
        solve_nonseparable_with(
            m,
            self.prune_table.as_deref(),
            memo,
            |p_prime, q| {
                factor_with(
                    [lc.ctx.joins_in(p_prime), lc.ctx.filters_in(p_prime)],
                    p_prime,
                    q,
                    |i, cset| {
                        let key = peel_key(i, cset.0);
                        if let Some(r) = peel_memo.get(key) {
                            return Ok(r);
                        }
                        let result = crate::link::compute_peel(&lc, links, oracle, i, cset);
                        peel_memo.insert(key, result);
                        if let Some(mt) = meter {
                            // Sticky: the walk's next poll observes the trip.
                            let _ = mt.charge(1);
                        }
                        Ok(result)
                    },
                )
            },
            abort_poll(meter),
        )
    }

    /// Subset-OR rollup of the §3.4 masks: `prune_table[q] = ⋃ {attr mask
    /// of SITs whose condition ⊆ q}`, built with the standard
    /// sum-over-subsets pass (one bit per round). Each round ORs the
    /// lower half of every `2·bit` block into the upper half in 4-mask
    /// strips — branch-free and autovectorizable, unlike the classic
    /// per-mask `if m & bit` walk, and bit-for-bit the same table.
    fn build_prune_table(&mut self) {
        let n = self.ctx.predicates().len();
        let mut table = vec![0u32; 1usize << n];
        if let Some(masks) = &self.sit_driven {
            for &(a, c) in masks {
                table[c as usize] |= a;
            }
        }
        for b in 0..n {
            let bit = 1usize << b;
            let mut s = 0usize;
            while s < table.len() {
                let (lo, hi) = table[s..s + 2 * bit].split_at_mut(bit);
                let mut src = lo.chunks_exact(4);
                let mut dst = hi.chunks_exact_mut(4);
                for (d, s4) in dst.by_ref().zip(src.by_ref()) {
                    d[0] |= s4[0];
                    d[1] |= s4[1];
                    d[2] |= s4[2];
                    d[3] |= s4[3];
                }
                for (d, s1) in dst.into_remainder().iter_mut().zip(src.remainder()) {
                    *d |= *s1;
                }
                s += 2 * bit;
            }
        }
        self.prune_table = Some(table);
    }

    /// The original top-down recursion (large `n`), on open-addressed
    /// memos and allocation-free decomposition chains.
    fn compute_recursive(&mut self, p: PredSet) -> Result<(f64, f64), ExhaustReason> {
        crate::failpoint::fire("dp::solve_mask");
        if let Some(meter) = self.meter.as_deref() {
            meter.charge(1)?;
        }
        let first = self.ctx.first_component(p);
        let result = if first != p {
            // Lines 4-7: separable — solve each non-separable factor of the
            // standard decomposition independently (exact by Property 2).
            let mut sel = 1.0;
            let mut err = 0.0;
            let mut rest = p;
            while !rest.is_empty() {
                let c = self.ctx.first_component(rest);
                rest = rest.minus(c);
                let (s, e) = self.try_get_selectivity(c)?;
                sel *= s;
                err += e;
            }
            (sel, err)
        } else {
            // Lines 9-17: non-separable — try every atomic decomposition
            // Sel(P′|Q)·Sel(Q).
            let meter_arc = self.meter.clone();
            let mut poll = abort_poll(meter_arc.as_deref());
            let mut best_err = f64::INFINITY;
            let mut best_sel = DEFAULT_RANGE_SEL.powi(p.len() as i32);
            let mut iters = 0u32;
            for p_prime in p.subsets() {
                iters = iters.wrapping_add(1);
                if iters.is_multiple_of(POLL_STRIDE) {
                    poll()?;
                }
                let q = p.minus(p_prime);
                if let Some(masks) = &self.sit_driven {
                    // §3.4: skip decompositions no SIT could improve. The
                    // full-set factor (Q = ∅) always stays as fallback.
                    let keep = p_prime == p
                        || masks
                            .iter()
                            .any(|&(a, c)| a & p_prime.0 != 0 && c & !q.0 == 0);
                    if !keep {
                        continue;
                    }
                }
                let (sel_q, err_q) = self.try_get_selectivity(q)?;
                let (sel_f, err_f) = self.factor(p_prime, q);
                let total = err_f + err_q;
                if total < best_err {
                    best_err = total;
                    best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
                }
            }
            (best_sel, best_err)
        };
        self.memo_sparse.insert(p.0 as u64, result);
        Ok(result)
    }

    /// The beam-search approximate engine (see [`crate::beam`]): the same
    /// top-down structure as [`Self::compute_recursive`] on the same
    /// sparse memos, but each non-separable set expands a bounded
    /// candidate frontier instead of every submask. At
    /// [`BeamConfig::UNBOUNDED`] the walk is the recursion verbatim —
    /// values, memo entry sets, and peel counts bit-identical.
    fn compute_beam(&mut self, p: PredSet) -> Result<(f64, f64), ExhaustReason> {
        crate::failpoint::fire("dp::solve_mask");
        if let Some(meter) = self.meter.as_deref() {
            meter.charge(1)?;
        }
        let first = self.ctx.first_component(p);
        let result = if first != p {
            // Lines 4-7: separable — exact by Property 2, the beam only
            // approximates inside non-separable components.
            let mut sel = 1.0;
            let mut err = 0.0;
            let mut rest = p;
            while !rest.is_empty() {
                let c = self.ctx.first_component(rest);
                rest = rest.minus(c);
                let (s, e) = self.try_get_selectivity(c)?;
                sel *= s;
                err += e;
            }
            (sel, err)
        } else {
            self.beam_depth += 1;
            self.beam_stats.frontier_peak = self.beam_stats.frontier_peak.max(self.beam_depth);
            let r = self.beam_nonseparable(p);
            self.beam_depth -= 1;
            r?
        };
        self.memo_sparse.insert(p.0 as u64, result);
        Ok(result)
    }

    /// One beam expansion (lines 9-17, bounded): generate a candidate
    /// family, score each candidate's conditional factor (the admissible
    /// lower bound), keep the fallback plus the `width` best, and only
    /// evaluate — i.e. recurse into `Sel(Q)` — the survivors, in the exact
    /// engines' descending-submask order with the same strict-`<`
    /// tie-break.
    fn beam_nonseparable(&mut self, m: PredSet) -> Result<(f64, f64), ExhaustReason> {
        let cfg = self.beam_cfg;
        let capped = self.beam_stats.expansions >= cfg.expansions_cap;
        self.beam_stats.expansions += 1;
        if cfg.exhaustive_for(m.len()) && !capped {
            return self.beam_exhaustive(m);
        }

        let meter_arc = self.meter.clone();
        let mut poll = abort_poll(meter_arc.as_deref());
        // Phase 1: generate. Past the expansions cap the set closes with
        // the always-valid `P′ = m` fallback alone (no recursion: its
        // conditioning set is empty), which bounds total work per query.
        let mut cands = Vec::new();
        if capped {
            self.beam_stats.cap_fallbacks += 1;
            cands.push(m.0);
        } else {
            if self.beam_guidance.is_none() {
                self.beam_guidance = Some(self.sit_guidance_masks());
            }
            let guidance = self.beam_guidance.as_deref().unwrap_or(&[]);
            crate::beam::generate_candidates(m.0, guidance, &mut cands);
        }
        self.beam_stats.generated += cands.len() as u64;

        // Phase 2: score — the factor error is the admissible bound. The
        // §3.4 keep test runs *before* scoring so pruned candidates cost
        // nothing, exactly as in the exact walks.
        let mut scored: Vec<Scored> = Vec::with_capacity(cands.len());
        let mut iters = 0u32;
        for &mask in &cands {
            iters = iters.wrapping_add(1);
            if iters.is_multiple_of(POLL_STRIDE) {
                poll()?;
            }
            let p_prime = PredSet(mask);
            let q = m.minus(p_prime);
            if let Some(masks) = &self.sit_driven {
                let keep = p_prime == m
                    || masks
                        .iter()
                        .any(|&(a, c)| a & p_prime.0 != 0 && c & !q.0 == 0);
                if !keep {
                    continue;
                }
            }
            let (sel_f, err_f) = self.factor(p_prime, q);
            scored.push(Scored { mask, sel_f, err_f });
        }
        self.beam_stats.scored += scored.len() as u64;

        // Phase 3: select the frontier.
        let (mut order, mut keep) = (Vec::new(), Vec::new());
        self.beam_stats.pruned +=
            crate::beam::select_width(&scored, cfg.width, &mut order, &mut keep);

        // Phase 4: evaluate survivors — recursion happens only here.
        let mut best_err = f64::INFINITY;
        let mut best_sel = DEFAULT_RANGE_SEL.powi(m.len() as i32);
        let mut best_bound = f64::INFINITY;
        for (idx, s) in scored.iter().enumerate() {
            if !keep[idx] {
                continue;
            }
            poll()?;
            let q = m.minus(PredSet(s.mask));
            let (sel_q, err_q) = self.try_get_selectivity(q)?;
            let total = s.err_f + err_q;
            if total < best_err {
                best_err = total;
                best_sel = (s.sel_f * sel_q).clamp(0.0, 1.0);
                best_bound = s.err_f;
            }
        }
        self.record_tightness(best_bound, best_err);
        Ok((best_sel, best_err))
    }

    /// The unbounded-width expansion: [`Self::compute_recursive`]'s
    /// non-separable loop verbatim (same interleaving of `Sel(Q)`
    /// recursion and factor evaluation, same §3.4 keep test, same poll
    /// cadence), so the beam engine at [`BeamConfig::UNBOUNDED`] is
    /// bit-identical to the recursive engine — only the stats counters
    /// differ.
    fn beam_exhaustive(&mut self, m: PredSet) -> Result<(f64, f64), ExhaustReason> {
        let meter_arc = self.meter.clone();
        let mut poll = abort_poll(meter_arc.as_deref());
        let mut best_err = f64::INFINITY;
        let mut best_sel = DEFAULT_RANGE_SEL.powi(m.len() as i32);
        let mut best_bound = f64::INFINITY;
        let mut iters = 0u32;
        let mut generated = 0u64;
        let mut scored = 0u64;
        for p_prime in m.subsets() {
            generated += 1;
            iters = iters.wrapping_add(1);
            if iters.is_multiple_of(POLL_STRIDE) {
                poll()?;
            }
            let q = m.minus(p_prime);
            if let Some(masks) = &self.sit_driven {
                let keep = p_prime == m
                    || masks
                        .iter()
                        .any(|&(a, c)| a & p_prime.0 != 0 && c & !q.0 == 0);
                if !keep {
                    continue;
                }
            }
            let (sel_q, err_q) = self.try_get_selectivity(q)?;
            let (sel_f, err_f) = self.factor(p_prime, q);
            scored += 1;
            let total = err_f + err_q;
            if total < best_err {
                best_err = total;
                best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
                best_bound = err_f;
            }
        }
        self.beam_stats.generated += generated;
        self.beam_stats.scored += scored;
        self.record_tightness(best_bound, best_err);
        Ok((best_sel, best_err))
    }

    /// Accumulates the chosen decomposition's bound tightness
    /// (`err_f / total`, 1 when the recursion contributed nothing) into
    /// the stats — skipped if the set somehow produced no finite argmin.
    fn record_tightness(&mut self, best_bound: f64, best_err: f64) {
        if best_err.is_finite() {
            let t = if best_err > 0.0 {
                (best_bound / best_err).clamp(0.0, 1.0)
            } else {
                1.0
            };
            self.beam_stats.tightness_sum += t;
        }
    }

    /// Approximates the single conditional factor `Sel(P′|Q)` with the best
    /// available SITs, returning `(selectivity, error)`. This is the
    /// building block a Cascades-coupled optimizer calls for each memo
    /// entry (§4.2), where the entry's operator parameters form `P′` and
    /// its inputs form `Q`.
    pub fn conditional_factor(&mut self, p_prime: PredSet, q: PredSet) -> (f64, f64) {
        self.factor(p_prime, q)
    }

    /// Approximates the conditional factor `Sel(P′|Q)` with available SITs
    /// by expanding it into the implicit single-predicate chain (joins
    /// first, then filters, ascending index — see [`factor_with`]).
    fn factor(&mut self, p_prime: PredSet, q: PredSet) -> (f64, f64) {
        let r: Result<(f64, f64), std::convert::Infallible> = factor_with(
            [self.ctx.joins_in(p_prime), self.ctx.filters_in(p_prime)],
            p_prime,
            q,
            |i, cset| Ok(self.peel(i, cset)),
        );
        match r {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// The atomic decomposition chain `getSelectivity` chose for `p` — a
    /// diagnostics / test hook (the differential accuracy harness reads it
    /// to verify the DP against an exhaustive enumeration of Lemma 1's
    /// decomposition space).
    ///
    /// Solves `p` if it has not been solved yet, then *replays* the
    /// memoized lattice: the same descending-submask walk, §3.4 pruning
    /// test, and strict-`<` tie-break as the fill, reading `Sel(Q)` values
    /// straight from the memo and factors from the peel memo — so the
    /// replay reconstructs exactly the argmin the fill committed, without
    /// re-estimating anything.
    ///
    /// The returned links are in evaluation order: each entry `(P′, Q)` is
    /// one conditional factor `Sel(P′|Q)`, where `Q` is that link's full
    /// conditioning set. Separable sets contribute the concatenation of
    /// their components' chains (Property 2 multiplies the factors, so the
    /// flattened chain is the complete decomposition). Invariants the
    /// harness relies on, for `links = chosen_decomposition(p)`:
    ///
    /// * the `P′` masks partition `p`;
    /// * `Σ conditional_factor(P′,Q).1` over the links equals
    ///   `get_selectivity(p).1` (same additions, same order);
    /// * every link's `Q` is the union of later `P′`s within its component.
    pub fn chosen_decomposition(&mut self, p: PredSet) -> Vec<(PredSet, PredSet)> {
        self.get_selectivity(p);
        let mut links = Vec::new();
        self.replay(p, &mut links);
        links
    }

    /// Replay step: standard decomposition first (lines 4–7), then the
    /// non-separable argmin walk per component (lines 9–17).
    fn replay(&mut self, p: PredSet, out: &mut Vec<(PredSet, PredSet)>) {
        if p.is_empty() {
            return;
        }
        let mut rest = p;
        while !rest.is_empty() {
            let c = self.ctx.first_component(rest);
            rest = rest.minus(c);
            self.replay_nonseparable(c, out);
        }
    }

    /// Replays the subset walk of one solved non-separable mask and
    /// recurses into the chosen conditioning set.
    fn replay_nonseparable(&mut self, m: PredSet, out: &mut Vec<(PredSet, PredSet)>) {
        let sit_driven = self.sit_driven.clone();
        let mut best_err = f64::INFINITY;
        let mut best = None;
        for p_prime in m.subsets() {
            let q = m.minus(p_prime);
            if let Some(masks) = &sit_driven {
                // Same keep test as both engines (the dense prune table is
                // the subset-OR rollup of exactly this predicate).
                let keep = p_prime == m
                    || masks
                        .iter()
                        .any(|&(a, c)| a & p_prime.0 != 0 && c & !q.0 == 0);
                if !keep {
                    continue;
                }
            }
            let (_, err_q) = if q.is_empty() {
                (1.0, 0.0)
            } else {
                self.memo_get(q)
                    .expect("replay runs on a solved lattice: every Q is memoized")
            };
            let (_, err_f) = self.factor(p_prime, q);
            let total = err_f + err_q;
            if total < best_err {
                best_err = total;
                best = Some((p_prime, q));
            }
        }
        let (p_prime, q) = best.expect("a non-empty mask always has the P′ = P decomposition");
        out.push((p_prime, q));
        if !q.is_empty() {
            self.replay(q, out);
        }
    }

    /// Estimates the single-predicate conditional factor `Sel(pᵢ | cset)`,
    /// memoized on `(i, cset)`. Shared-cache hooks fire exactly on
    /// flat-table misses, as the HashMap version's did on map misses.
    fn peel(&mut self, i: usize, cset: PredSet) -> (f64, f64) {
        let key = peel_key(i, cset.0);
        if let Some(r) = self.peel_memo.get(key) {
            return r;
        }
        let lc = link_ctx!(self);
        let result = crate::link::compute_peel(&lc, &mut self.links, &mut self.oracle, i, cset);
        self.peel_memo.insert(key, result);
        if let Some(meter) = self.meter.as_deref() {
            // Sticky: enclosing subset walks observe the trip at their
            // next poll; the computed value itself is exact.
            let _ = meter.charge(1);
        }
        result
    }

    /// The best applicable SIT histogram for `attr` under a predicate
    /// context (used by Group-By estimation). Counts a view-matching call.
    pub(crate) fn best_histogram_for(
        &self,
        attr: sqe_engine::ColRef,
        preds: &[Predicate],
    ) -> Option<&'a Histogram> {
        let candidates = self.matcher.candidates(attr, preds);
        let cset = PredSet::full(preds.len().min(crate::predset::MAX_PREDICATES));
        let (id, _) =
            crate::link::pick_best_opt(self.matcher.catalog(), self.mode, &candidates, cset)?;
        Some(&self.matcher.catalog().get(id).histogram)
    }
}

/// Subset-walk iterations between budget polls inside
/// [`solve_nonseparable_with`]. Together with [`abort_poll`]'s internal
/// 1-in-16 clock stride, a deadline is observed about once per thousand
/// submask iterations — low overhead, bounded overshoot.
const POLL_STRIDE: u32 = 64;

/// Amortized abort check for subset walks: a relaxed sticky-trip load on
/// most calls, a real deadline/cancellation poll every 16th. With no meter
/// attached it compiles down to `Ok(())`.
fn abort_poll(meter: Option<&BudgetMeter>) -> impl FnMut() -> Result<(), ExhaustReason> + '_ {
    let mut calls = 0u32;
    move || {
        let Some(m) = meter else { return Ok(()) };
        calls = calls.wrapping_add(1);
        if calls.is_multiple_of(16) {
            m.force_poll()
        } else {
            m.check()
        }
    }
}

/// Maximizes over every submask decomposition `m = P′ ∪ Q` (paper Fig. 3):
/// best_err/best_sel over `factor(P′, Q) · memo(Q)`, with the same
/// descending-submask walk, pruning test, and strict-`<` tie-break as the
/// historical inline loop — shared verbatim by the serial and parallel
/// fills so they cannot drift.
///
/// Fallibility: `factor` errors (an interrupted parallel peel wait) and
/// `poll` errors (the amortized budget check, every [`POLL_STRIDE`]
/// iterations) abort the walk; the partially accumulated argmin is
/// discarded by construction because the `Err` propagates past every
/// commit point.
fn solve_nonseparable_with(
    m: PredSet,
    prune: Option<&[u32]>,
    memo: impl Fn(PredSet) -> Option<(f64, f64)>,
    mut factor: impl FnMut(PredSet, PredSet) -> Result<(f64, f64), ExhaustReason>,
    mut poll: impl FnMut() -> Result<(), ExhaustReason>,
) -> Result<(f64, f64), ExhaustReason> {
    let mut best_err = f64::INFINITY;
    let mut best_sel = DEFAULT_RANGE_SEL.powi(m.len() as i32);
    let mut iters = 0u32;
    for p_prime in m.subsets() {
        iters = iters.wrapping_add(1);
        if iters.is_multiple_of(POLL_STRIDE) {
            poll()?;
        }
        let q = m.minus(p_prime);
        if let Some(table) = prune {
            let keep = p_prime == m || table[q.0 as usize] & p_prime.0 != 0;
            if !keep {
                continue;
            }
        }
        let (sel_q, err_q) = if q.is_empty() {
            (1.0, 0.0)
        } else {
            memo(q).expect("proper subsets fill in earlier ranks")
        };
        let (sel_f, err_f) = factor(p_prime, q)?;
        let total = err_f + err_q;
        if total < best_err {
            best_err = total;
            best_sel = (sel_f * sel_q).clamp(0.0, 1.0);
        }
    }
    Ok((best_sel, best_err))
}

/// Expands `Sel(P′|Q)` into the implicit single-predicate chain: peels
/// joins first, then filters, each group in ascending index order —
/// iterating the mask bits directly. `groups` is
/// `[joins_in(P′), filters_in(P′)]`, passed pre-split so callers borrow the
/// query context outside the `peel` closure. Generic over the peel error
/// so the serial paths instantiate it with `Infallible` while the parallel
/// fill threads claim interruptions through.
fn factor_with<E>(
    groups: [PredSet; 2],
    p_prime: PredSet,
    q: PredSet,
    mut peel: impl FnMut(usize, PredSet) -> Result<(f64, f64), E>,
) -> Result<(f64, f64), E> {
    let mut remaining = p_prime;
    let mut sel = 1.0;
    let mut err = 0.0;
    for group in groups {
        let mut bits = group.0;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            remaining = remaining.minus(PredSet::singleton(i));
            let cset = q.union(remaining);
            let (s, e) = peel(i, cset)?;
            sel *= s;
            err += e;
        }
    }
    Ok((sel.clamp(0.0, 1.0), err))
}

/// Multiplies the memoized results of a separable mask's connected
/// components, in ascending first-component order — the product order both
/// fills share.
fn separable_product(
    mut first: impl FnMut(PredSet) -> PredSet,
    memo: impl Fn(PredSet) -> Option<(f64, f64)>,
    m: PredSet,
) -> (f64, f64) {
    let mut sel = 1.0;
    let mut err = 0.0;
    let mut rest = m;
    while !rest.is_empty() {
        let c = first(rest);
        rest = rest.minus(c);
        let (s, e) = memo(c).expect("component filled in an earlier popcount rank");
        sel *= s;
        err += e;
    }
    (sel, err)
}

/// One worker's computation of one mask: the same
/// separable-product / nonseparable-decomposition split as
/// [`SelectivityEstimator::solve_mask`], reading completed-dependency memo
/// values through the caller's `memo` closure (the rank-barrier fill reads
/// the dense memo, which holds exactly the lower ranks; the work-stealing
/// fill reads the scheduler's published-value arrays) and routing peel
/// links through the exactly-once [`OnceMap`].
#[allow(clippy::too_many_arguments)]
fn par_solve_mask(
    lc: &LinkCtx,
    st: &mut LinkState,
    memo: &impl Fn(PredSet) -> Option<(f64, f64)>,
    comps: &crate::decomposition::ComponentTable,
    prune: Option<&[u32]>,
    base_peel: &PeelMemo,
    once: &OnceMap,
    local: &mut FlatMemo,
    meter: Option<&BudgetMeter>,
    m: PredSet,
) -> Result<(f64, f64), ExhaustReason> {
    crate::failpoint::fire("dp::solve_mask");
    if let Some(mt) = meter {
        mt.charge(1)?;
    }
    let fc = comps.get(m).expect("chain pre-ensured before the fill");
    if fc != m {
        Ok(separable_product(
            |rest| comps.get(rest).expect("chain pre-ensured before the fill"),
            memo,
            m,
        ))
    } else {
        solve_nonseparable_with(
            m,
            prune,
            memo,
            |p_prime, q| {
                factor_with(
                    [lc.ctx.joins_in(p_prime), lc.ctx.filters_in(p_prime)],
                    p_prime,
                    q,
                    |i, cset| par_peel(lc, st, base_peel, once, local, meter, i, cset),
                )
            },
            abort_poll(meter),
        )
    }
}

/// Parallel peel: fill-start memo snapshot first, then the worker-local
/// replica (both lock-free), then the fill's [`OnceMap`] — the claiming
/// worker computes, everyone else reuses, so the set of computed peel keys
/// matches the serial fill exactly.
///
/// A wait on another worker's in-flight computation is interrupted as soon
/// as the shared meter trips; a poisoned slot (the claimant panicked)
/// re-panics here so the scope join propagates one coherent panic instead
/// of waiters hanging or silently recomputing.
#[allow(clippy::too_many_arguments)]
fn par_peel(
    lc: &LinkCtx,
    st: &mut LinkState,
    base_peel: &PeelMemo,
    once: &OnceMap,
    local: &mut FlatMemo,
    meter: Option<&BudgetMeter>,
    i: usize,
    cset: PredSet,
) -> Result<(f64, f64), ExhaustReason> {
    let key = peel_key(i, cset.0);
    if let Some(r) = base_peel.get(key) {
        return Ok(r);
    }
    if let Some(r) = local.get(key) {
        return Ok(r);
    }
    let tripped = || meter.is_some_and(|m| m.tripped().is_some());
    let result = match once.claim(key, tripped) {
        Ok(Claim::Ready(v)) => v,
        Ok(Claim::Owned(guard)) => {
            // A panic in compute_peel (or an armed publish failpoint)
            // drops `guard` unpublished, poisoning the slot for waiters.
            let result = crate::link::compute_peel(lc, st, &mut None, i, cset);
            if let Some(mt) = meter {
                let _ = mt.charge(1);
            }
            guard.publish(result);
            result
        }
        Err(ClaimError::Interrupted) => {
            return Err(meter
                .and_then(BudgetMeter::tripped)
                .unwrap_or(ExhaustReason::Cancelled));
        }
        Err(ClaimError::Poisoned) => {
            panic!("peel computation panicked in a sibling worker (key {key:#x})")
        }
    };
    local.insert(key, result);
    Ok(result)
}

/// The distinct attributes mentioned by a query's predicates, in first-use
/// order.
fn query_attrs(preds: &[Predicate]) -> Vec<ColRef> {
    let mut attrs = Vec::new();
    for p in preds {
        for c in p.columns().iter() {
            if !attrs.contains(&c) {
                attrs.push(c);
            }
        }
    }
    attrs
}

/// Translates a SIT condition into a mask over the query's predicate
/// indices; `None` when some condition predicate is not in the query (such
/// a SIT can never be applicable for any conditioning subset).
fn cond_to_mask(cond: &[Predicate], preds: &[Predicate]) -> Option<u32> {
    let mut mask = 0u32;
    for c in cond {
        mask |= 1 << preds.iter().position(|p| p == c)?;
    }
    Some(mask)
}

/// Builds the per-attribute candidate index (consumed by
/// `link::mask_candidates`): for every attribute the query mentions, the
/// catalog's `for_attr` list (order preserved) restricted to usable SITs,
/// with condition masks — plus the id → mask side table.
fn build_cand_index(catalog: &SitCatalog, preds: &[Predicate]) -> (CandIndex, HashMap<SitId, u32>) {
    let mut by_attr = HashMap::new();
    let mut masks = HashMap::new();
    for attr in query_attrs(preds) {
        let mut list = Vec::new();
        for &id in catalog.for_attr(attr) {
            if let Some(mask) = cond_to_mask(&catalog.get(id).cond, preds) {
                masks.insert(id, mask);
                list.push((id, mask));
            }
        }
        by_attr.insert(attr, list);
    }
    (by_attr, masks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sit::Sit;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, ColRef, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// r(a, x) ⋈ s(y, b): r.a correlated with fan-out (a=1 rows match 4×).
    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .column("b", vec![1, 2, 3, 4, 5, 6])
                .build()
                .unwrap(),
        );
        db
    }

    fn full_catalog(db: &Database) -> SitCatalog {
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
            cat.add(Sit::build(db, col, vec![join]).unwrap());
        }
        cat
    }

    fn base_catalog(db: &Database) -> SitCatalog {
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0), c(1, 1)] {
            cat.add(Sit::build_base(db, col).unwrap());
        }
        cat
    }

    fn query(_db: &Database) -> SpjQuery {
        SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        ])
        .unwrap()
    }

    #[test]
    fn empty_set_is_identity() {
        let db = skewed_db();
        let cat = base_catalog(&db);
        let q = query(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        assert_eq!(est.get_selectivity(PredSet::EMPTY), (1.0, 0.0));
    }

    #[test]
    fn single_filter_matches_base_histogram() {
        let db = skewed_db();
        let cat = base_catalog(&db);
        let q = query(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        // p1 = (r.a = 1): true selectivity 2/6.
        let (sel, err) = est.get_selectivity(PredSet::singleton(1));
        assert!((sel - 1.0 / 3.0).abs() < 1e-9, "sel {sel}");
        assert_eq!(err, 0.0, "unconditioned base estimate has no assumptions");
    }

    #[test]
    fn sits_fix_the_skewed_conditional() {
        // True Sel(a=1 ∧ join) = 8/36. Independence says (1/3)·(6/36)=2/36.
        // With SIT(a|join), getSelectivity should find ≈ 8/36.
        let db = skewed_db();
        let q = query(&db);

        let base_cat = base_catalog(&db);
        let mut base_est = SelectivityEstimator::new(&db, &q, &base_cat, ErrorMode::NInd);
        let base = base_est.selectivity();

        let full_cat = full_catalog(&db);
        let mut sit_est = SelectivityEstimator::new(&db, &q, &full_cat, ErrorMode::NInd);
        let with_sits = sit_est.selectivity();

        let truth = 8.0 / 36.0;
        assert!(
            (with_sits - truth).abs() < (base - truth).abs(),
            "SITs must improve: base {base}, sits {with_sits}, truth {truth}"
        );
        assert!((with_sits - truth).abs() < 0.02, "sit estimate {with_sits}");
    }

    #[test]
    fn error_zero_when_sits_cover_everything() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (_, err) = est.get_selectivity(est.context().all());
        // Decomposition Sel(a=1|join)·Sel(join) with SIT(a|join): the
        // filter link is fully covered and the join link unconditioned.
        assert_eq!(err, 0.0);
    }

    #[test]
    fn memoization_reuses_subset_work() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.selectivity();
        let calls_after_first = est.stats().vm_calls;
        // Every subset of the query is already memoized: further requests
        // are free.
        est.get_selectivity(PredSet::singleton(0));
        est.get_selectivity(PredSet::singleton(1));
        est.selectivity();
        assert_eq!(est.stats().vm_calls, calls_after_first);
    }

    #[test]
    fn separable_sets_multiply() {
        // Two filters on different tables, no join: Sel must factor.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
            Predicate::filter(c(1, 1), CmpOp::Le, 2),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (s01, _) = est.get_selectivity(est.context().all());
        let (s0, _) = est.get_selectivity(PredSet::singleton(0));
        let (s1, _) = est.get_selectivity(PredSet::singleton(1));
        assert!((s01 - s0 * s1).abs() < 1e-12);
    }

    #[test]
    fn cardinality_scales_by_cross_product() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let all = est.context().all();
        let card = est.cardinality(all);
        let (sel, _) = est.get_selectivity(all);
        assert!((card - sel * 36.0).abs() < 1e-9);
    }

    #[test]
    fn opt_mode_beats_or_matches_nind() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let truth = 8.0 / 36.0;
        let mut nind = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let mut opt = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Opt);
        let e_nind = (nind.selectivity() - truth).abs();
        let e_opt = (opt.selectivity() - truth).abs();
        assert!(
            e_opt <= e_nind + 1e-9,
            "Opt ({e_opt}) must not lose to nInd ({e_nind})"
        );
    }

    #[test]
    fn diff_mode_prefers_divergent_sits() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let truth = 8.0 / 36.0;
        let sel = est.selectivity();
        assert!((sel - truth).abs() < 0.02, "diff-mode estimate {sel}");
    }

    #[test]
    fn fallback_without_any_statistics() {
        let db = skewed_db();
        let q = query(&db);
        let empty = SitCatalog::new();
        let mut est = SelectivityEstimator::new(&db, &q, &empty, ErrorMode::NInd);
        let (sel, err) = est.get_selectivity(est.context().all());
        assert!(sel > 0.0 && sel <= 1.0);
        assert!(err > 0.0, "defaults must carry positive error");
    }

    #[test]
    fn h3_mechanism_estimates_filter_on_join_attribute() {
        // Filter on r.x (the join attribute): H3 = join of SIT(x|·) with
        // SIT(y|·) gives the x-distribution over the join; the estimate is
        // conditioned on the join without extra assumptions.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 1), CmpOp::Eq, 10),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        let (sel, err) = est.get_selectivity(est.context().all());
        // Truth: join is 8 of 36 tuples; among them x=10 in 8 → Sel=8/36·1
        // ... join tuples with x=10: r rows {0,1} × s rows {0,1,2,3} = 8.
        let truth = 8.0 / 36.0;
        assert!((sel - truth).abs() < 0.05, "H3 estimate {sel} vs {truth}");
        assert_eq!(err, 0.0, "H3 covers the entire conditioning set");
    }

    #[test]
    fn sit_driven_pruning_preserves_sit_usage() {
        // §3.4: with pruning, the decomposition that exploits the SIT must
        // still be found.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut full = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let mut pruned =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit_driven_pruning();
        let all = full.context().all();
        let (sel_full, _) = full.get_selectivity(all);
        let (sel_pruned, _) = pruned.get_selectivity(all);
        assert!(
            (sel_full - sel_pruned).abs() < 1e-9,
            "pruned {sel_pruned} vs full {sel_full}"
        );
        // And the pruned search does no more work than the full one.
        assert!(pruned.stats().peel_entries <= full.stats().peel_entries);
    }

    #[test]
    fn sit_driven_pruning_with_empty_catalog_still_estimates() {
        let db = skewed_db();
        let q = query(&db);
        let empty = SitCatalog::new();
        let mut est =
            SelectivityEstimator::new(&db, &q, &empty, ErrorMode::NInd).with_sit_driven_pruning();
        let all = est.context().all();
        let (sel, _) = est.get_selectivity(all);
        assert!(sel > 0.0 && sel <= 1.0);
    }

    #[test]
    fn sit_driven_pruning_ignores_foreign_sits() {
        // A SIT over predicates not in this query must not enter the
        // pruning mask set.
        let db = skewed_db();
        let q = SpjQuery::from_predicates(vec![Predicate::filter(c(0, 0), CmpOp::Eq, 1)]).unwrap();
        let cat = full_catalog(&db); // contains join-conditioned SITs
        let est =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd).with_sit_driven_pruning();
        let masks = est.sit_driven.as_ref().unwrap();
        assert!(
            masks.is_empty(),
            "join SITs are unusable for a join-free query"
        );
    }

    #[test]
    fn sit2_carried_h3_fixes_filter_through_join() {
        // Filter on r.a, joined through r.x = s.y: the 2-D grid over
        // (r.x, r.a) carries the true conditional, even with only base 1-D
        // statistics available.
        let db = skewed_db();
        let q = query(&db);
        let cat = base_catalog(&db);
        let mut sit2s = crate::sit2::Sit2Catalog::new();
        sit2s.add(crate::sit2::Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap());
        let mut est =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit2_catalog(&sit2s);
        let all = est.context().all();
        let (sel, _) = est.get_selectivity(all);
        let truth = 8.0 / 36.0;
        assert!(
            (sel - truth).abs() < 0.01,
            "2-D estimate {sel} vs truth {truth}"
        );
        // Without the grid the same catalog underestimates.
        let mut base_only = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let (base_sel, _) = base_only.get_selectivity(all);
        assert!((base_sel - truth).abs() > (sel - truth).abs());
    }

    #[test]
    fn sit2_filter_on_filter_captures_correlation() {
        // r.a and r.x are perfectly correlated; a query with filters on
        // both is mis-estimated under independence but exact with the grid.
        // (Rows are replicated so the correlation clears the estimator's
        // statistical-significance gate.)
        let mut db = Database::new();
        let rep = |v: &[i64]| -> Vec<i64> {
            v.iter().flat_map(|&x| std::iter::repeat_n(x, 20)).collect()
        };
        db.add_table(
            sqe_engine::table::TableBuilder::new("r")
                .column("a", rep(&[1, 1, 2, 2, 3, 3]))
                .column("x", rep(&[10, 10, 20, 20, 30, 30]))
                .build()
                .unwrap(),
        );
        db.add_table(
            sqe_engine::table::TableBuilder::new("s")
                .column("y", rep(&[10, 10, 10, 10, 20, 30]))
                .column("b", rep(&[1, 2, 3, 4, 5, 6]))
                .build()
                .unwrap(),
        );
        let q = SpjQuery::from_predicates(vec![
            Predicate::filter(c(0, 0), CmpOp::Eq, 1),
            Predicate::filter(c(0, 1), CmpOp::Eq, 10),
        ])
        .unwrap();
        let cat = base_catalog(&db);
        let mut sit2s = crate::sit2::Sit2Catalog::new();
        sit2s.add(crate::sit2::Sit2::build(&db, c(0, 1), c(0, 0), vec![], 16).unwrap());
        let truth = 2.0 / 6.0; // both filters select the same two rows
        let mut with_grid =
            SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff).with_sit2_catalog(&sit2s);
        let all = with_grid.context().all();
        let (sel2, _) = with_grid.get_selectivity(all);
        assert!((sel2 - truth).abs() < 0.01, "grid estimate {sel2}");
        let mut indep = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let (sel1, _) = indep.get_selectivity(all);
        // Independence: (1/3)·(1/3) = 1/9 ≠ 1/3.
        assert!((sel1 - 1.0 / 9.0).abs() < 0.01, "independence {sel1}");
    }

    #[test]
    fn stats_track_timing_and_memo_sizes() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd);
        est.selectivity();
        let stats = est.stats();
        assert!(stats.memo_entries >= 3);
        assert!(stats.peel_entries >= 2);
        assert!(stats.vm_calls > 0);
    }

    #[test]
    fn stats_report_occupied_slots_not_capacity() {
        // The dense memo holds 2ⁿ slots and the flat peel table ≥ 64; the
        // 2-predicate query computes exactly 3 subsets, and the counts must
        // reflect that — identically under both engines.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut dense = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd)
            .with_strategy(DpStrategy::Dense);
        dense.selectivity();
        assert_eq!(
            dense.stats().memo_entries,
            3,
            "occupied, not the 4-slot table"
        );
        let mut rec = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::NInd)
            .with_strategy(DpStrategy::Recursive);
        rec.selectivity();
        assert_eq!(rec.stats().memo_entries, 3);
        assert_eq!(dense.stats().peel_entries, rec.stats().peel_entries);
        assert!(
            dense.stats().peel_entries < 64,
            "peel count must not report the table's minimum capacity"
        );
    }

    #[test]
    fn strategies_are_bit_identical_on_fixtures() {
        // Deterministic spot-check (the broad randomized version lives in
        // tests/dense_engine.rs): every subset of both fixture queries, all
        // engines, identical bits.
        let db = skewed_db();
        let cat = full_catalog(&db);
        for q in [
            query(&db),
            SpjQuery::from_predicates(vec![
                Predicate::join(c(0, 1), c(1, 0)),
                Predicate::filter(c(0, 0), CmpOp::Eq, 1),
                Predicate::filter(c(1, 1), CmpOp::Le, 3),
                Predicate::filter(c(0, 1), CmpOp::Ge, 10),
            ])
            .unwrap(),
        ] {
            for mode in [ErrorMode::NInd, ErrorMode::Diff] {
                let mut dense =
                    SelectivityEstimator::new(&db, &q, &cat, mode).with_strategy(DpStrategy::Dense);
                let mut rec = SelectivityEstimator::new(&db, &q, &cat, mode)
                    .with_strategy(DpStrategy::Recursive);
                let n = q.predicates.len();
                for mask in 1u32..(1 << n) {
                    let p = PredSet(mask);
                    let (sd, ed) = dense.get_selectivity(p);
                    let (sr, er) = rec.get_selectivity(p);
                    assert_eq!(sd.to_bits(), sr.to_bits(), "sel mask {mask:#b}");
                    assert_eq!(ed.to_bits(), er.to_bits(), "err mask {mask:#b}");
                }
            }
        }
    }

    #[test]
    fn sit_driven_pruning_identical_across_strategies() {
        // The dense engine's subset-OR prune table must keep exactly the
        // decompositions the mask loop keeps.
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut dense = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense)
            .with_sit_driven_pruning();
        let mut rec = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Recursive)
            .with_sit_driven_pruning();
        let (sd, ed) = dense.get_selectivity(dense.context().all());
        let (sr, er) = rec.get_selectivity(rec.context().all());
        assert_eq!(sd.to_bits(), sr.to_bits());
        assert_eq!(ed.to_bits(), er.to_bits());
        assert_eq!(dense.stats().peel_entries, rec.stats().peel_entries);
    }

    #[test]
    fn chosen_decomposition_partitions_and_reproduces_the_error() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        for strategy in [DpStrategy::Dense, DpStrategy::Recursive] {
            for mode in [ErrorMode::NInd, ErrorMode::Diff] {
                let mut est =
                    SelectivityEstimator::new(&db, &q, &cat, mode).with_strategy(strategy);
                let all = est.context().all();
                let (_, err) = est.get_selectivity(all);
                let links = est.chosen_decomposition(all);
                // The P′ masks partition the query's predicate set.
                let mut union = PredSet::EMPTY;
                for &(p_prime, _) in &links {
                    assert!(!p_prime.is_empty());
                    assert!(union.intersect(p_prime).is_empty(), "links overlap");
                    union = union.union(p_prime);
                }
                assert_eq!(union, all);
                // Summing the memoized factor errors reproduces the DP's
                // total error.
                let replay_err: f64 = links
                    .iter()
                    .map(|&(p_prime, q)| est.conditional_factor(p_prime, q).1)
                    .sum();
                assert!(
                    (replay_err - err).abs() < 1e-12,
                    "{mode:?}/{strategy:?}: replay {replay_err} vs dp {err}"
                );
            }
        }
    }

    #[test]
    fn chosen_decomposition_is_stable_across_engines() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut dense = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense);
        let mut rec = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Recursive);
        let all = dense.context().all();
        assert_eq!(
            dense.chosen_decomposition(all),
            rec.chosen_decomposition(all),
            "both engines commit the identical argmin chain"
        );
    }

    #[test]
    fn chosen_decomposition_respects_pruning() {
        let db = skewed_db();
        let q = query(&db);
        let cat = full_catalog(&db);
        let mut pruned = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense)
            .with_sit_driven_pruning();
        let all = pruned.context().all();
        let (sel, err) = pruned.get_selectivity(all);
        let links = pruned.chosen_decomposition(all);
        let replay_err: f64 = links
            .iter()
            .map(|&(p_prime, q)| pruned.conditional_factor(p_prime, q).1)
            .sum();
        assert!((replay_err - err).abs() < 1e-12);
        assert!(sel > 0.0);
    }
}

//! Flat-table memoization for the subset-lattice dynamic program.
//!
//! `getSelectivity` touches up to `3ⁿ` `(P′, Q)` pairs and `n·2ⁿ` peel
//! links per query; at that visit rate the per-probe cost of a
//! `std::collections::HashMap` (SipHash, tombstone-aware probing, pointer
//! chasing) dominates the arithmetic. This module provides the two
//! allocation-light replacements the estimator's hot path runs on:
//!
//! * [`DenseMemo`] — a `Vec<(f64, f64)>` indexed **directly** by the
//!   [`crate::predset::PredSet`] mask, with a validity bitmap. A probe is
//!   one bit test plus one indexed load. Used when the query is small
//!   enough that the full `2ⁿ` table is affordable.
//! * [`FlatMemo`] — an open-addressed, linear-probing table keyed by `u64`
//!   with Fibonacci hashing. Used as the subset memo of the recursive
//!   fallback engine when `n` is too large for a dense table, and as the
//!   sparse layout behind [`PeelMemo`].
//! * [`PeelMemo`] — the per-link memo keyed by `(predicate, conditioning
//!   set)`. The `3ⁿ` subset walk probes it ~5 times per iteration (hundreds
//!   of millions of probes at `n = 16`), so when the dense engine runs and
//!   `n` is small enough it uses a **dense** `n·2ⁿ` layout whose probe is a
//!   shift, a bit test, and one indexed load — no hashing, no probing
//!   chain. Larger queries fall back to the open-addressed layout.
//!
//! All tables report `len()` as **occupied entries**, never capacity, so
//! [`crate::EstimatorStats`] stays meaningful across table layouts.

/// Key sentinel for empty [`FlatMemo`] slots. Estimator keys never collide
/// with it: subset masks fit in 32 bits and peel keys are
/// `(i << 32) | cset` with `i < 32`.
const EMPTY_KEY: u64 = u64::MAX;

/// Minimum open-addressed capacity (power of two).
const MIN_CAPACITY: usize = 64;

/// Dense subset memo: value table indexed directly by predicate-set mask
/// plus a validity bitmap.
#[derive(Debug, Clone)]
pub struct DenseMemo {
    vals: Vec<(f64, f64)>,
    valid: Vec<u64>,
    occupied: usize,
}

impl DenseMemo {
    /// A table covering all `2ⁿ` subset masks of an `n`-predicate query.
    pub fn new(n: usize) -> Self {
        let size = 1usize << n;
        DenseMemo {
            vals: vec![(0.0, 0.0); size],
            valid: vec![0u64; size.div_ceil(64)],
            occupied: 0,
        }
    }

    /// The memoized value for `mask`, if computed.
    #[inline]
    pub fn get(&self, mask: u32) -> Option<(f64, f64)> {
        let m = mask as usize;
        if self.valid[m >> 6] & (1u64 << (m & 63)) != 0 {
            Some(self.vals[m])
        } else {
            None
        }
    }

    /// True when `mask` has been computed.
    #[inline]
    pub fn contains(&self, mask: u32) -> bool {
        let m = mask as usize;
        self.valid[m >> 6] & (1u64 << (m & 63)) != 0
    }

    /// Stores the value for `mask`.
    #[inline]
    pub fn set(&mut self, mask: u32, value: (f64, f64)) {
        let m = mask as usize;
        let bit = 1u64 << (m & 63);
        if self.valid[m >> 6] & bit == 0 {
            self.valid[m >> 6] |= bit;
            self.occupied += 1;
        }
        self.vals[m] = value;
    }

    /// Number of **occupied** slots (computed subsets), not capacity.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

/// Open-addressed flat hash table from `u64` keys to `(f64, f64)` values:
/// Fibonacci hashing, linear probing, growth at 7/8 load. No deletion —
/// memo tables only ever grow within one query.
#[derive(Debug, Clone)]
pub struct FlatMemo {
    keys: Vec<u64>,
    vals: Vec<(f64, f64)>,
    len: usize,
}

impl FlatMemo {
    /// An empty table (small initial capacity, grows on demand).
    pub fn new() -> Self {
        FlatMemo {
            keys: vec![EMPTY_KEY; MIN_CAPACITY],
            vals: vec![(0.0, 0.0); MIN_CAPACITY],
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2⁶⁴/φ, take the top bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<(f64, f64)> {
        debug_assert_ne!(key, EMPTY_KEY);
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts (or overwrites) `key`.
    pub fn insert(&mut self, key: u64, value: (f64, f64)) {
        debug_assert_ne!(key, EMPTY_KEY);
        if (self.len + 1) * 8 >= self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = value;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = value;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![(0.0, 0.0); new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                self.insert(k, v);
            }
        }
    }

    /// Number of **occupied** slots, not capacity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for FlatMemo {
    fn default() -> Self {
        FlatMemo::new()
    }
}

/// The peel-memo key `(predicate index, conditioning-set mask)` packed into
/// one `u64`.
#[inline]
pub fn peel_key(i: usize, cset: u32) -> u64 {
    ((i as u64) << 32) | cset as u64
}

/// Dense peel memo: `n · 2ⁿ` slots indexed by `(i << n) | cset`, with a
/// validity bitmap — the peel-key analogue of [`DenseMemo`].
///
/// At `n = 16` the value table is 16 MiB; it is allocated zeroed (lazily
/// faulted by the OS), so construction stays cheap even when only a corner
/// of the lattice is ever touched.
#[derive(Debug, Clone)]
pub struct DensePeel {
    n: u32,
    vals: Vec<(f64, f64)>,
    valid: Vec<u64>,
    occupied: usize,
}

impl DensePeel {
    /// A table for all `(i, cset)` pairs of an `n`-predicate query.
    pub fn new(n: usize) -> Self {
        let size = n.max(1) << n;
        DensePeel {
            n: n as u32,
            vals: vec![(0.0, 0.0); size],
            valid: vec![0u64; size.div_ceil(64)],
            occupied: 0,
        }
    }

    /// Translates a packed [`peel_key`] into the dense slot index.
    #[inline]
    fn index(&self, key: u64) -> usize {
        (((key >> 32) as usize) << self.n) | (key as u32 as usize)
    }

    /// The memoized value under `key`, if computed.
    #[inline]
    pub fn get(&self, key: u64) -> Option<(f64, f64)> {
        let idx = self.index(key);
        if self.valid[idx >> 6] & (1u64 << (idx & 63)) != 0 {
            Some(self.vals[idx])
        } else {
            None
        }
    }

    /// Stores the value under `key`.
    #[inline]
    pub fn insert(&mut self, key: u64, value: (f64, f64)) {
        let idx = self.index(key);
        let bit = 1u64 << (idx & 63);
        if self.valid[idx >> 6] & bit == 0 {
            self.valid[idx >> 6] |= bit;
            self.occupied += 1;
        }
        self.vals[idx] = value;
    }

    /// Number of **occupied** slots, not capacity.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

/// The per-link peel memo, in whichever layout fits the query: dense
/// direct-indexed slots when the dense engine runs on a small-enough `n`,
/// open-addressed otherwise. Both layouts are keyed by the same packed
/// [`peel_key`], so every call site is layout-oblivious.
#[derive(Debug, Clone)]
pub enum PeelMemo {
    /// Direct-indexed `n·2ⁿ` table (the subset walk's probe becomes a
    /// shift + bit test + load).
    Dense(DensePeel),
    /// Open-addressed fallback (recursive engine, or `n` past the dense
    /// peel cap where `n·2ⁿ` slots cost real memory).
    Sparse(FlatMemo),
}

impl PeelMemo {
    /// An empty sparse table.
    pub fn sparse() -> Self {
        PeelMemo::Sparse(FlatMemo::new())
    }

    /// An empty dense table for an `n`-predicate query.
    pub fn dense(n: usize) -> Self {
        PeelMemo::Dense(DensePeel::new(n))
    }

    /// The memoized value under `key`, if computed.
    #[inline]
    pub fn get(&self, key: u64) -> Option<(f64, f64)> {
        match self {
            PeelMemo::Dense(d) => d.get(key),
            PeelMemo::Sparse(s) => s.get(key),
        }
    }

    /// Stores the value under `key`.
    #[inline]
    pub fn insert(&mut self, key: u64, value: (f64, f64)) {
        match self {
            PeelMemo::Dense(d) => d.insert(key, value),
            PeelMemo::Sparse(s) => s.insert(key, value),
        }
    }

    /// Number of **occupied** slots, not capacity.
    pub fn len(&self) -> usize {
        match self {
            PeelMemo::Dense(d) => d.len(),
            PeelMemo::Sparse(s) => s.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_memo_roundtrips_and_counts_occupied() {
        let mut m = DenseMemo::new(6);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
        assert_eq!(m.get(0b10_1010), None);
        m.set(0b10_1010, (0.5, 1.0));
        m.set(0, (1.0, 0.0));
        assert_eq!(m.get(0b10_1010), Some((0.5, 1.0)));
        assert_eq!(m.get(0), Some((1.0, 0.0)));
        assert_eq!(m.get(0b1), None);
        assert_eq!(m.len(), 2, "occupied slots, not the 64-slot capacity");
        // Overwrite does not double-count.
        m.set(0b10_1010, (0.25, 2.0));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0b10_1010), Some((0.25, 2.0)));
    }

    #[test]
    fn dense_memo_covers_multiword_bitmaps() {
        let mut m = DenseMemo::new(8);
        for mask in (0u32..256).step_by(3) {
            m.set(mask, (mask as f64, 0.0));
        }
        for mask in 0u32..256 {
            if mask % 3 == 0 {
                assert_eq!(m.get(mask), Some((mask as f64, 0.0)));
            } else {
                assert_eq!(m.get(mask), None);
            }
        }
    }

    #[test]
    fn flat_memo_roundtrips_across_growth() {
        let mut m = FlatMemo::new();
        assert!(m.is_empty());
        for i in 0u64..1000 {
            m.insert(i * 0x1_0001, (i as f64, -(i as f64)));
        }
        assert_eq!(m.len(), 1000, "occupied slots, not capacity");
        for i in 0u64..1000 {
            assert_eq!(m.get(i * 0x1_0001), Some((i as f64, -(i as f64))));
        }
        assert_eq!(m.get(3), None);
    }

    #[test]
    fn flat_memo_overwrites_in_place() {
        let mut m = FlatMemo::new();
        m.insert(42, (1.0, 2.0));
        m.insert(42, (3.0, 4.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(42), Some((3.0, 4.0)));
    }

    #[test]
    fn peel_keys_are_injective() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..32 {
            for cset in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF] {
                assert!(seen.insert(peel_key(i, cset)));
                assert_ne!(peel_key(i, cset), EMPTY_KEY);
            }
        }
    }
}

//! Group-By cardinality estimation — the extension the paper points to
//! ("see \[3\] for extensions that handle optional Group-By clauses").
//!
//! The number of groups of `Γ_a(σ_P(R^×))` is the number of distinct `a`
//! values surviving the predicates. SITs carry per-bucket distinct counts,
//! so the same candidate machinery that serves selectivity estimation
//! serves group counts:
//!
//! 1. estimate `n = |σ_P|` with `getSelectivity`,
//! 2. take the best available `SIT(a|Q′)` for the predicate context,
//!    restricted by any filter on `a` itself, giving the distinct-value
//!    pool `d`,
//! 3. correct for sampling with the Cardenas/Yao formula: drawing `n` rows
//!    from `d` equally likely values yields `d·(1 − (1 − 1/d)ⁿ)` distinct
//!    values in expectation.

use sqe_engine::{ColRef, Predicate};

use crate::estimator::SelectivityEstimator;
use crate::predset::PredSet;

/// Expected number of distinct values seen when drawing `n` rows uniformly
/// from a domain of `d` values (Cardenas' formula). Monotone in both
/// arguments, bounded by `min(n, d)`.
pub fn cardenas(d: f64, n: f64) -> f64 {
    if d <= 0.0 || n <= 0.0 {
        return 0.0;
    }
    if d <= 1.0 {
        return 1.0f64.min(n);
    }
    // Numerically stable for large n/d: (1 - 1/d)^n = exp(n·ln(1 - 1/d)).
    let expected = d * (1.0 - (n * (1.0 - 1.0 / d).ln()).exp());
    expected.min(d).min(n).max(1.0f64.min(n))
}

impl SelectivityEstimator<'_> {
    /// Estimated number of groups of `Γ_{attr}(σ_P(tables(P)^×))`.
    ///
    /// Uses the best applicable SIT for `attr` under `P`'s predicates to
    /// size the distinct-value pool (restricted by any range/comparison
    /// predicate on `attr` itself) and corrects the pool for the estimated
    /// result size with [`cardenas`].
    pub fn group_count(&mut self, attr: ColRef, p: PredSet) -> f64 {
        let n = self.cardinality(p);
        if n < 1.0 {
            return 0.0;
        }
        let preds = self.context().predicates_of(p);
        let hist = match self.best_histogram_for(attr, &preds) {
            Some(h) => h,
            None => return n.min(crate::estimator::DEFAULT_GROUPS),
        };
        // Restrict the distinct pool by filters on the grouping attribute.
        let mut d = hist.distinct_values();
        for pred in &preds {
            if !pred.columns().iter().any(|c| c == attr && pred.is_filter()) {
                continue;
            }
            if let Some((lo, hi)) = crate::estimator::filter_bounds(pred) {
                d = d.min(hist.restrict(lo, hi).distinct_values());
            }
        }
        cardenas(d.max(1.0), n)
    }
}

/// Exact group count over a materialized result — the oracle counterpart,
/// for tests and experiments.
pub fn true_group_count(
    db: &sqe_engine::Database,
    tables: &[sqe_engine::TableId],
    preds: &[Predicate],
    attr: ColRef,
) -> sqe_engine::Result<usize> {
    let rows = sqe_engine::execute_connected(db, tables, preds)?;
    let col = rows.gather(db, attr)?;
    let mut values = col.valid_values();
    values.sort_unstable();
    values.dedup();
    Ok(values.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorMode;
    use crate::sit::{Sit, SitCatalog};
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, Database, SpjQuery, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    #[test]
    fn cardenas_properties() {
        // Bounded by d and n.
        assert!(cardenas(100.0, 10.0) <= 10.0);
        assert!(cardenas(10.0, 1_000.0) <= 10.0);
        // Approaches d for n ≫ d.
        assert!((cardenas(10.0, 100_000.0) - 10.0).abs() < 1e-6);
        // n = 1 draws exactly one distinct value.
        assert!((cardenas(50.0, 1.0) - 1.0).abs() < 0.02);
        // Monotone in n.
        assert!(cardenas(100.0, 50.0) < cardenas(100.0, 500.0));
        // Degenerate inputs.
        assert_eq!(cardenas(0.0, 10.0), 0.0);
        assert_eq!(cardenas(10.0, 0.0), 0.0);
        assert_eq!(cardenas(1.0, 5.0), 1.0);
    }

    fn db() -> Database {
        // r(g, x): grouping attr g has 3 distinct values with skew; x joins s.
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("g", vec![1, 1, 1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 20, 99])
                .build()
                .unwrap(),
        );
        db
    }

    fn catalog(db: &Database) -> SitCatalog {
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut cat = SitCatalog::new();
        for col in [c(0, 0), c(0, 1), c(1, 0)] {
            cat.add(Sit::build_base(db, col).unwrap());
            cat.add(Sit::build(db, col, vec![join]).unwrap());
        }
        cat
    }

    #[test]
    fn group_count_matches_truth_through_a_join() {
        let db = db();
        let cat = catalog(&db);
        let join = Predicate::join(c(0, 1), c(1, 0));
        let q = SpjQuery::from_predicates(vec![join]).unwrap();
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let all = est.context().all();
        let estimated = est.group_count(c(0, 0), all);
        // Join keeps x ∈ {10, 20}: g ∈ {1, 2} → 2 true groups.
        let truth = true_group_count(&db, &q.tables, &q.predicates, c(0, 0)).unwrap() as f64;
        assert_eq!(truth, 2.0);
        assert!(
            (estimated - truth).abs() <= 1.0,
            "estimated {estimated} vs truth {truth}"
        );
    }

    #[test]
    fn filter_on_grouping_attribute_restricts_pool() {
        let db = db();
        let cat = catalog(&db);
        let q = SpjQuery::from_predicates(vec![Predicate::range(c(0, 0), 1, 1)]).unwrap();
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let all = est.context().all();
        let estimated = est.group_count(c(0, 0), all);
        assert!((estimated - 1.0).abs() < 0.2, "estimated {estimated}");
    }

    #[test]
    fn empty_result_yields_zero_groups() {
        let db = db();
        let cat = catalog(&db);
        let q =
            SpjQuery::from_predicates(vec![Predicate::filter(c(0, 0), CmpOp::Gt, 999)]).unwrap();
        let mut est = SelectivityEstimator::new(&db, &q, &cat, ErrorMode::Diff);
        let all = est.context().all();
        assert_eq!(est.group_count(c(0, 0), all), 0.0);
    }

    #[test]
    fn grouping_without_statistics_falls_back() {
        let db = db();
        let empty = SitCatalog::new();
        let q = SpjQuery::from_predicates(vec![Predicate::range(c(0, 0), 1, 3)]).unwrap();
        let mut est = SelectivityEstimator::new(&db, &q, &empty, ErrorMode::NInd);
        let all = est.context().all();
        let g = est.group_count(c(0, 0), all);
        assert!(g > 0.0 && g.is_finite());
    }
}

//! SITs — statistics on query expressions — and the SIT catalog.
//!
//! A SIT `SIT_R(a | Q)` is a histogram over attribute `a` built on the
//! result of evaluating the query expression `σ_Q(R^×)`, where `Q` is a set
//! of (join) predicates (§3.3 notation). A SIT with `Q = ∅` is an ordinary
//! base-table histogram. Each SIT carries the §3.5 `diff` value: the total
//! variation distance between the base-table distribution of `a` and its
//! distribution over `σ_Q(R^×)`, precomputed at build time ("values of diff
//! are calculated just once and stored with each SIT, so there is no
//! overhead at runtime").

use std::collections::HashMap;
use std::fmt;

use sqe_engine::{execute_connected, ColRef, Database, Predicate, Result as EngineResult, RowSet};
use sqe_histogram::{diff_exact, BuilderKind, Histogram, DEFAULT_BUCKETS};

/// Construction knobs for SIT histograms — the paper uses maxDiff with at
/// most 200 buckets; ablation experiments vary both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SitOptions {
    /// Histogram construction algorithm.
    pub kind: BuilderKind,
    /// Bucket budget.
    pub buckets: usize,
}

impl Default for SitOptions {
    fn default() -> Self {
        SitOptions {
            kind: BuilderKind::MaxDiff,
            buckets: DEFAULT_BUCKETS,
        }
    }
}

/// Identifier of a SIT within a [`SitCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SitId(pub u32);

/// A statistic on a query expression: `SIT(attr | cond)`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Sit {
    /// The attribute the histogram describes.
    pub attr: ColRef,
    /// The query expression's predicates (sorted canonically; empty for a
    /// base-table histogram). The paper's pools use join predicates only,
    /// but arbitrary predicates are supported.
    pub cond: Vec<Predicate>,
    /// Histogram of `attr` over `σ_cond(tables(cond ∪ {attr})^×)`.
    pub histogram: Histogram,
    /// The §3.5 `diff` value: 0 when the expression leaves the distribution
    /// of `attr` unchanged (the SIT is then no better than the base
    /// histogram), growing towards 1 as the distributions diverge.
    pub diff: f64,
}

impl Sit {
    /// True for a plain base-table histogram.
    pub fn is_base(&self) -> bool {
        self.cond.is_empty()
    }

    /// Builds a SIT by evaluating its query expression. The expression's
    /// tables are `tables(cond) ∪ {attr.table}` and must be connected
    /// (non-separable SITs are the only useful ones under the minimality
    /// assumption).
    pub fn build(db: &Database, attr: ColRef, cond: Vec<Predicate>) -> EngineResult<Self> {
        Self::build_with(db, attr, cond, SitOptions::default())
    }

    /// [`Self::build`] with explicit histogram construction options.
    pub fn build_with(
        db: &Database,
        attr: ColRef,
        cond: Vec<Predicate>,
        opts: SitOptions,
    ) -> EngineResult<Self> {
        let mut cond = cond;
        cond.sort_unstable();
        cond.dedup();
        if cond.is_empty() {
            return Self::build_base_with(db, attr, opts);
        }
        let mut tables: Vec<_> = cond
            .iter()
            .flat_map(|p| p.tables().iter())
            .chain(std::iter::once(attr.table))
            .collect();
        tables.sort_unstable();
        tables.dedup();
        let rows = execute_connected(db, &tables, &cond)?;
        Self::from_rowset_with(db, attr, cond, &rows, opts)
    }

    /// Builds a SIT from an already-executed expression result (used by the
    /// pool builder, which shares one execution among all SITs with the
    /// same expression).
    pub fn from_rowset(
        db: &Database,
        attr: ColRef,
        cond: Vec<Predicate>,
        rows: &RowSet,
    ) -> EngineResult<Self> {
        Self::from_rowset_with(db, attr, cond, rows, SitOptions::default())
    }

    /// [`Self::from_rowset`] with explicit histogram construction options.
    pub fn from_rowset_with(
        db: &Database,
        attr: ColRef,
        cond: Vec<Predicate>,
        rows: &RowSet,
        opts: SitOptions,
    ) -> EngineResult<Self> {
        let col = rows.gather(db, attr)?;
        let values = col.valid_values();
        let histogram = opts.kind.build(&values, col.null_count(), opts.buckets);
        let base_values = db.column(attr)?.valid_values();
        let diff = diff_exact(&base_values, &values);
        Ok(Sit {
            attr,
            cond,
            histogram,
            diff,
        })
    }

    /// Builds a base-table histogram (a SIT with an empty expression,
    /// `diff = 0` by definition).
    pub fn build_base(db: &Database, attr: ColRef) -> EngineResult<Self> {
        Self::build_base_with(db, attr, SitOptions::default())
    }

    /// [`Self::build_base`] with explicit histogram construction options.
    pub fn build_base_with(db: &Database, attr: ColRef, opts: SitOptions) -> EngineResult<Self> {
        let col = db.column(attr)?;
        let values = col.valid_values();
        let histogram = opts.kind.build(&values, col.null_count(), opts.buckets);
        Ok(Sit {
            attr,
            cond: Vec::new(),
            histogram,
            diff: 0.0,
        })
    }
}

impl fmt::Display for Sit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIT({}", self.attr)?;
        if !self.cond.is_empty() {
            write!(f, " | ")?;
            for (i, p) in self.cond.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, ")")
    }
}

/// A catalog of available SITs, indexed by attribute for fast candidate
/// lookup during estimation.
///
/// Serialization round-trips through the plain SIT list; the attribute
/// index is rebuilt on load.
#[derive(Debug, Clone, Default)]
pub struct SitCatalog {
    sits: Vec<Sit>,
    by_attr: HashMap<ColRef, Vec<SitId>>,
}

// Manual impls (rather than `#[serde(from/into)]`) so only the SIT list is
// encoded; the attribute index is rebuilt on load.
impl serde::Serialize for SitCatalog {
    fn to_value(&self) -> serde::Value {
        self.sits.to_value()
    }
}

impl serde::Deserialize for SitCatalog {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(SitCatalog::from(Vec::<Sit>::from_value(v)?))
    }
}

impl From<Vec<Sit>> for SitCatalog {
    fn from(sits: Vec<Sit>) -> Self {
        let mut catalog = SitCatalog::new();
        for sit in sits {
            catalog.add(sit);
        }
        catalog
    }
}

impl From<SitCatalog> for Vec<Sit> {
    fn from(catalog: SitCatalog) -> Self {
        catalog.sits
    }
}

impl SitCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a SIT, returning its id. Duplicate `(attr, cond)` pairs are
    /// rejected (returns the existing id instead).
    pub fn add(&mut self, sit: Sit) -> SitId {
        if let Some(existing) = self.by_attr.get(&sit.attr).and_then(|ids| {
            ids.iter()
                .find(|id| self.sits[id.0 as usize].cond == sit.cond)
        }) {
            return *existing;
        }
        let id = SitId(self.sits.len() as u32);
        self.by_attr.entry(sit.attr).or_default().push(id);
        self.sits.push(sit);
        id
    }

    /// The SIT with the given id.
    pub fn get(&self, id: SitId) -> &Sit {
        &self.sits[id.0 as usize]
    }

    /// Replaces the SIT at `id` (same attribute required, so the index
    /// stays valid). Returns false and leaves the catalog untouched when
    /// the attribute differs or the id is unknown.
    pub fn replace(&mut self, id: SitId, sit: Sit) -> bool {
        match self.sits.get_mut(id.0 as usize) {
            Some(slot) if slot.attr == sit.attr => {
                *slot = sit;
                true
            }
            _ => false,
        }
    }

    /// All SITs over the given attribute.
    pub fn for_attr(&self, attr: ColRef) -> &[SitId] {
        self.by_attr.get(&attr).map_or(&[], Vec::as_slice)
    }

    /// Number of SITs.
    pub fn len(&self) -> usize {
        self.sits.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sits.is_empty()
    }

    /// Iterates over `(id, sit)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SitId, &Sit)> {
        self.sits
            .iter()
            .enumerate()
            .map(|(i, s)| (SitId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::TableId;

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// r(a, x) joins s(y, b); r.a is correlated with join fan-out: the rows
    /// of r with a = 1 match many rows of s.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 1, 2, 2, 3, 3])
                .column("x", vec![10, 10, 20, 20, 30, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10, 10, 10, 20, 30])
                .column("b", vec![1, 2, 3, 4, 5, 6])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn base_sit_matches_column_distribution() {
        let db = skewed_db();
        let sit = Sit::build_base(&db, c(0, 0)).unwrap();
        assert!(sit.is_base());
        assert_eq!(sit.diff, 0.0);
        assert_eq!(sit.histogram.valid_rows(), 6.0);
        assert!((sit.histogram.eq_rows(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sit_over_join_captures_skew() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let sit = Sit::build(&db, c(0, 0), vec![join]).unwrap();
        assert!(!sit.is_base());
        // Join result: x=10 rows of r (a=1, two rows) each match 4 rows of
        // s; x=20 (a=2) match 1; x=30 (a=3) match 1. So a-values over the
        // join: 1×8, 2×2, 3×2 — skewed towards a=1.
        assert_eq!(sit.histogram.valid_rows(), 12.0);
        assert!((sit.histogram.eq_rows(1) - 8.0).abs() < 1e-9);
        // diff: base = (1/3,1/3,1/3), joined = (2/3,1/6,1/6) → ½·(1/3+1/6+1/6)=1/3
        assert!((sit.diff - 1.0 / 3.0).abs() < 1e-9, "diff = {}", sit.diff);
    }

    #[test]
    fn sit_with_independent_join_has_zero_diff() {
        // Every r row matches exactly once → distribution unchanged → the
        // SIT is provably useless (Example 4's argument) and diff = 0.
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3])
                .column("x", vec![10, 20, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 20, 30])
                .build()
                .unwrap(),
        );
        let join = Predicate::join(c(0, 1), c(1, 0));
        let sit = Sit::build(&db, c(0, 0), vec![join]).unwrap();
        assert_eq!(sit.diff, 0.0);
    }

    #[test]
    fn catalog_deduplicates_and_indexes() {
        let db = skewed_db();
        let join = Predicate::join(c(0, 1), c(1, 0));
        let mut catalog = SitCatalog::new();
        let base = catalog.add(Sit::build_base(&db, c(0, 0)).unwrap());
        let joined = catalog.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        let dup = catalog.add(Sit::build(&db, c(0, 0), vec![join]).unwrap());
        assert_eq!(joined, dup, "duplicate (attr, cond) collapses");
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.for_attr(c(0, 0)), &[base, joined]);
        assert!(catalog.for_attr(c(1, 1)).is_empty());
        assert_eq!(catalog.iter().count(), 2);
    }

    #[test]
    fn display_shows_expression() {
        let db = skewed_db();
        let sit = Sit::build_base(&db, c(0, 0)).unwrap();
        assert_eq!(sit.to_string(), "SIT(T0.c0)");
        let join = Predicate::join(c(0, 1), c(1, 0));
        let sit = Sit::build(&db, c(0, 0), vec![join]).unwrap();
        assert!(sit.to_string().starts_with("SIT(T0.c0 | "));
    }

    #[test]
    fn cond_is_canonicalized() {
        let db = skewed_db();
        let j = Predicate::join(c(0, 1), c(1, 0));
        let sit = Sit::build(&db, c(0, 0), vec![j, j]).unwrap();
        assert_eq!(sit.cond.len(), 1, "duplicates removed");
    }
}

//! SIT pool construction — the `J_i` pools of §5 ("Available SITs").
//!
//! Pool `J_i` contains every SIT of the form `SIT_R(a | Q)` where `Q`
//! consists of **at most `i` join predicates** and both `Q` and `a` are
//! *syntactically present in some query of the workload*. `J_0` is the set
//! of base-table histograms.
//!
//! Two refinements keep pools meaningful (and match the minimality
//! assumption of §3.1):
//!
//! * `Q` must form a *connected* join subgraph, and
//! * `Q` must reference the table of `a` — otherwise `σ_Q(…) × table(a)`
//!   is separable and the SIT provably adds nothing over the base
//!   histogram.
//!
//! SITs sharing the same expression are built from a single execution of
//! that expression, and distinct expressions execute **in parallel**
//! across threads (pool construction is the system's dominant offline
//! cost; the expressions are independent joins over a shared read-only
//! database). The resulting catalog is assembled in a deterministic order,
//! so parallel and sequential builds produce identical catalogs.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sqe_engine::dsu::Dsu;
use sqe_engine::{
    execute_connected, ColRef, Database, Predicate, Result as EngineResult, SpjQuery, TableId,
};

use crate::predset::PredSet;
use crate::sit::{Sit, SitCatalog, SitOptions};

/// Specification of a pool to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Maximum number of join predicates per SIT expression (the `i` of
    /// `J_i`). 0 builds base histograms only.
    pub max_join_preds: usize,
}

impl PoolSpec {
    /// The `J_i` pool spec.
    pub fn ji(i: usize) -> Self {
        PoolSpec { max_join_preds: i }
    }
}

/// Builds the `J_i` SIT pool for a workload (paper defaults: maxDiff, 200
/// buckets).
pub fn build_pool(
    db: &Database,
    workload: &[SpjQuery],
    spec: PoolSpec,
) -> EngineResult<SitCatalog> {
    build_pool_with(db, workload, spec, SitOptions::default())
}

/// [`build_pool`] with explicit histogram construction options (ablation).
/// Fans expression executions across all available cores; use
/// [`build_pool_threaded`] to control the thread count.
pub fn build_pool_with(
    db: &Database,
    workload: &[SpjQuery],
    spec: PoolSpec,
    opts: SitOptions,
) -> EngineResult<SitCatalog> {
    let threads = std::thread::available_parallelism()
        .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero"));
    build_pool_threaded(db, workload, spec, opts, threads)
}

/// [`build_pool_with`] with an explicit worker-thread count. `threads = 1`
/// builds strictly sequentially; any count produces the identical catalog.
pub fn build_pool_threaded(
    db: &Database,
    workload: &[SpjQuery],
    spec: PoolSpec,
    opts: SitOptions,
    threads: NonZeroUsize,
) -> EngineResult<SitCatalog> {
    // 1. Collect SIT definitions (attr, cond) from every query.
    let mut defs: HashMap<(ColRef, Vec<Predicate>), ()> = HashMap::new();
    for query in workload {
        let joins: Vec<Predicate> = query.joins().copied().collect();
        let attrs: Vec<ColRef> = query
            .predicates
            .iter()
            .flat_map(|p| p.columns().iter())
            .collect();
        for &attr in &attrs {
            // Base histogram (J_0 and up).
            defs.entry((attr, Vec::new())).or_default();
            if spec.max_join_preds == 0 || joins.is_empty() {
                continue;
            }
            // Connected join subsets touching attr's table, enumerated by
            // size (Gosper walk) — skips the ≥ i-join masks a full 2ʲ scan
            // would visit and reject.
            let all_joins = PredSet::full(joins.len());
            for k in 1..=spec.max_join_preds.min(joins.len()) {
                for subset_set in all_joins.subsets_of_size(k) {
                    let subset: Vec<Predicate> = subset_set.iter().map(|j| joins[j]).collect();
                    if !subset_connected_with(&subset, attr.table) {
                        continue;
                    }
                    let mut cond = subset;
                    cond.sort_unstable();
                    defs.entry((attr, cond)).or_default();
                }
            }
        }
    }

    // 2. Group definitions by expression so each expression executes once.
    let mut by_cond: HashMap<Vec<Predicate>, Vec<ColRef>> = HashMap::new();
    for (attr, cond) in defs.into_keys() {
        by_cond.entry(cond).or_default().push(attr);
    }

    // 3. Build. Each (expression, attrs) group is independent — it executes
    // its expression once and derives one SIT per attribute — so groups are
    // fanned across worker threads pulling from a shared index. Results
    // land in per-group slots and are assembled in group order, making the
    // catalog identical to a sequential build regardless of thread count
    // or scheduling.
    let mut conds: Vec<(Vec<Predicate>, Vec<ColRef>)> = by_cond.into_iter().collect();
    conds.sort_by(|a, b| a.0.len().cmp(&b.0.len()).then(a.0.cmp(&b.0)));
    for (_, attrs) in &mut conds {
        attrs.sort_unstable();
        attrs.dedup();
    }

    let build_group = |cond: &[Predicate], attrs: &[ColRef]| -> EngineResult<Vec<Sit>> {
        if cond.is_empty() {
            return attrs
                .iter()
                .map(|&attr| Sit::build_base_with(db, attr, opts))
                .collect();
        }
        let mut tables: Vec<TableId> = cond.iter().flat_map(|p| p.tables().iter()).collect();
        tables.sort_unstable();
        tables.dedup();
        let rows = execute_connected(db, &tables, cond)?;
        attrs
            .iter()
            .map(|&attr| Sit::from_rowset_with(db, attr, cond.to_vec(), &rows, opts))
            .collect()
    };

    let workers = threads.get().min(conds.len());
    let built: Vec<EngineResult<Vec<Sit>>> = if workers <= 1 {
        conds
            .iter()
            .map(|(cond, attrs)| build_group(cond, attrs))
            .collect()
    } else {
        let slots: Vec<Mutex<Option<EngineResult<Vec<Sit>>>>> =
            conds.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((cond, attrs)) = conds.get(i) else {
                        break;
                    };
                    let result = build_group(cond, attrs);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every group index was claimed by a worker")
            })
            .collect()
    };

    let mut catalog = SitCatalog::new();
    for group in built {
        for sit in group? {
            catalog.add(sit);
        }
    }
    Ok(catalog)
}

/// True when the join predicates form one connected component that includes
/// `anchor`.
fn subset_connected_with(joins: &[Predicate], anchor: TableId) -> bool {
    let mut tables: Vec<TableId> = joins.iter().flat_map(|p| p.tables().iter()).collect();
    tables.sort_unstable();
    tables.dedup();
    let Ok(anchor_idx) = tables.binary_search(&anchor) else {
        return false;
    };
    let mut dsu = Dsu::new(tables.len());
    for p in joins {
        let ts: Vec<usize> = p
            .tables()
            .iter()
            .map(|t| tables.binary_search(&t).expect("table collected above"))
            .collect();
        for w in ts.windows(2) {
            dsu.union(w[0], w[1]);
        }
    }
    (0..tables.len()).all(|i| dsu.same(i, anchor_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CmpOp, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    /// Chain r — s — t.
    fn db3() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3, 4])
                .column("x", vec![1, 1, 2, 2])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![1, 2, 2])
                .column("z", vec![7, 8, 9])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("t")
                .column("w", vec![7, 7, 8])
                .column("v", vec![1, 2, 3])
                .build()
                .unwrap(),
        );
        db
    }

    fn workload(db: &Database) -> Vec<SpjQuery> {
        let _ = db;
        vec![SpjQuery::from_predicates(vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 2),
            Predicate::filter(c(2, 1), CmpOp::Ge, 2),
        ])
        .unwrap()]
    }

    #[test]
    fn j0_contains_only_base_histograms() {
        let db = db3();
        let pool = build_pool(&db, &workload(&db), PoolSpec::ji(0)).unwrap();
        assert!(pool.iter().all(|(_, s)| s.is_base()));
        // Attributes: r.a, r.x, s.y, s.z, t.w, t.v — all referenced.
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn pools_grow_with_i() {
        let db = db3();
        let wl = workload(&db);
        let p0 = build_pool(&db, &wl, PoolSpec::ji(0)).unwrap();
        let p1 = build_pool(&db, &wl, PoolSpec::ji(1)).unwrap();
        let p2 = build_pool(&db, &wl, PoolSpec::ji(2)).unwrap();
        assert!(p0.len() < p1.len());
        assert!(p1.len() < p2.len());
    }

    #[test]
    fn conditions_are_connected_and_anchored() {
        let db = db3();
        let pool = build_pool(&db, &workload(&db), PoolSpec::ji(2)).unwrap();
        for (_, sit) in pool.iter() {
            if sit.is_base() {
                continue;
            }
            assert!(
                subset_connected_with(&sit.cond, sit.attr.table),
                "{sit} must anchor its attribute's table"
            );
        }
        // SIT(r.a | s ⋈ t) must NOT exist: r.a's table is not in the
        // expression.
        let j_st = Predicate::join(c(1, 1), c(2, 0));
        assert!(
            !pool
                .iter()
                .any(|(_, s)| s.attr == c(0, 0) && s.cond == vec![j_st]),
            "separable SIT should be pruned"
        );
        // SIT(r.a | r ⋈ s) must exist.
        let j_rs = Predicate::join(c(0, 1), c(1, 0));
        assert!(pool
            .iter()
            .any(|(_, s)| s.attr == c(0, 0) && s.cond == vec![j_rs]));
    }

    #[test]
    fn two_join_pool_contains_full_expression_sits() {
        let db = db3();
        let pool = build_pool(&db, &workload(&db), PoolSpec::ji(2)).unwrap();
        // SIT(s.z | r⋈s ∧ s⋈t) should exist (s touches both joins).
        assert!(pool
            .iter()
            .any(|(_, s)| s.attr == c(1, 1) && s.cond.len() == 2));
        // r.a anchored: r⋈s alone, or both joins (connected through s).
        assert!(pool
            .iter()
            .any(|(_, s)| s.attr == c(0, 0) && s.cond.len() == 2));
    }

    #[test]
    fn subset_connectivity_helper() {
        let j_rs = Predicate::join(c(0, 1), c(1, 0));
        let j_st = Predicate::join(c(1, 1), c(2, 0));
        assert!(subset_connected_with(&[j_rs], TableId(0)));
        assert!(subset_connected_with(&[j_rs], TableId(1)));
        assert!(!subset_connected_with(&[j_rs], TableId(2)));
        assert!(subset_connected_with(&[j_rs, j_st], TableId(2)));
        assert!(!subset_connected_with(&[], TableId(0)));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let db = db3();
        let wl = workload(&db);
        let opts = SitOptions::default();
        let one = NonZeroUsize::new(1).unwrap();
        let eight = NonZeroUsize::new(8).unwrap();
        let seq = build_pool_threaded(&db, &wl, PoolSpec::ji(2), opts, one).unwrap();
        let par = build_pool_threaded(&db, &wl, PoolSpec::ji(2), opts, eight).unwrap();
        assert_eq!(seq.len(), par.len());
        for ((ia, sa), (ib, sb)) in seq.iter().zip(par.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(sa.attr, sb.attr);
            assert_eq!(sa.cond, sb.cond);
            assert_eq!(
                sa.diff.to_bits(),
                sb.diff.to_bits(),
                "diff must be bit-identical"
            );
            assert_eq!(sa.histogram, sb.histogram);
        }
    }

    #[test]
    fn pool_is_deterministic() {
        let db = db3();
        let wl = workload(&db);
        let a = build_pool(&db, &wl, PoolSpec::ji(2)).unwrap();
        let b = build_pool(&db, &wl, PoolSpec::ji(2)).unwrap();
        assert_eq!(a.len(), b.len());
        for ((_, sa), (_, sb)) in a.iter().zip(b.iter()) {
            assert_eq!(sa.attr, sb.attr);
            assert_eq!(sa.cond, sb.cond);
            assert_eq!(sa.diff, sb.diff);
        }
    }
}

//! Cross-query estimator caching: canonical cache keys and the shared
//! cache interface.
//!
//! A [`crate::SelectivityEstimator`] memoizes per-query, but an estimation
//! *service* answers streams of queries against one catalog, and most of
//! the expensive work — per-link conditional factors and SIT-pair join
//! products — recurs across queries. This module defines the contract
//! between the estimator and an externally owned cache (implemented by the
//! `sqe-service` crate):
//!
//! * [`CacheKey`] — a canonicalized fingerprint of a conditional
//!   selectivity request `Sel(P' | Q)` under an [`ErrorMode`];
//! * [`SharedEstimatorCache`] — the read-through/write-through interface
//!   the estimator consults on local-memo misses.
//!
//! ## Validity contract
//!
//! Cached values are raw estimator outputs, so a shared cache is only valid
//! for estimators with an **identical configuration**: same database, same
//! SIT catalogs (1-D and 2-D), and same pruning setting. Join-product and
//! `H3` entries are keyed by [`SitId`], which is only meaningful within one
//! catalog; a cache must therefore never outlive the catalog it was filled
//! against (the service keeps the cache inside its catalog snapshot for
//! exactly this reason). Error modes may share a cache: the mode is part of
//! every key.
//!
//! The estimator's per-query memos are flat tables (see [`crate::flat`]),
//! not `HashMap`s; the hook points are unchanged — the estimator consults
//! this cache exactly when its flat per-link table misses and writes back
//! every freshly computed value — and because cached values are pure
//! functions of their key, the dense engine's different lattice visit
//! order never changes what lands in (or comes out of) a shared cache.

use sqe_engine::Predicate;
use sqe_histogram::Histogram;

use crate::error::ErrorMode;
use crate::sit::SitId;

/// Canonical fingerprint of a conditional selectivity request
/// `Sel(P' | Q)` under an error mode.
///
/// Construction canonicalizes both predicate lists (sorted, deduplicated),
/// so any two requests over the same predicate *sets* — regardless of the
/// within-query predicate indexing that produced them — map to the same
/// key. Distinct `(P', Q, mode)` triples map to distinct keys (the keys
/// store the full predicates, not a lossy hash).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    mode: ErrorMode,
    /// The estimated predicates `P'`, canonicalized.
    preds: Vec<Predicate>,
    /// The conditioning set `Q`, canonicalized. For sequence-sensitive
    /// entries ([`CacheKey::query`]) this instead preserves the caller's
    /// order.
    cond: Vec<Predicate>,
    /// True for order-preserving whole-query keys.
    sequenced: bool,
}

impl CacheKey {
    /// Key for the conditional factor `Sel(preds | cond)` under `mode`.
    pub fn conditional(mode: ErrorMode, preds: &[Predicate], cond: &[Predicate]) -> Self {
        CacheKey {
            mode,
            preds: canonicalize(preds),
            cond: canonicalize(cond),
            sequenced: false,
        }
    }

    /// Key for a whole-query result, preserving the query's predicate
    /// order.
    ///
    /// Whole-query estimates are *not* invariant under predicate
    /// reordering: the estimator expands multi-predicate factors into an
    /// implicit chain whose link order follows the query's predicate
    /// indexing (Example 3), so permuting the predicates changes the
    /// conditioning sets of intermediate links and hence (legitimately)
    /// the estimate. Sorting here would let one ordering's result answer
    /// for another's; keeping the sequence makes a hit bit-identical to
    /// recomputation.
    pub fn query(mode: ErrorMode, preds: &[Predicate]) -> Self {
        CacheKey {
            mode,
            preds: preds.to_vec(),
            cond: Vec::new(),
            sequenced: true,
        }
    }

    /// The error mode this key was built under.
    pub fn mode(&self) -> ErrorMode {
        self.mode
    }

    /// True when any predicate of this key (estimated or conditioning)
    /// reads one of `tables`. A key that touches no mutated table is still
    /// valid after a partial catalog install — this is the predicate the
    /// service's cache carry-over filters on.
    pub fn touches(&self, tables: &[sqe_engine::TableId]) -> bool {
        self.preds
            .iter()
            .chain(self.cond.iter())
            .flat_map(|p| p.tables().iter())
            .any(|t| tables.contains(&t))
    }
}

/// Sorted + deduplicated copy of a predicate list.
fn canonicalize(preds: &[Predicate]) -> Vec<Predicate> {
    let mut v = preds.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// A cache shared by many estimators over one catalog snapshot.
///
/// All methods take `&self`: implementations are internally synchronized
/// (the service implementation shards its state under mutexes). The
/// estimator consults the shared cache *after* its own per-query memo
/// misses and writes every freshly computed value back, so a hot cache
/// converges to answering most link work without any histogram
/// manipulation.
///
/// See the module docs for the validity contract (one cache per estimator
/// configuration and catalog snapshot).
pub trait SharedEstimatorCache: Send + Sync {
    /// Cached `(selectivity, error)` for a conditional factor.
    fn get_link(&self, key: &CacheKey) -> Option<(f64, f64)>;
    /// Stores a conditional factor result.
    fn put_link(&self, key: CacheKey, value: (f64, f64));
    /// Cached join selectivity of a SIT pair.
    fn get_join(&self, pair: (SitId, SitId)) -> Option<f64>;
    /// Stores a SIT-pair join selectivity.
    fn put_join(&self, pair: (SitId, SitId), selectivity: f64);
    /// Cached `H3` result histogram and divergence of a SIT pair (§3.3).
    fn get_h3(&self, pair: (SitId, SitId)) -> Option<(Histogram, f64)>;
    /// Stores a SIT-pair `H3` result.
    fn put_h3(&self, pair: (SitId, SitId), value: (Histogram, f64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::{CmpOp, ColRef, TableId};

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    #[test]
    fn conditional_keys_are_order_insensitive() {
        let p1 = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let p2 = Predicate::join(c(0, 1), c(1, 0));
        let p3 = Predicate::filter(c(1, 1), CmpOp::Le, 5);
        let a = CacheKey::conditional(ErrorMode::NInd, &[p1], &[p2, p3]);
        let b = CacheKey::conditional(ErrorMode::NInd, &[p1], &[p3, p2]);
        assert_eq!(a, b);
    }

    #[test]
    fn conditional_keys_dedup() {
        let p1 = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let p2 = Predicate::join(c(0, 1), c(1, 0));
        let a = CacheKey::conditional(ErrorMode::Diff, &[p1], &[p2, p2]);
        let b = CacheKey::conditional(ErrorMode::Diff, &[p1], &[p2]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_make_distinct_keys() {
        let p1 = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let p2 = Predicate::join(c(0, 1), c(1, 0));
        let base = CacheKey::conditional(ErrorMode::NInd, &[p1], &[p2]);
        assert_ne!(base, CacheKey::conditional(ErrorMode::Diff, &[p1], &[p2]));
        assert_ne!(base, CacheKey::conditional(ErrorMode::NInd, &[p2], &[p1]));
        assert_ne!(base, CacheKey::conditional(ErrorMode::NInd, &[p1], &[]));
    }

    #[test]
    fn query_keys_preserve_order() {
        let p1 = Predicate::filter(c(0, 0), CmpOp::Eq, 1);
        let p2 = Predicate::join(c(0, 1), c(1, 0));
        assert_ne!(
            CacheKey::query(ErrorMode::NInd, &[p1, p2]),
            CacheKey::query(ErrorMode::NInd, &[p2, p1])
        );
        // And never collide with canonicalized conditional keys.
        assert_ne!(
            CacheKey::query(ErrorMode::NInd, &[p1]),
            CacheKey::conditional(ErrorMode::NInd, &[p1], &[])
        );
    }
}

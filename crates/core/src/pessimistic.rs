//! Pessimistic cardinality estimation: guaranteed upper bounds from degree
//! sequences (after Abo Khamis et al., arXiv 2412.00642).
//!
//! A [`BoundSketch`] precomputes, per table, the row count and per-column
//! *maximum degree* — the highest frequency of any single non-NULL value.
//! For an SPJ query those numbers give a sound cardinality bound:
//!
//! * partition the query's tables into connected components of the join
//!   graph; components multiply (their cross product is an upper bound);
//! * within a component, pick a root and grow a spanning tree: each table
//!   `t` joined in through columns `c₁..cₖ` (every join edge connecting it
//!   to the already-covered set) multiplies the bound by
//!   `min_i maxdeg_t(cᵢ)` — no row of the partial result can match more
//!   rows of `t` than its least-permissive join key admits;
//! * minimize over root choices (every choice is sound; the minimum is
//!   just the tightest of them).
//!
//! Filters are ignored — they only shrink the result, so the bound stays
//! sound (and fast: evaluation is `O(|tables|²)` arithmetic, no data
//! access). NULL join keys never match in the engine, so degrees over
//! valid values only are exact. The bound **never degrades to unknown**:
//! any well-formed query over known tables gets a finite sound answer,
//! which is what backs the `Quality::Bound` floor of the degradation
//! ladder and the service's `Estimate::upper_bound` field.

use std::collections::HashMap;
use std::sync::Arc;

use sqe_engine::{Database, Predicate, SpjQuery, TableId};

use crate::backend::SelectivityBackend;
use crate::failpoint;

/// Per-table degree summary.
#[derive(Debug, Clone, Default)]
struct TableDegrees {
    rows: f64,
    /// Max frequency of any single non-NULL value, per column.
    max_freq: Vec<f64>,
}

/// The degree-sequence bound sketch over one database snapshot.
#[derive(Debug, Clone, Default)]
pub struct BoundSketch {
    tables: Vec<TableDegrees>,
}

impl BoundSketch {
    /// Scans every column once and records row counts and maximum value
    /// frequencies.
    pub fn build(db: &Database) -> Self {
        let mut tables = Vec::with_capacity(db.table_count());
        for t in 0..db.table_count() as u32 {
            let Ok(table) = db.table(TableId(t)) else {
                tables.push(TableDegrees::default());
                continue;
            };
            let max_freq = table
                .columns()
                .iter()
                .map(|col| {
                    let mut freq: HashMap<i64, u64> = HashMap::new();
                    for v in col.iter_valid() {
                        *freq.entry(v).or_insert(0) += 1;
                    }
                    freq.values().copied().max().unwrap_or(0) as f64
                })
                .collect();
            tables.push(TableDegrees {
                rows: table.row_count() as f64,
                max_freq,
            });
        }
        BoundSketch { tables }
    }

    /// Guaranteed upper bound on the query's result cardinality. Always
    /// finite for queries over tables the sketch knows; `None` only when a
    /// referenced table is unknown (a sketch/db mismatch).
    pub fn upper_bound(&self, query: &SpjQuery) -> Option<f64> {
        failpoint::fire("pessimistic::bound");
        let tables = &query.tables;
        for &t in tables {
            self.tables.get(t.0 as usize)?;
        }
        // Join edges as (table index, column, table index, column).
        let idx_of = |id: TableId| tables.iter().position(|&t| t == id);
        let mut edges: Vec<(usize, u16, usize, u16)> = Vec::new();
        for p in &query.predicates {
            if let Predicate::Join { left, right } = *p {
                if let (Some(li), Some(ri)) = (idx_of(left.table), idx_of(right.table)) {
                    edges.push((li, left.column, ri, right.column));
                }
            }
        }
        // Components of the join graph (tables with no joins are
        // singletons and contribute their full row count — a cartesian
        // factor).
        let mut comp: Vec<usize> = (0..tables.len()).collect();
        for &(li, _, ri, _) in &edges {
            let (a, b) = (root(&comp, li), root(&comp, ri));
            if a != b {
                comp[a] = b;
            }
        }
        let mut bound = 1.0f64;
        for c in 0..tables.len() {
            if root(&comp, c) != c {
                continue;
            }
            let members: Vec<usize> = (0..tables.len()).filter(|&m| root(&comp, m) == c).collect();
            bound *= self.component_bound(tables, &members, &edges);
        }
        Some(bound)
    }

    /// `min` over root choices of the greedy spanning-tree degree product.
    fn component_bound(
        &self,
        tables: &[TableId],
        members: &[usize],
        edges: &[(usize, u16, usize, u16)],
    ) -> f64 {
        let rows = |m: usize| self.tables[tables[m].0 as usize].rows;
        let deg = |m: usize, col: u16| {
            self.tables[tables[m].0 as usize]
                .max_freq
                .get(col as usize)
                .copied()
                .unwrap_or_else(|| rows(m))
        };
        let mut best = f64::INFINITY;
        for &start in members {
            let mut in_set: Vec<usize> = vec![start];
            let mut b = rows(start);
            // Greedy BFS growth in deterministic member order: each new
            // table contributes the least-permissive degree among every
            // edge tying it to the covered set.
            while in_set.len() < members.len() {
                let mut grown = false;
                for &m in members {
                    if in_set.contains(&m) {
                        continue;
                    }
                    let mut factor = f64::INFINITY;
                    for &(li, lc, ri, rc) in edges {
                        if li == m && in_set.contains(&ri) {
                            factor = factor.min(deg(m, lc));
                        } else if ri == m && in_set.contains(&li) {
                            factor = factor.min(deg(m, rc));
                        }
                    }
                    if factor.is_finite() {
                        b *= factor;
                        in_set.push(m);
                        grown = true;
                    }
                }
                debug_assert!(grown, "members form one connected component");
                if !grown {
                    break;
                }
            }
            best = best.min(b);
        }
        best
    }
}

fn root(comp: &[usize], mut x: usize) -> usize {
    while comp[x] != x {
        x = comp[x];
    }
    x
}

/// The backend wrapper: peels delegate entirely (point estimates are the
/// default machinery's), but the whole-query upper bound is published
/// through the trait for the service's `Estimate::upper_bound` field and
/// the ladder's `Quality::Bound` floor.
#[derive(Debug, Clone)]
pub struct PessimisticBackend {
    sketch: Arc<BoundSketch>,
}

impl PessimisticBackend {
    /// Wraps a prebuilt sketch (share one per database snapshot).
    pub fn new(sketch: Arc<BoundSketch>) -> Self {
        PessimisticBackend { sketch }
    }

    /// Convenience: build the sketch and wrap it.
    pub fn from_db(db: &Database) -> Self {
        PessimisticBackend::new(Arc::new(BoundSketch::build(db)))
    }
}

impl SelectivityBackend for PessimisticBackend {
    fn name(&self) -> &'static str {
        "pessimistic"
    }

    fn upper_bound(&self, query: &SpjQuery) -> Option<f64> {
        self.sketch.upper_bound(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqe_engine::table::TableBuilder;
    use sqe_engine::{CardinalityOracle, CmpOp, ColRef};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("k", vec![0, 0, 1, 1, 1, 2, 3, 3])
                .column("a", vec![1, 2, 3, 4, 5, 6, 7, 8])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("k", vec![0, 1, 1, 2, 2, 2, 9])
                .column("b", vec![5, 5, 5, 5, 1, 1, 1])
                .build()
                .unwrap(),
        );
        db
    }

    fn q(preds: Vec<Predicate>) -> SpjQuery {
        SpjQuery::from_predicates(preds).unwrap()
    }

    #[test]
    fn single_join_bound_is_sound_and_reasonably_tight() {
        let db = db();
        let sketch = BoundSketch::build(&db);
        let query = q(vec![Predicate::join(
            ColRef::new(TableId(0), 0),
            ColRef::new(TableId(1), 0),
        )]);
        let bound = sketch.upper_bound(&query).unwrap();
        let truth = CardinalityOracle::new(&db)
            .cardinality(&query.tables, &query.predicates)
            .unwrap() as f64;
        assert!(bound >= truth, "bound {bound} < truth {truth}");
        // r has 8 rows, s's max key degree is 3 → bound ≤ 24, and the
        // other orientation gives 7 × 3 = 21.
        assert!(bound <= 21.0 + 1e-9, "bound {bound} looser than expected");
    }

    #[test]
    fn filters_never_break_soundness() {
        let db = db();
        let sketch = BoundSketch::build(&db);
        let query = q(vec![
            Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0)),
            Predicate::filter(ColRef::new(TableId(0), 1), CmpOp::Le, 3),
            Predicate::range(ColRef::new(TableId(1), 1), 5, 5),
        ]);
        let bound = sketch.upper_bound(&query).unwrap();
        let truth = CardinalityOracle::new(&db)
            .cardinality(&query.tables, &query.predicates)
            .unwrap() as f64;
        assert!(bound >= truth);
    }

    #[test]
    fn filter_only_query_is_bounded_by_table_size() {
        let db = db();
        let sketch = BoundSketch::build(&db);
        let query = q(vec![Predicate::filter(
            ColRef::new(TableId(0), 1),
            CmpOp::Le,
            2,
        )]);
        assert_eq!(sketch.upper_bound(&query).unwrap(), 8.0);
    }

    #[test]
    fn multi_edge_between_two_tables_takes_the_tighter_degree() {
        let db = db();
        let sketch = BoundSketch::build(&db);
        // Join on k AND a=b: a/b degrees are tighter than k's on r's side
        // (column a is a key: degree 1).
        let query = q(vec![
            Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0)),
            Predicate::join(ColRef::new(TableId(0), 1), ColRef::new(TableId(1), 1)),
        ]);
        let bound = sketch.upper_bound(&query).unwrap();
        let truth = CardinalityOracle::new(&db)
            .cardinality(&query.tables, &query.predicates)
            .unwrap() as f64;
        assert!(bound >= truth);
        // From root s (7 rows), r joins in with degree min(deg_k=3, deg_a=1)=1.
        assert!(bound <= 7.0 + 1e-9, "bound {bound}");
    }
}

//! A deliberately small HTTP/1.1 subset: enough for a JSON estimation
//! front door, nothing more.
//!
//! Supported: `GET`/`POST`, `Content-Length` bodies, keep-alive (the
//! default in 1.1) and `Connection: close`. Not supported — and answered
//! with a clean `400`/`413` instead of undefined behavior: chunked
//! transfer encoding, continuation lines, pipelined requests beyond
//! back-to-back parsing of complete messages, upgrade.
//!
//! Parsing is incremental: the reactor appends whatever bytes arrived to
//! a connection buffer and calls [`parse_request`], which either consumes
//! one complete request or reports [`Parse::Incomplete`] (wait for more
//! bytes) or [`Parse::Bad`] (the connection is garbage; answer 400 and
//! close). Limits are enforced *while* the message is incomplete, so a
//! peer cannot balloon memory by never finishing its headers.

/// Maximum size of the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The path component of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The query string, if any (without the `?`).
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the peer asked to close after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Convenience constructor for tests and in-process dispatch.
    pub fn new(method: &str, target: &str, body: impl Into<Vec<u8>>) -> Self {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }
}

/// Result of an incremental parse attempt.
#[derive(Debug)]
pub enum Parse {
    /// Not enough bytes yet; keep the buffer and read more.
    Incomplete,
    /// One complete request; `consumed` bytes must be drained from the
    /// front of the buffer (pipelined bytes after it stay).
    Done {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// The stream is not valid HTTP within our limits; answer 400/413 and
    /// close.
    Bad(&'static str),
}

/// Attempts to parse one complete request from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Parse::Bad("request head exceeds limit");
        }
        return Parse::Incomplete;
    };
    if head_end > MAX_HEAD {
        return Parse::Bad("request head exceeds limit");
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return Parse::Bad("request head is not UTF-8");
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return Parse::Bad("unsupported HTTP version");
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Bad("malformed header line");
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(k, v)| *k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Parse::Bad("transfer-encoding not supported");
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY => n,
            Ok(_) => return Parse::Bad("body exceeds limit"),
            Err(_) => return Parse::Bad("malformed content-length"),
        },
        None => 0,
    };
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Parse::Incomplete;
    }
    Parse::Done {
        request: Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[body_start..body_start + content_length].to_vec(),
        },
        consumed: body_start + content_length,
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response to serialize back to the peer.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }

    /// Serializes status line, headers, and body into wire bytes.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_post_with_body() {
        let raw = b"POST /v1/estimate?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        match parse_request(raw) {
            Parse::Done { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path(), "/v1/estimate");
                assert_eq!(request.query(), Some("x=1"));
                assert_eq!(request.header("host"), Some("h"));
                assert_eq!(request.body, b"body");
                assert!(!request.wants_close());
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_head_and_body_wait_for_more_bytes() {
        assert!(matches!(
            parse_request(b"GET /metrics HTTP/1.1\r\n"),
            Parse::Incomplete
        ));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Parse::Incomplete
        ));
    }

    #[test]
    fn pipelined_second_request_stays_in_the_buffer() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        match parse_request(raw) {
            Parse::Done { request, consumed } => {
                assert_eq!(request.path(), "/a");
                assert_eq!(&raw[consumed..], b"GET /b HTTP/1.1\r\n\r\n");
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_oversize_and_chunked() {
        assert!(matches!(parse_request(b"NOPE\r\n\r\n"), Parse::Bad(_)));
        let oversize = vec![b'a'; MAX_HEAD + 8];
        assert!(matches!(parse_request(&oversize), Parse::Bad(_)));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"),
            Parse::Bad(_)
        ));
        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Parse::Bad(_)
        ));
    }

    #[test]
    fn response_bytes_carry_length_and_connection() {
        let r = Response::json(200, "{}".to_string());
        let bytes = String::from_utf8(r.to_bytes(true)).unwrap();
        assert!(bytes.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(bytes.contains("Content-Length: 2\r\n"));
        assert!(bytes.contains("Connection: keep-alive\r\n"));
        assert!(bytes.ends_with("\r\n\r\n{}"));
        let closed = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"));
    }
}

//! `sqe-server` — a multi-tenant HTTP/JSON front door over
//! [`sqe_service::EstimationService`].
//!
//! The crate is four small layers:
//!
//! - [`http`] — a deliberately minimal HTTP/1.1 subset (incremental
//!   parser, keep-alive, hard head/body limits), no external deps;
//! - [`quota`] — per-tenant token buckets (rate, burst, max-in-flight,
//!   deadline ceiling), with *honest* retry hints derived from the
//!   refill math and pressure-compressed deadlines that turn a tenant's
//!   overload into *its own* quality degradation;
//! - [`tenant`] — the [`FrontDoor`]: a registry of tenants, each with an
//!   independent epoch-tagged catalog ([`sqe_core::LiveCatalog`] +
//!   partial installs) and a [`crate::metrics::TenantMetrics`] sink, all
//!   sharing one process-wide [`sqe_service::AdmissionControl`];
//! - [`server`] — a single-threaded non-blocking reactor
//!   (`TcpListener` poll loop) with the `server::accept` /
//!   `server::read` / `server::respond` chaos failpoints placed so
//!   admission accounting cannot leak.
//!
//! ## Routes
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `POST /v1/<tenant>/estimate` | `{"tables":[0,1],"predicates":[...],"deadline_ms":null}` | estimate with rung label, epoch, sound upper bound |
//! | `POST /v1/<tenant>/ingest` | a [`sqe_engine::delta::DeltaBatch`] | ingest report + new epoch |
//! | `GET /v1/<tenant>/stats` | — | the tenant's metrics snapshot |
//! | `GET /metrics` | — | Prometheus-style text, all tenants |
//! | `GET /healthz` | — | `ok` |
//!
//! Refusals are `429` with `{"scope":"quota"|"tenant"|"global",
//! "retry_after_ms":...}` — the scope names which admission gate shed
//! the request and the hint is computed from that gate's own state (see
//! [`tenant`] for the three-gate stack).

#![warn(missing_docs)]

pub mod http;
pub mod metrics;
pub mod quota;
pub mod server;
pub mod tenant;

pub use http::{Request, Response};
pub use metrics::{MetricsSnapshot, TenantMetrics};
pub use quota::{QuotaConfig, TokenBucket};
pub use server::{spawn, ServerHandle, ServerStats};
pub use tenant::{DoorError, FrontDoor, ShedScope, Tenant, TenantConfig};

#[cfg(test)]
mod assertions {
    use super::*;

    fn _assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_types_are_send_sync() {
        _assert_send_sync::<FrontDoor>();
        _assert_send_sync::<Tenant>();
        _assert_send_sync::<TenantMetrics>();
        _assert_send_sync::<TokenBucket>();
    }
}

//! The reactor: a single-threaded non-blocking accept/read/respond loop
//! over `std::net::TcpListener` — no executor, no external event
//! library.
//!
//! Design: the listener and every accepted connection run in
//! non-blocking mode; the loop round-robins (accept once, then pump
//! every live connection), sleeping briefly when an iteration moved no
//! bytes. On a one-estimate-per-millisecond service the poll sleep
//! (≤ 500 µs) is noise, and a single thread is *deliberate*: request
//! handling itself fans out through the tenant's `EstimationService`,
//! so the reactor only parses, dispatches, and serializes.
//!
//! ## Failpoints
//!
//! Three chaos sites model the ways a front end loses a request, each at
//! a point where the admission accounting makes leaks impossible by
//! construction:
//!
//! - `server::accept` — fires **before** the connection is tracked: the
//!   socket is dropped (client sees a reset), nothing was acquired.
//! - `server::read` — fires **before** dispatch: the connection dies
//!   with bytes in its buffer; no token or permit was taken yet.
//! - `server::respond` — fires **after** [`FrontDoor::handle`] returned:
//!   every token was spent and every RAII permit already released inside
//!   `handle`; the client just never hears the answer (connection
//!   closed). The chaos suite asserts both pools return to idle.
//!
//! A panic inside `handle` (e.g. an armed estimator failpoint) is caught
//! with `catch_unwind`, answered as a 500, and the connection keeps
//! serving — the service layer has already quarantined and recovered.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqe_core::failpoint;

use crate::http::{parse_request, Parse, Response, MAX_BODY, MAX_HEAD};
use crate::tenant::FrontDoor;

/// Poll sleep when an iteration moved no bytes.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Reactor counters (relaxed; monitoring only).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Requests fully parsed and dispatched.
    pub requests: AtomicU64,
    /// Responses written back.
    pub responses: AtomicU64,
    /// Connections dropped for unparseable input.
    pub parse_errors: AtomicU64,
    /// Connections killed by the `server::accept` failpoint.
    pub accept_failures: AtomicU64,
    /// Connections killed by the `server::read` failpoint or IO errors.
    pub read_failures: AtomicU64,
    /// Responses suppressed by the `server::respond` failpoint.
    pub respond_failures: AtomicU64,
    /// Dispatches that panicked and were answered 500.
    pub handler_panics: AtomicU64,
}

/// A running server: address, stop flag, reactor thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 in `spawn` to get an ephemeral one).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reactor counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// Signals the reactor to exit and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One live connection's buffers.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    close_after_flush: bool,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and runs the reactor on a new
/// thread until the handle is shut down or dropped.
pub fn spawn(door: Arc<FrontDoor>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let thread = {
        let (stop, stats) = (Arc::clone(&stop), Arc::clone(&stats));
        std::thread::Builder::new()
            .name("sqe-server".to_string())
            .spawn(move || reactor(listener, door, stop, stats))?
    };
    Ok(ServerHandle {
        addr: local,
        stop,
        stats,
        thread: Some(thread),
    })
}

fn reactor(
    listener: TcpListener,
    door: Arc<FrontDoor>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) {
        let mut moved = false;
        // Accept every pending connection this iteration.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    moved = true;
                    if failpoint::fire_err("server::accept").is_err() {
                        // Dropped before tracking: the peer sees a reset,
                        // and no server-side state was created.
                        stats.accept_failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    conns.push(Conn {
                        stream,
                        inbuf: Vec::new(),
                        outbuf: Vec::new(),
                        close_after_flush: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Pump every connection; retain the live ones.
        conns.retain_mut(|conn| match pump(conn, &door, &stats, &mut scratch) {
            Pump::Idle => true,
            Pump::Moved => {
                moved = true;
                true
            }
            Pump::Close => {
                moved = true;
                false
            }
        });
        if !moved {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

enum Pump {
    /// Nothing to do on this connection.
    Idle,
    /// Bytes moved; poll again immediately.
    Moved,
    /// Connection finished or failed; drop it.
    Close,
}

fn pump(conn: &mut Conn, door: &FrontDoor, stats: &ServerStats, scratch: &mut [u8]) -> Pump {
    // Flush pending output first: a response already produced must not
    // wait behind new input.
    if !conn.outbuf.is_empty() {
        match conn.stream.write(&conn.outbuf) {
            Ok(0) => return Pump::Close,
            Ok(n) => {
                conn.outbuf.drain(..n);
                if conn.outbuf.is_empty() && conn.close_after_flush {
                    return Pump::Close;
                }
                return Pump::Moved;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Pump::Idle,
            Err(_) => return Pump::Close,
        }
    }
    if conn.close_after_flush {
        return Pump::Close;
    }
    match conn.stream.read(scratch) {
        Ok(0) => Pump::Close, // peer closed
        Ok(n) => {
            if failpoint::fire_err("server::read").is_err() {
                // Connection dies mid-read: bytes discarded before any
                // token or permit was taken.
                stats.read_failures.fetch_add(1, Ordering::Relaxed);
                return Pump::Close;
            }
            conn.inbuf.extend_from_slice(&scratch[..n]);
            if conn.inbuf.len() > MAX_HEAD + MAX_BODY + 4 {
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                return Pump::Close;
            }
            // Drain every complete pipelined request in the buffer.
            loop {
                match parse_request(&conn.inbuf) {
                    Parse::Incomplete => break,
                    Parse::Bad(why) => {
                        stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::text(400, format!("{why}\n"));
                        conn.outbuf.extend_from_slice(&resp.to_bytes(false));
                        conn.close_after_flush = true;
                        break;
                    }
                    Parse::Done { request, consumed } => {
                        conn.inbuf.drain(..consumed);
                        stats.requests.fetch_add(1, Ordering::Relaxed);
                        let response = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                            door.handle(&request)
                        })) {
                            Ok(r) => r,
                            Err(_) => {
                                // The service layer has already
                                // quarantined + recovered; the front
                                // end just reports the loss.
                                stats.handler_panics.fetch_add(1, Ordering::Relaxed);
                                Response::text(500, "internal error\n")
                            }
                        };
                        if failpoint::fire_err("server::respond").is_err() {
                            // All accounting inside handle() is settled
                            // (tokens spent, permits released); only the
                            // bytes are lost.
                            stats.respond_failures.fetch_add(1, Ordering::Relaxed);
                            return Pump::Close;
                        }
                        let keep_alive = !request.wants_close();
                        conn.outbuf
                            .extend_from_slice(&response.to_bytes(keep_alive));
                        stats.responses.fetch_add(1, Ordering::Relaxed);
                        if !keep_alive {
                            conn.close_after_flush = true;
                            break;
                        }
                    }
                }
            }
            Pump::Moved
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock => Pump::Idle,
        Err(_) => {
            stats.read_failures.fetch_add(1, Ordering::Relaxed);
            Pump::Close
        }
    }
}

//! Per-tenant metrics: a [`MetricsSink`] implementation that aggregates
//! one tenant's request stream into directly queryable counters.
//!
//! Before this crate, latency buckets lived process-wide in
//! `ServiceStats`, so a per-tenant p99 had to be reconstructed by
//! differencing global snapshots — impossible once two tenants
//! interleave. Here each tenant owns a [`TenantMetrics`] installed into
//! its `EstimationService` via `with_metrics`, so rung mix, shed counts,
//! bound widths, observed ingest epochs, and the full latency histogram
//! are attributed at the source.
//!
//! The latency histogram is log-linear: exact 1 µs buckets below 4 µs,
//! then four sub-buckets per octave (a bucket's upper edge overstates
//! its smallest member by at most 25%) up to ~8 s, 88 buckets total. Quantiles walk the
//! cumulative counts and report the *upper* edge of the containing
//! bucket, so a reported p99 is conservative — never better than
//! reality.
//!
//! Everything is relaxed atomics: these are monitoring signals read by
//! `/metrics` scrapes and the soak harness, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

use sqe_core::{DegradeReason, MetricsSink, Quality};

/// Number of log-linear latency buckets (µs granularity; see module docs).
pub const NUM_BUCKETS: usize = 88;

const RELAXED: Ordering = Ordering::Relaxed;

/// Bucket index for a latency of `us` microseconds.
fn bucket_of_us(us: u64) -> usize {
    if us < 4 {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as u64; // floor(log2(us)) ≥ 2
    let sub = (us >> (octave - 2)) - 4; // 0..4 within the octave
    let idx = (4 * (octave - 1) + sub) as usize;
    idx.min(NUM_BUCKETS - 1)
}

/// Exclusive upper edge of bucket `idx`, in microseconds.
fn upper_edge_us(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64 + 1;
    }
    let octave = idx as u64 / 4 + 1;
    let sub = idx as u64 % 4;
    (sub + 5) << (octave - 2)
}

fn zeroed() -> [AtomicU64; NUM_BUCKETS] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

fn quality_idx(q: Quality) -> usize {
    Quality::ALL.iter().position(|&x| x == q).unwrap_or(0)
}

fn reason_idx(r: DegradeReason) -> usize {
    match r {
        DegradeReason::Deadline => 0,
        DegradeReason::WorkQuota => 1,
        DegradeReason::Cancelled => 2,
        DegradeReason::Panic => 3,
    }
}

const REASON_LABELS: [&str; 4] = ["deadline", "work_quota", "cancelled", "panic"];

/// One tenant's aggregated request metrics (install via
/// `EstimationService::with_metrics`).
#[derive(Debug)]
pub struct TenantMetrics {
    attempted: [AtomicU64; 6],
    answered: [AtomicU64; 6],
    served: [AtomicU64; 6],
    degraded: [AtomicU64; 4],
    cached: AtomicU64,
    latency: [AtomicU64; NUM_BUCKETS],
    sheds: AtomicU64,
    shed_retry_ns_sum: AtomicU64,
    shed_retry_ns_max: AtomicU64,
    quarantines: AtomicU64,
    width_count: AtomicU64,
    /// Σ ratio, in milli-units (×1000), saturating.
    width_sum_milli: AtomicU64,
    width_max_milli: AtomicU64,
    max_epoch: AtomicU64,
}

impl Default for TenantMetrics {
    fn default() -> Self {
        TenantMetrics {
            attempted: std::array::from_fn(|_| AtomicU64::new(0)),
            answered: std::array::from_fn(|_| AtomicU64::new(0)),
            served: std::array::from_fn(|_| AtomicU64::new(0)),
            degraded: std::array::from_fn(|_| AtomicU64::new(0)),
            cached: AtomicU64::new(0),
            latency: zeroed(),
            sheds: AtomicU64::new(0),
            shed_retry_ns_sum: AtomicU64::new(0),
            shed_retry_ns_max: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            width_count: AtomicU64::new(0),
            width_sum_milli: AtomicU64::new(0),
            width_max_milli: AtomicU64::new(0),
            max_epoch: AtomicU64::new(0),
        }
    }
}

impl MetricsSink for TenantMetrics {
    fn rung_attempted(&self, quality: Quality) {
        self.attempted[quality_idx(quality)].fetch_add(1, RELAXED);
    }

    fn rung_answered(&self, quality: Quality, reason: Option<DegradeReason>) {
        self.answered[quality_idx(quality)].fetch_add(1, RELAXED);
        if let Some(r) = reason {
            self.degraded[reason_idx(r)].fetch_add(1, RELAXED);
        }
    }

    fn estimate_served(&self, latency_ns: u64, quality: Quality, cached: bool) {
        self.served[quality_idx(quality)].fetch_add(1, RELAXED);
        if cached {
            self.cached.fetch_add(1, RELAXED);
        }
        self.latency[bucket_of_us(latency_ns / 1_000)].fetch_add(1, RELAXED);
    }

    fn shed(&self, retry_after_ns: u64) {
        self.sheds.fetch_add(1, RELAXED);
        self.shed_retry_ns_sum.fetch_add(retry_after_ns, RELAXED);
        self.shed_retry_ns_max.fetch_max(retry_after_ns, RELAXED);
    }

    fn quarantine(&self) {
        self.quarantines.fetch_add(1, RELAXED);
    }

    fn bound_width(&self, ratio: f64) {
        let milli = (ratio * 1000.0).min(u64::MAX as f64) as u64;
        self.width_count.fetch_add(1, RELAXED);
        self.width_sum_milli.fetch_add(milli, RELAXED);
        self.width_max_milli.fetch_max(milli, RELAXED);
    }

    fn ingest_epoch_observed(&self, epoch: u64) {
        self.max_epoch.fetch_max(epoch, RELAXED);
    }
}

impl TenantMetrics {
    /// Total estimates served (all rungs, cached or not).
    pub fn served_total(&self) -> u64 {
        self.served.iter().map(|c| c.load(RELAXED)).sum()
    }

    /// Estimates served from `quality`.
    pub fn served_at(&self, quality: Quality) -> u64 {
        self.served[quality_idx(quality)].load(RELAXED)
    }

    /// Requests refused (quota or admission) so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(RELAXED)
    }

    /// Quarantine events so far.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(RELAXED)
    }

    /// Largest retry hint handed out, in nanoseconds (0 when never shed).
    pub fn max_retry_ns(&self) -> u64 {
        self.shed_retry_ns_max.load(RELAXED)
    }

    /// Highest catalog epoch any served answer observed.
    pub fn max_epoch(&self) -> u64 {
        self.max_epoch.load(RELAXED)
    }

    /// Conservative latency quantile in microseconds: the upper edge of
    /// the bucket containing the `q`-quantile observation (`q` in 0..=1).
    /// Returns 0 when nothing was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.latency.iter().map(|c| c.load(RELAXED)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &n) in counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return upper_edge_us(idx);
            }
        }
        upper_edge_us(NUM_BUCKETS - 1)
    }

    /// Fraction of served answers at full quality (1.0 when nothing
    /// served — an idle tenant is not a degraded tenant).
    pub fn full_fraction(&self) -> f64 {
        let total = self.served_total();
        if total == 0 {
            return 1.0;
        }
        self.served_at(Quality::Full) as f64 / total as f64
    }

    /// Point-in-time copy of every counter, for reports and assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let width_count = self.width_count.load(RELAXED);
        let sheds = self.sheds.load(RELAXED);
        MetricsSnapshot {
            rungs: Quality::ALL
                .iter()
                .enumerate()
                .map(|(i, q)| RungCounts {
                    rung: q.label().to_string(),
                    attempted: self.attempted[i].load(RELAXED),
                    answered: self.answered[i].load(RELAXED),
                    served: self.served[i].load(RELAXED),
                })
                .collect(),
            degraded: REASON_LABELS
                .iter()
                .enumerate()
                .map(|(i, label)| ReasonCount {
                    reason: label.to_string(),
                    count: self.degraded[i].load(RELAXED),
                })
                .collect(),
            served_total: self.served_total(),
            cached: self.cached.load(RELAXED),
            full_fraction: self.full_fraction(),
            sheds,
            shed_retry_ms_mean: if sheds == 0 {
                0.0
            } else {
                self.shed_retry_ns_sum.load(RELAXED) as f64 / sheds as f64 / 1e6
            },
            shed_retry_ms_max: self.shed_retry_ns_max.load(RELAXED) as f64 / 1e6,
            quarantines: self.quarantines.load(RELAXED),
            bound_width_mean: if width_count == 0 {
                0.0
            } else {
                self.width_sum_milli.load(RELAXED) as f64 / width_count as f64 / 1000.0
            },
            bound_width_max: self.width_max_milli.load(RELAXED) as f64 / 1000.0,
            max_epoch: self.max_epoch.load(RELAXED),
            p50_us: self.latency_quantile_us(0.50),
            p99_us: self.latency_quantile_us(0.99),
            p999_us: self.latency_quantile_us(0.999),
        }
    }

    /// Prometheus-style text exposition for this tenant, one line per
    /// series, all labeled `tenant="<name>"`.
    pub fn render(&self, tenant: &str, out: &mut String) {
        use std::fmt::Write;
        for (i, q) in Quality::ALL.iter().enumerate() {
            let (a, ans, s) = (
                self.attempted[i].load(RELAXED),
                self.answered[i].load(RELAXED),
                self.served[i].load(RELAXED),
            );
            if a + ans + s > 0 {
                let rung = q.label();
                let _ = writeln!(
                    out,
                    "sqe_rung_attempted_total{{tenant=\"{tenant}\",rung=\"{rung}\"}} {a}"
                );
                let _ = writeln!(
                    out,
                    "sqe_rung_answered_total{{tenant=\"{tenant}\",rung=\"{rung}\"}} {ans}"
                );
                let _ = writeln!(
                    out,
                    "sqe_estimates_served_total{{tenant=\"{tenant}\",rung=\"{rung}\"}} {s}"
                );
            }
        }
        for (i, label) in REASON_LABELS.iter().enumerate() {
            let n = self.degraded[i].load(RELAXED);
            if n > 0 {
                let _ = writeln!(
                    out,
                    "sqe_degraded_total{{tenant=\"{tenant}\",reason=\"{label}\"}} {n}"
                );
            }
        }
        let _ = writeln!(
            out,
            "sqe_estimates_cached_total{{tenant=\"{tenant}\"}} {}",
            self.cached.load(RELAXED)
        );
        let _ = writeln!(
            out,
            "sqe_sheds_total{{tenant=\"{tenant}\"}} {}",
            self.sheds.load(RELAXED)
        );
        let _ = writeln!(
            out,
            "sqe_quarantines_total{{tenant=\"{tenant}\"}} {}",
            self.quarantines.load(RELAXED)
        );
        let _ = writeln!(
            out,
            "sqe_ingest_epoch{{tenant=\"{tenant}\"}} {}",
            self.max_epoch.load(RELAXED)
        );
        for (q, name) in [(0.50, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
            let _ = writeln!(
                out,
                "sqe_latency_us{{tenant=\"{tenant}\",quantile=\"{name}\"}} {}",
                self.latency_quantile_us(q)
            );
        }
    }
}

/// Per-rung counters inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct RungCounts {
    /// Rung label (`Quality::label`).
    pub rung: String,
    /// Rungs the ladder tried.
    pub attempted: u64,
    /// Rungs that produced the answer.
    pub answered: u64,
    /// End-to-end estimates served at this rung.
    pub served: u64,
}

/// Per-degrade-reason count inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReasonCount {
    /// Reason label.
    pub reason: String,
    /// Degraded answers attributed to it.
    pub count: u64,
}

/// Serializable point-in-time view of a tenant's [`TenantMetrics`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct MetricsSnapshot {
    /// Per-rung attempt/answer/served counts, worst-to-best.
    pub rungs: Vec<RungCounts>,
    /// Degraded answers by reason.
    pub degraded: Vec<ReasonCount>,
    /// Total estimates served.
    pub served_total: u64,
    /// Estimates answered by the whole-query cache.
    pub cached: u64,
    /// Fraction of served answers at `full` quality.
    pub full_fraction: f64,
    /// Requests refused with a retry hint.
    pub sheds: u64,
    /// Mean retry hint across sheds, milliseconds.
    pub shed_retry_ms_mean: f64,
    /// Largest retry hint handed out, milliseconds.
    pub shed_retry_ms_max: f64,
    /// Cache quarantine events.
    pub quarantines: u64,
    /// Mean bound/estimate envelope ratio.
    pub bound_width_mean: f64,
    /// Widest bound/estimate envelope ratio.
    pub bound_width_max: f64,
    /// Highest catalog epoch observed by served answers.
    pub max_epoch: u64,
    /// Conservative latency quantiles, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_edges_cover_them() {
        let mut prev = 0usize;
        for us in 0..100_000u64 {
            let b = bucket_of_us(us);
            assert!(b >= prev, "bucket regressed at {us}µs");
            assert!(us < upper_edge_us(b), "{us}µs ≥ edge of its bucket {b}");
            // A bucket's upper edge overstates its smallest member by at
            // most one sub-bucket width: 25% of the octave start, +1µs.
            let edge = upper_edge_us(b) as f64;
            assert!(edge <= us as f64 * 1.25 + 1.0, "edge {edge} vs {us}");
            prev = b;
        }
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        assert_eq!(bucket_of_us(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative() {
        let m = TenantMetrics::default();
        for _ in 0..99 {
            m.estimate_served(1_000, Quality::Full, false); // 1µs
        }
        m.estimate_served(1_000_000, Quality::Full, false); // 1ms
        let p50 = m.latency_quantile_us(0.50);
        assert!(p50 <= 2, "p50 {p50}µs");
        let p999 = m.latency_quantile_us(0.999);
        assert!((1000..=1300).contains(&p999), "p999 {p999}µs");
        assert_eq!(m.latency_quantile_us(0.0), 2); // upper edge of 1µs bucket
    }

    #[test]
    fn rung_mix_and_full_fraction() {
        let m = TenantMetrics::default();
        assert_eq!(m.full_fraction(), 1.0); // idle ≠ degraded
        m.rung_attempted(Quality::Full);
        m.rung_answered(Quality::Pruned, Some(DegradeReason::Deadline));
        m.estimate_served(10_000, Quality::Pruned, false);
        m.estimate_served(10_000, Quality::Full, true);
        assert_eq!(m.served_total(), 2);
        assert_eq!(m.served_at(Quality::Pruned), 1);
        assert!((m.full_fraction() - 0.5).abs() < 1e-9);
        let snap = m.snapshot();
        assert_eq!(snap.cached, 1);
        assert_eq!(snap.degraded[0].count, 1); // deadline
    }

    #[test]
    fn sheds_and_epochs_aggregate() {
        let m = TenantMetrics::default();
        m.shed(4_000_000);
        m.shed(2_000_000);
        m.ingest_epoch_observed(3);
        m.ingest_epoch_observed(1);
        m.bound_width(2.0);
        m.bound_width(6.0);
        let snap = m.snapshot();
        assert_eq!(snap.sheds, 2);
        assert!((snap.shed_retry_ms_mean - 3.0).abs() < 1e-9);
        assert!((snap.shed_retry_ms_max - 4.0).abs() < 1e-9);
        assert_eq!(snap.max_epoch, 3);
        assert!((snap.bound_width_mean - 4.0).abs() < 1e-9);
        assert!((snap.bound_width_max - 6.0).abs() < 1e-9);
    }

    #[test]
    fn render_emits_labeled_series() {
        let m = TenantMetrics::default();
        m.rung_attempted(Quality::Full);
        m.rung_answered(Quality::Full, None);
        m.estimate_served(5_000, Quality::Full, false);
        m.shed(1_000_000);
        let mut out = String::new();
        m.render("acme", &mut out);
        assert!(out.contains("sqe_rung_answered_total{tenant=\"acme\",rung=\"full\"} 1"));
        assert!(out.contains("sqe_sheds_total{tenant=\"acme\"} 1"));
        assert!(out.contains("sqe_latency_us{tenant=\"acme\",quantile=\"0.99\"}"));
    }
}

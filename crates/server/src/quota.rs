//! Per-tenant token-bucket quotas with honest retry hints and
//! pressure-compressed deadlines.
//!
//! Every tenant owns one [`TokenBucket`] configured by [`QuotaConfig`]:
//! a sustained request *rate*, a *burst* capacity, a *max-in-flight*
//! concurrency bound (enforced separately, by the tenant's
//! per-tenant admission pool), and a *deadline ceiling* — the largest
//! latency envelope any single request of this tenant may claim.
//!
//! ## Quota math
//!
//! The bucket holds up to `burst` tokens and refills continuously at
//! `rate` tokens/second. Each admitted request spends one token. A
//! request arriving at an empty bucket is refused with a retry hint that
//! is *computable, not guessed*:
//!
//! ```text
//! retry_after = (1 − tokens) / rate
//! ```
//!
//! — exactly the time until the refill produces the next whole token.
//! This is the "honest hint" of the PR headline: it derives from the
//! tenant's own bucket state, unlike a global latency average which says
//! nothing about *this* tenant's allowance.
//!
//! ## Pressure and deadline compression
//!
//! The bucket also measures *demand pressure*: arrivals (admitted or
//! refused) are counted over a rolling [`PRESSURE_WINDOW`]; pressure is
//! `arrivals / (rate × window)`. A well-behaved tenant sits at ≤ 1. A
//! tenant driving 2× its contracted rate measures ≈ 2.
//!
//! Pressure compresses the deadline every admitted request receives:
//!
//! ```text
//! effective_deadline = ceiling / max(1, pressure)²
//! ```
//!
//! so overload translates into *quality* degradation down the estimation
//! ladder (the answers come back fast, labeled `pruned`/`greedy`/...)
//! for the overloading tenant only, while its throughput within quota
//! holds. The quadratic makes the squeeze decisive: at 2× overload a
//! tenant keeps only a quarter of its latency envelope, pushing wide
//! queries off the `Full` rung deterministically rather than letting
//! them straddle the boundary.
//!
//! All methods take an explicit `now: Instant` so tests drive a
//! synthetic clock; production callers pass `Instant::now()`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Demand-measurement window (see module docs).
pub const PRESSURE_WINDOW: Duration = Duration::from_millis(250);

/// Floor on a pressure-compressed deadline: the ceiling is never squeezed
/// below `ceiling / MAX_COMPRESSION`, so even a grossly overloading
/// tenant's admitted requests keep a sliver of budget (they land on the
/// independence floor honestly, instead of a zero-deadline degenerate
/// path).
pub const MAX_COMPRESSION: f64 = 64.0;

/// Per-tenant quota contract.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Sustained admissions per second (token refill rate).
    pub rate: f64,
    /// Bucket capacity: how many requests may burst back-to-back after an
    /// idle period.
    pub burst: f64,
    /// Per-tenant concurrent in-flight bound (enforced by the tenant's
    /// admission pool, not the bucket itself).
    pub max_in_flight: usize,
    /// Largest deadline any request of this tenant is granted; also the
    /// default when the request names none.
    pub deadline_ceiling: Duration,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate: 100.0,
            burst: 20.0,
            max_in_flight: 4,
            deadline_ceiling: Duration::from_millis(50),
        }
    }
}

impl QuotaConfig {
    /// Time a fully drained bucket needs to refill completely — the
    /// per-tenant cap on any retry hint this tenant is ever given (a
    /// tenant is never told to back off longer than its own bucket needs;
    /// see `FrontDoor`).
    pub fn full_refill(&self) -> Duration {
        if self.rate <= 0.0 {
            return Duration::from_secs(1);
        }
        Duration::from_secs_f64(self.burst.max(1.0) / self.rate)
    }
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
    window_start: Instant,
    window_arrivals: f64,
    /// Pressure of the last *completed* window.
    settled_pressure: f64,
    admitted: u64,
    refused: u64,
}

/// A tenant's token bucket (interior-mutable, shared by reference).
#[derive(Debug)]
pub struct TokenBucket {
    config: QuotaConfig,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A full bucket starting its pressure window at `now`.
    pub fn new(config: QuotaConfig, now: Instant) -> Self {
        TokenBucket {
            config,
            state: Mutex::new(BucketState {
                tokens: config.burst,
                last_refill: now,
                window_start: now,
                window_arrivals: 0.0,
                settled_pressure: 0.0,
                admitted: 0,
                refused: 0,
            }),
        }
    }

    /// The quota contract this bucket enforces.
    pub fn config(&self) -> &QuotaConfig {
        &self.config
    }

    /// Records one arrival and spends a token, or refuses with the exact
    /// refill-derived retry hint (see the module docs).
    pub fn try_take(&self, now: Instant) -> Result<(), Duration> {
        let mut s = self.state.lock().expect("bucket lock");
        self.refill(&mut s, now);
        self.observe_arrival(&mut s, now);
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            s.admitted += 1;
            Ok(())
        } else {
            s.refused += 1;
            let deficit = 1.0 - s.tokens;
            Err(Duration::from_secs_f64(
                deficit / self.config.rate.max(f64::MIN_POSITIVE),
            ))
        }
    }

    /// Current demand pressure: arrivals per second over the rolling
    /// window, divided by the contracted rate. ≤ 1 for a tenant inside
    /// its quota.
    pub fn pressure(&self, now: Instant) -> f64 {
        let mut s = self.state.lock().expect("bucket lock");
        self.roll_window(&mut s, now);
        let elapsed = now.duration_since(s.window_start).as_secs_f64();
        // Blend the settled window with the live one once the live one
        // has enough signal; before that the settled value stands alone
        // so one early burst doesn't read as infinite pressure.
        let live = if elapsed >= PRESSURE_WINDOW.as_secs_f64() / 2.0 {
            s.window_arrivals / (self.config.rate.max(f64::MIN_POSITIVE) * elapsed)
        } else {
            0.0
        };
        s.settled_pressure.max(live)
    }

    /// The deadline an admitted request receives right now:
    /// `ceiling / max(1, pressure)²`, floored at `ceiling / 64` (see the
    /// module docs for why overload compresses quality, not throughput).
    pub fn effective_deadline(&self, now: Instant) -> Duration {
        let p = self.pressure(now).max(1.0);
        let compression = (p * p).min(MAX_COMPRESSION);
        self.config.deadline_ceiling.div_f64(compression)
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn tokens(&self, now: Instant) -> f64 {
        let mut s = self.state.lock().expect("bucket lock");
        self.refill(&mut s, now);
        s.tokens
    }

    /// Requests admitted (tokens spent) so far.
    pub fn admitted(&self) -> u64 {
        self.state.lock().expect("bucket lock").admitted
    }

    /// Requests refused for lack of tokens so far.
    pub fn refused(&self) -> u64 {
        self.state.lock().expect("bucket lock").refused
    }

    fn refill(&self, s: &mut BucketState, now: Instant) {
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        if dt > 0.0 {
            s.tokens = (s.tokens + dt * self.config.rate).min(self.config.burst);
            s.last_refill = now;
        }
    }

    fn observe_arrival(&self, s: &mut BucketState, now: Instant) {
        self.roll_window(s, now);
        s.window_arrivals += 1.0;
    }

    fn roll_window(&self, s: &mut BucketState, now: Instant) {
        let elapsed = now.duration_since(s.window_start);
        if elapsed >= PRESSURE_WINDOW {
            s.settled_pressure = s.window_arrivals
                / (self.config.rate.max(f64::MIN_POSITIVE) * elapsed.as_secs_f64());
            s.window_start = now;
            s.window_arrivals = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn burst_then_refusal_with_refill_derived_hint() {
        let now = t0();
        let b = TokenBucket::new(
            QuotaConfig {
                rate: 10.0,
                burst: 3.0,
                ..QuotaConfig::default()
            },
            now,
        );
        for _ in 0..3 {
            assert!(b.try_take(now).is_ok());
        }
        let wait = b.try_take(now).expect_err("bucket drained");
        // Exactly one token at 10/s: 100 ms.
        assert!((wait.as_secs_f64() - 0.1).abs() < 1e-9, "wait {wait:?}");
        assert_eq!(b.admitted(), 3);
        assert_eq!(b.refused(), 1);
        // After the hinted wait, the request is admitted — the hint was
        // honest.
        let later = now + wait;
        assert!(b.try_take(later).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        let now = t0();
        let b = TokenBucket::new(
            QuotaConfig {
                rate: 1000.0,
                burst: 5.0,
                ..QuotaConfig::default()
            },
            now,
        );
        assert!((b.tokens(now + Duration::from_secs(60)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_tracks_overload_factor() {
        let now = t0();
        let rate = 100.0;
        let b = TokenBucket::new(
            QuotaConfig {
                rate,
                burst: 10.0,
                ..QuotaConfig::default()
            },
            now,
        );
        // Drive 2x the contracted rate for two full windows.
        let period = Duration::from_secs_f64(1.0 / (2.0 * rate));
        let mut t = now;
        for _ in 0..(2.0 * rate) as usize {
            let _ = b.try_take(t);
            t += period;
        }
        let p = b.pressure(t);
        assert!((1.5..=2.5).contains(&p), "pressure {p} not ≈ 2");
        // Quadratic compression: ~1/4 of the ceiling survives.
        let eff = b.effective_deadline(t);
        let ceiling = b.config().deadline_ceiling;
        assert!(
            eff <= ceiling / 3,
            "effective {eff:?} vs ceiling {ceiling:?}"
        );
        assert!(
            eff >= ceiling / 8,
            "effective {eff:?} vs ceiling {ceiling:?}"
        );
    }

    #[test]
    fn idle_tenant_keeps_its_full_ceiling() {
        let now = t0();
        let b = TokenBucket::new(QuotaConfig::default(), now);
        let _ = b.try_take(now);
        assert_eq!(
            b.effective_deadline(now + Duration::from_secs(2)),
            b.config().deadline_ceiling
        );
    }

    #[test]
    fn compression_is_floored() {
        let now = t0();
        let rate = 50.0;
        let b = TokenBucket::new(
            QuotaConfig {
                rate,
                burst: 5.0,
                deadline_ceiling: Duration::from_millis(64),
                ..QuotaConfig::default()
            },
            now,
        );
        // 100x overload.
        let period = Duration::from_secs_f64(1.0 / (100.0 * rate));
        let mut t = now;
        for _ in 0..2500 {
            let _ = b.try_take(t);
            t += period;
        }
        let eff = b.effective_deadline(t);
        assert!(
            eff >= Duration::from_millis(64).div_f64(MAX_COMPRESSION),
            "floor violated: {eff:?}"
        );
    }

    #[test]
    fn full_refill_caps_scale_with_quota() {
        let c = QuotaConfig {
            rate: 10.0,
            burst: 20.0,
            ..QuotaConfig::default()
        };
        assert_eq!(c.full_refill(), Duration::from_secs(2));
    }
}

//! Multi-tenant front door: independent per-tenant catalogs behind one
//! process-wide admission budget.
//!
//! A [`Tenant`] owns a full [`EstimationService`] — its own epoch-tagged
//! snapshots, cross-query cache, and [`LiveCatalog`] ingest state — plus
//! a [`TokenBucket`] quota and a per-tenant in-flight pool. What tenants
//! *share* is a single global [`AdmissionControl`]: the process-wide
//! bound on concurrent estimation work, installed into every tenant's
//! service via `with_shared_admission`.
//!
//! ## The admission stack
//!
//! An estimate passes three gates, cheapest first, and a refusal at any
//! of them is a labeled, retryable `429`:
//!
//! 1. **Quota** — the tenant's token bucket. The retry hint is the exact
//!    bucket refill time (see [`crate::quota`]).
//! 2. **Tenant in-flight** — the tenant's own [`AdmissionControl`]. The
//!    hint comes from that pool's permit-release telemetry.
//! 3. **Global in-flight** — the shared pool, inside
//!    `estimate_with_budget`. The hint comes from *global* telemetry but
//!    is **capped per-tenant** at twice the tenant's full bucket refill:
//!    a small tenant is never told to back off on the timescale of
//!    someone else's overload.
//!
//! Requests that pass all three run under a deadline that is the
//! *minimum* of the caller's ask, the tenant's contracted ceiling, and
//! the bucket's pressure-compressed deadline — so a tenant driving 2×
//! its quota sees its own answers degrade down the ladder (honestly
//! labeled `pruned`/`greedy`/...) while every other tenant keeps its
//! full ceiling and stays at `Quality::Full`.
//!
//! ## Isolation
//!
//! Catalog state is never shared: an ingest into tenant A's
//! [`LiveCatalog`] publishes a partial snapshot into A's service only,
//! and a concurrent estimate for tenant B runs against B's snapshot —
//! the `tests/server.rs` race suite pins that estimates always carry
//! their own tenant's epoch and bits.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use sqe_core::{Budget, DeltaConfig, LiveCatalog, MetricsSink, SitCatalog};
use sqe_engine::delta::DeltaBatch;
use sqe_engine::{Database, Predicate, SpjQuery, TableId};
use sqe_service::{
    AdmissionControl, Estimate, EstimationService, PartialInstallOutcome, ServiceConfig,
    ServiceError,
};

use crate::http::{Request, Response};
use crate::metrics::{MetricsSnapshot, TenantMetrics};
use crate::quota::{QuotaConfig, TokenBucket};

/// Everything needed to stand up one tenant.
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantConfig {
    /// Rate/burst/in-flight/deadline quota contract.
    pub quota: QuotaConfig,
    /// The tenant's estimation-service knobs (its `max_in_flight` is
    /// irrelevant: the shared global pool bounds budgeted work).
    pub service: ServiceConfig,
    /// Live-catalog maintenance knobs for this tenant's ingest stream.
    pub delta: DeltaConfig,
}

/// Which gate refused a request (the `scope` field of a 429 body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedScope {
    /// The tenant's token bucket was empty.
    Quota,
    /// The tenant's own in-flight pool was full.
    Tenant,
    /// The process-wide admission pool was full.
    Global,
}

impl ShedScope {
    fn label(self) -> &'static str {
        match self {
            ShedScope::Quota => "quota",
            ShedScope::Tenant => "tenant",
            ShedScope::Global => "global",
        }
    }
}

/// Why a front-door request failed.
#[derive(Debug)]
pub enum DoorError {
    /// Refused by one of the three admission gates; retry after the hint.
    Overloaded {
        /// Which gate refused.
        scope: ShedScope,
        /// Honest back-off hint (bucket refill, or permit telemetry
        /// capped per-tenant).
        retry_after: Duration,
    },
    /// The request body or target was malformed.
    Bad(String),
    /// No such tenant.
    UnknownTenant(String),
}

/// One tenant: service + live catalog + quota + in-flight pool + metrics.
pub struct Tenant {
    name: String,
    service: EstimationService,
    live: Mutex<LiveCatalog>,
    bucket: TokenBucket,
    admission: AdmissionControl,
    metrics: Arc<TenantMetrics>,
    config: TenantConfig,
}

impl Tenant {
    /// This tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This tenant's estimation service (own snapshots and cache).
    pub fn service(&self) -> &EstimationService {
        &self.service
    }

    /// This tenant's metrics sink.
    pub fn metrics(&self) -> &Arc<TenantMetrics> {
        &self.metrics
    }

    /// This tenant's token bucket.
    pub fn bucket(&self) -> &TokenBucket {
        &self.bucket
    }

    /// This tenant's own in-flight pool (gate 2).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Largest retry hint this tenant is ever given: twice its full
    /// bucket refill (see the module docs).
    pub fn retry_cap(&self) -> Duration {
        self.config.quota.full_refill() * 2
    }

    /// Runs one estimate through the full admission stack (see the
    /// module docs for the three gates and the deadline minimum).
    pub fn estimate(
        &self,
        query: &SpjQuery,
        requested_deadline: Option<Duration>,
        now: Instant,
    ) -> Result<Estimate, DoorError> {
        // Gate 1: quota. The bucket's hint is exact refill time.
        if let Err(wait) = self.bucket.try_take(now) {
            self.metrics.shed(wait.as_nanos() as u64);
            return Err(DoorError::Overloaded {
                scope: ShedScope::Quota,
                retry_after: wait,
            });
        }
        // Gate 2: the tenant's own concurrency bound. RAII permit — held
        // across the estimate, released on every exit path including
        // panics (its Drop feeds the pool's hold-time telemetry).
        let Some(_permit) = self.admission.try_acquire() else {
            let wait = self
                .admission
                .note_shed()
                .unwrap_or_else(|| self.config.quota.full_refill())
                .min(self.retry_cap());
            self.metrics.shed(wait.as_nanos() as u64);
            return Err(DoorError::Overloaded {
                scope: ShedScope::Tenant,
                retry_after: wait,
            });
        };
        // Chaos site: a panic *here* unwinds with the quota token spent
        // and the tenant permit held — the leak-regression suite pins
        // that the RAII guard still returns both pools to idle.
        sqe_core::failpoint::fire("server::handle");
        let ceiling = self.config.quota.deadline_ceiling;
        let deadline = requested_deadline
            .unwrap_or(ceiling)
            .min(ceiling)
            .min(self.bucket.effective_deadline(now));
        let budget = Budget::unlimited().with_deadline(deadline);
        // Gate 3 lives inside the service: the shared global pool. Its
        // hint reflects global telemetry; cap it at this tenant's scale.
        match self.service.estimate_with_budget(query, &budget) {
            Ok(estimate) => Ok(estimate),
            Err(ServiceError::Overloaded { retry_after, .. }) => Err(DoorError::Overloaded {
                scope: ShedScope::Global,
                retry_after: retry_after.min(self.retry_cap()),
            }),
        }
    }

    /// Ingests one delta batch into this tenant's live catalog and
    /// publishes it as an epoch-tagged partial snapshot of this tenant's
    /// service only. Quota-gated like estimates (one token per batch) but
    /// not deadline-bounded: installs always complete once admitted.
    pub fn ingest(
        &self,
        batch: &DeltaBatch,
        now: Instant,
    ) -> Result<(sqe_core::IngestReport, PartialInstallOutcome), DoorError> {
        if let Err(wait) = self.bucket.try_take(now) {
            self.metrics.shed(wait.as_nanos() as u64);
            return Err(DoorError::Overloaded {
                scope: ShedScope::Quota,
                retry_after: wait,
            });
        }
        let mut live = self.live.lock();
        let report = live
            .ingest(batch)
            .map_err(|e| DoorError::Bad(format!("ingest failed: {e}")))?;
        let outcome = self.service.partial_install(
            Arc::new(live.db().clone()),
            live.catalog().clone(),
            None,
            &report,
        );
        Ok((report, outcome))
    }
}

/// The multi-tenant front door: a registry of [`Tenant`]s sharing one
/// global admission pool, with an HTTP-shaped [`FrontDoor::handle`]
/// dispatcher the reactor (and in-process tests) drive directly.
pub struct FrontDoor {
    global: Arc<AdmissionControl>,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl FrontDoor {
    /// A front door bounding the whole process at `global_in_flight`
    /// concurrent budgeted estimates across all tenants.
    pub fn new(global_in_flight: usize) -> Self {
        FrontDoor {
            global: Arc::new(AdmissionControl::new(global_in_flight)),
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// The shared process-wide admission pool.
    pub fn global_admission(&self) -> &Arc<AdmissionControl> {
        &self.global
    }

    /// Registers a tenant over its own database + catalog. Replaces any
    /// existing tenant of the same name.
    pub fn add_tenant(
        &self,
        name: &str,
        db: Database,
        catalog: SitCatalog,
        config: TenantConfig,
    ) -> Arc<Tenant> {
        let metrics = Arc::new(TenantMetrics::default());
        let service = EstimationService::new(Arc::new(db.clone()), catalog.clone(), config.service)
            .with_shared_admission(Arc::clone(&self.global))
            .with_metrics(Arc::clone(&metrics) as Arc<dyn MetricsSink>);
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            service,
            live: Mutex::new(LiveCatalog::new(db, catalog, config.delta)),
            bucket: TokenBucket::new(config.quota, Instant::now()),
            admission: AdmissionControl::new(config.quota.max_in_flight),
            metrics,
            config,
        });
        self.tenants
            .write()
            .insert(name.to_string(), Arc::clone(&tenant));
        tenant
    }

    /// Looks up a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().get(name).cloned()
    }

    /// All registered tenants, by name.
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.read().values().cloned().collect()
    }

    /// Dispatches one parsed request to a response. Total: every input —
    /// including garbage — maps to a response, never a panic (the
    /// reactor additionally wraps this in `catch_unwind` as a backstop).
    pub fn handle(&self, req: &Request) -> Response {
        let path = req.path().to_string();
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Response::text(200, "ok\n"),
            ("GET", ["metrics"]) => Response::text(200, self.render_metrics()),
            ("POST", ["v1", tenant, "estimate"]) => self.dispatch_estimate(tenant, &req.body),
            ("POST", ["v1", tenant, "ingest"]) => self.dispatch_ingest(tenant, &req.body),
            ("GET", ["v1", tenant, "stats"]) => self.dispatch_stats(tenant),
            (m, _) if m != "GET" && m != "POST" => {
                Response::json(405, err_body("method not allowed", None))
            }
            _ => Response::json(404, err_body("no such route", None)),
        }
    }

    fn dispatch_estimate(&self, name: &str, body: &[u8]) -> Response {
        let Some(tenant) = self.tenant(name) else {
            return Response::json(404, err_body("unknown tenant", Some(name)));
        };
        let wire: EstimateBody = match parse_json(body) {
            Ok(w) => w,
            Err(resp) => return resp,
        };
        let query = match SpjQuery::new(
            wire.tables.into_iter().map(TableId).collect(),
            wire.predicates,
        ) {
            Ok(q) => q,
            Err(e) => return Response::json(400, err_body(&format!("invalid query: {e}"), None)),
        };
        let deadline = wire.deadline_ms.map(Duration::from_millis);
        match tenant.estimate(&query, deadline, Instant::now()) {
            Ok(e) => Response::json(200, estimate_body(&e)),
            Err(e) => error_response(e),
        }
    }

    fn dispatch_ingest(&self, name: &str, body: &[u8]) -> Response {
        let Some(tenant) = self.tenant(name) else {
            return Response::json(404, err_body("unknown tenant", Some(name)));
        };
        let batch: DeltaBatch = match parse_json(body) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        match tenant.ingest(&batch, Instant::now()) {
            Ok((report, outcome)) => {
                let out = IngestResponse {
                    epoch: outcome.epoch,
                    ops_applied: report.ops_applied as u64,
                    sits_refreshed: report.sits_refreshed.len() as u64,
                    sits_merged: report.sits_merged.len() as u64,
                    cache_carried: outcome.cache_carried,
                    cache_dropped: outcome.cache_dropped,
                };
                match serde_json::to_string(&out) {
                    Ok(s) => Response::json(200, s),
                    Err(e) => Response::json(500, err_body(&format!("encode: {e}"), None)),
                }
            }
            Err(e) => error_response(e),
        }
    }

    fn dispatch_stats(&self, name: &str) -> Response {
        let Some(tenant) = self.tenant(name) else {
            return Response::json(404, err_body("unknown tenant", Some(name)));
        };
        let snap: MetricsSnapshot = tenant.metrics.snapshot();
        match serde_json::to_string(&snap) {
            Ok(s) => Response::json(200, s),
            Err(e) => Response::json(500, err_body(&format!("encode: {e}"), None)),
        }
    }

    fn render_metrics(&self) -> String {
        let mut out = String::new();
        for tenant in self.tenants() {
            tenant.metrics.render(&tenant.name, &mut out);
        }
        use std::fmt::Write;
        let _ = writeln!(out, "sqe_global_in_flight {}", self.global.in_flight());
        let _ = writeln!(
            out,
            "sqe_global_max_in_flight {}",
            self.global.max_in_flight()
        );
        out
    }
}

/// Wire shape of `POST /v1/<tenant>/estimate`. All fields are required
/// (the vendored serde has no field defaults); pass `"deadline_ms": null`
/// for the tenant's ceiling.
#[derive(serde::Deserialize)]
struct EstimateBody {
    /// Table ids of the cartesian product.
    tables: Vec<u32>,
    /// Conjunctive predicates (serde shape of [`Predicate`]).
    predicates: Vec<Predicate>,
    /// Requested latency envelope; clamped to the tenant's ceiling.
    deadline_ms: Option<u64>,
}

/// Wire shape of a successful estimate.
#[derive(serde::Serialize)]
struct EstimateResponse {
    selectivity: f64,
    cardinality: f64,
    error: f64,
    epoch: u64,
    cached: bool,
    quality: String,
    degraded: Option<String>,
    upper_bound: Option<f64>,
}

/// Wire shape of a successful ingest.
#[derive(serde::Serialize)]
struct IngestResponse {
    epoch: u64,
    ops_applied: u64,
    sits_refreshed: u64,
    sits_merged: u64,
    cache_carried: u64,
    cache_dropped: u64,
}

#[derive(serde::Serialize)]
struct ErrorResponse {
    error: String,
    scope: Option<String>,
    retry_after_ms: Option<f64>,
}

/// The vendored serde_json rejects non-finite floats (as real JSON
/// does); infinite cardinalities clamp to `f64::MAX` on the wire.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

fn estimate_body(e: &Estimate) -> String {
    let out = EstimateResponse {
        selectivity: finite(e.selectivity),
        cardinality: finite(e.cardinality),
        error: finite(e.error),
        epoch: e.epoch,
        cached: e.cached,
        quality: e.quality.label().to_string(),
        degraded: e.degraded_reason.map(|r| format!("{r:?}").to_lowercase()),
        upper_bound: e.upper_bound.filter(|b| b.is_finite()),
    };
    serde_json::to_string(&out).unwrap_or_else(|err| format!("{{\"error\":\"encode: {err}\"}}"))
}

fn err_body(message: &str, detail: Option<&str>) -> String {
    let error = match detail {
        Some(d) => format!("{message}: {d}"),
        None => message.to_string(),
    };
    serde_json::to_string(&ErrorResponse {
        error,
        scope: None,
        retry_after_ms: None,
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

fn error_response(e: DoorError) -> Response {
    match e {
        DoorError::Overloaded { scope, retry_after } => Response::json(
            429,
            serde_json::to_string(&ErrorResponse {
                error: "overloaded".to_string(),
                scope: Some(scope.label().to_string()),
                retry_after_ms: Some(retry_after.as_secs_f64() * 1e3),
            })
            .unwrap_or_else(|_| "{\"error\":\"overloaded\"}".to_string()),
        ),
        DoorError::Bad(m) => Response::json(400, err_body(&m, None)),
        DoorError::UnknownTenant(t) => Response::json(404, err_body("unknown tenant", Some(&t))),
    }
}

fn parse_json<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::json(400, err_body("body is not UTF-8", None)))?;
    serde_json::from_str(text)
        .map_err(|e| Response::json(400, err_body(&format!("invalid JSON body: {e}"), None)))
}

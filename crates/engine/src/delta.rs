//! Batched row mutations over a [`Database`].
//!
//! The live-catalog subsystem (sqe-core's `delta` module) ingests streams
//! of row-level changes. This module owns the *physical* half of that
//! story: the change representation ([`RowOp`] / [`TableDelta`] /
//! [`DeltaBatch`]) and the pure application function [`apply_batch`] that
//! turns an immutable [`Database`] plus a batch into a new database and a
//! per-column [`DeltaLog`] of exactly which values appeared and vanished.
//!
//! Two deliberate semantics choices:
//!
//! * **Deletes are `swap_remove`**: the last row moves into the deleted
//!   slot. Row *order* is not part of any statistic this workspace
//!   maintains (histograms and SITs are order-insensitive), and O(1)
//!   deletes keep a 10k-op soak cheap. Row indices in a batch refer to the
//!   table state *as previous ops of the same batch left it*.
//! * **Updates log as delete-old + insert-new** on the touched column
//!   only: downstream histogram maintenance needs value flows, not row
//!   identity.

use std::collections::BTreeMap;

use crate::column::Column;
use crate::database::Database;
use crate::error::{EngineError, Result as EngineResult};
use crate::predicate::ColRef;
use crate::schema::TableId;

/// One row-level mutation against a single table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RowOp {
    /// Appends a full row; `values` must match the table arity.
    Insert {
        /// One value per schema column, `None` = NULL.
        values: Vec<Option<i64>>,
    },
    /// Removes the row at `row` (swap-remove: the last row takes its
    /// index).
    Delete {
        /// Row index at the time this op applies.
        row: usize,
    },
    /// Overwrites one cell.
    Update {
        /// Row index at the time this op applies.
        row: usize,
        /// Column index within the table.
        column: u16,
        /// New value, `None` = NULL.
        value: Option<i64>,
    },
}

/// All ops of one batch that target a single table, applied in order.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TableDelta {
    /// Target table.
    pub table: TableId,
    /// Ops, applied first-to-last.
    pub ops: Vec<RowOp>,
}

/// One ingestible unit: a sequence number plus per-table op lists.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DeltaBatch {
    /// Monotone position of this batch in its stream (for logging and
    /// fingerprints; application does not interpret it).
    pub seq: u64,
    /// Per-table changes. A table may appear at most once per batch.
    pub deltas: Vec<TableDelta>,
}

impl DeltaBatch {
    /// Total number of row ops across all tables.
    pub fn op_count(&self) -> usize {
        self.deltas.iter().map(|d| d.ops.len()).sum()
    }

    /// The distinct tables this batch touches, ascending.
    pub fn tables(&self) -> Vec<TableId> {
        let mut out: Vec<TableId> = self.deltas.iter().map(|d| d.table).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Net value flow through one column over a batch: which non-NULL values
/// arrived, which left, and how the NULL count moved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnChanges {
    /// Non-NULL values added (inserts + update-new sides).
    pub inserted: Vec<i64>,
    /// Non-NULL values removed (deletes + update-old sides).
    pub deleted: Vec<i64>,
    /// Net change to the column's NULL count.
    pub null_delta: i64,
}

impl ColumnChanges {
    /// Number of individual value movements recorded.
    pub fn op_weight(&self) -> usize {
        self.inserted.len() + self.deleted.len() + self.null_delta.unsigned_abs() as usize
    }
}

/// What [`apply_batch`] did, per column — the input to incremental
/// histogram maintenance. Ordered ([`BTreeMap`]) so iteration is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaLog {
    changes: BTreeMap<ColRef, ColumnChanges>,
    /// Row ops per table. Distinct from per-column value flows: one insert
    /// moves a value through *every* column but is still one row op —
    /// staleness accounting over multi-column tables needs this count, not
    /// the per-column weights (which would overcount by the table arity).
    ops_by_table: BTreeMap<TableId, usize>,
    ops_applied: usize,
}

impl DeltaLog {
    /// Per-column value flows, in `ColRef` order.
    pub fn changes(&self) -> impl Iterator<Item = (ColRef, &ColumnChanges)> {
        self.changes.iter().map(|(c, ch)| (*c, ch))
    }

    /// The value flow through one column, if it changed.
    pub fn for_column(&self, col: ColRef) -> Option<&ColumnChanges> {
        self.changes.get(&col)
    }

    /// Distinct tables with at least one change, ascending.
    pub fn tables_touched(&self) -> Vec<TableId> {
        let mut out: Vec<TableId> = self.changes.keys().map(|c| c.table).collect();
        out.dedup(); // BTreeMap iterates in (table, column) order
        out
    }

    /// Row ops applied to one table (0 if untouched). No-op updates still
    /// count: they consumed an op even though no value moved.
    pub fn ops_for_table(&self, table: TableId) -> usize {
        self.ops_by_table.get(&table).copied().unwrap_or(0)
    }

    /// Total row ops applied.
    pub fn ops_applied(&self) -> usize {
        self.ops_applied
    }
}

/// Applies a batch to an immutable database, producing the successor
/// database and the per-column [`DeltaLog`].
///
/// Pure: on any error (bad arity, out-of-range row or column) the input
/// database is untouched and no partial state escapes. A table may appear
/// at most once per batch, so per-table op indices are unambiguous.
pub fn apply_batch(db: &Database, batch: &DeltaBatch) -> EngineResult<(Database, DeltaLog)> {
    let mut tables = batch.deltas.iter().map(|d| d.table).collect::<Vec<_>>();
    tables.sort_unstable();
    tables.dedup();
    if tables.len() != batch.deltas.len() {
        return Err(EngineError::RaggedTable {
            table: "duplicate table in delta batch".into(),
        });
    }

    let mut out = db.clone();
    let mut log = DeltaLog::default();
    for delta in &batch.deltas {
        let table = db.table(delta.table)?;
        let arity = table.schema().arity();
        // Materialize row-major-addressable column data once per table.
        let mut cols: Vec<Vec<Option<i64>>> =
            table.columns().iter().map(|c| c.iter().collect()).collect();
        let mut rows = table.row_count();

        for op in &delta.ops {
            match op {
                RowOp::Insert { values } => {
                    if values.len() != arity {
                        return Err(EngineError::RaggedTable {
                            table: table.name().to_string(),
                        });
                    }
                    for (idx, (col, v)) in cols.iter_mut().zip(values).enumerate() {
                        col.push(*v);
                        log.record(ColRef::new(delta.table, idx as u16), *v, 1);
                    }
                    rows += 1;
                }
                RowOp::Delete { row } => {
                    if *row >= rows {
                        return Err(EngineError::RowOutOfRange {
                            table: delta.table,
                            row: *row,
                        });
                    }
                    for (idx, col) in cols.iter_mut().enumerate() {
                        let old = col.swap_remove(*row);
                        log.record(ColRef::new(delta.table, idx as u16), old, -1);
                    }
                    rows -= 1;
                }
                RowOp::Update { row, column, value } => {
                    if *row >= rows {
                        return Err(EngineError::RowOutOfRange {
                            table: delta.table,
                            row: *row,
                        });
                    }
                    if *column as usize >= arity {
                        return Err(EngineError::UnknownColumn {
                            table: delta.table,
                            column: *column,
                        });
                    }
                    let cell = &mut cols[*column as usize][*row];
                    let old = *cell;
                    *cell = *value;
                    if old != *value {
                        let col = ColRef::new(delta.table, *column);
                        log.record(col, old, -1);
                        log.record(col, *value, 1);
                    }
                }
            }
            log.ops_applied += 1;
            *log.ops_by_table.entry(delta.table).or_default() += 1;
        }

        let rebuilt = crate::table::Table::new(
            table.schema().clone(),
            cols.into_iter().map(Column::from_options).collect(),
        )?;
        out.replace_table(delta.table, rebuilt)?;
    }
    Ok((out, log))
}

impl DeltaLog {
    /// Records one value arriving (`sign = 1`) or leaving (`sign = -1`).
    fn record(&mut self, col: ColRef, value: Option<i64>, sign: i64) {
        let entry = self.changes.entry(col).or_default();
        match value {
            Some(v) if sign > 0 => entry.inserted.push(v),
            Some(v) => entry.deleted.push(v),
            None => entry.null_delta += sign,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn db2() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3])
                .nullable_column("b", vec![Some(10), None, Some(30)])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("x", vec![7, 8])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn insert_appends_and_logs() {
        let db = db2();
        let batch = DeltaBatch {
            seq: 0,
            deltas: vec![TableDelta {
                table: TableId(0),
                ops: vec![RowOp::Insert {
                    values: vec![Some(4), None],
                }],
            }],
        };
        let (next, log) = apply_batch(&db, &batch).unwrap();
        assert_eq!(next.row_count(TableId(0)).unwrap(), 4);
        assert_eq!(db.row_count(TableId(0)).unwrap(), 3, "input untouched");
        let a = log.for_column(ColRef::new(TableId(0), 0)).unwrap();
        assert_eq!(a.inserted, vec![4]);
        let b = log.for_column(ColRef::new(TableId(0), 1)).unwrap();
        assert_eq!(b.null_delta, 1);
        assert_eq!(log.tables_touched(), vec![TableId(0)]);
        assert_eq!(log.ops_applied(), 1);
    }

    #[test]
    fn delete_is_swap_remove() {
        let db = db2();
        let batch = DeltaBatch {
            seq: 1,
            deltas: vec![TableDelta {
                table: TableId(0),
                ops: vec![RowOp::Delete { row: 0 }],
            }],
        };
        let (next, log) = apply_batch(&db, &batch).unwrap();
        let t = next.table(TableId(0)).unwrap();
        assert_eq!(t.row_count(), 2);
        // Last row (3, 30) moved into slot 0.
        assert_eq!(t.column(0).unwrap().get(0), Some(3));
        assert_eq!(t.column(1).unwrap().get(0), Some(30));
        let a = log.for_column(ColRef::new(TableId(0), 0)).unwrap();
        assert_eq!(a.deleted, vec![1]);
    }

    #[test]
    fn update_logs_value_flow_once() {
        let db = db2();
        let batch = DeltaBatch {
            seq: 2,
            deltas: vec![TableDelta {
                table: TableId(0),
                ops: vec![
                    RowOp::Update {
                        row: 1,
                        column: 1,
                        value: Some(99),
                    },
                    // No-op update must not pollute the log.
                    RowOp::Update {
                        row: 0,
                        column: 0,
                        value: Some(1),
                    },
                ],
            }],
        };
        let (next, log) = apply_batch(&db, &batch).unwrap();
        assert_eq!(
            next.table(TableId(0)).unwrap().column(1).unwrap().get(1),
            Some(99)
        );
        let b = log.for_column(ColRef::new(TableId(0), 1)).unwrap();
        assert_eq!(b.inserted, vec![99]);
        assert_eq!(b.null_delta, -1, "NULL replaced by a value");
        assert!(log.for_column(ColRef::new(TableId(0), 0)).is_none());
        assert_eq!(log.ops_applied(), 2);
    }

    #[test]
    fn errors_leave_no_partial_state() {
        let db = db2();
        for bad in [
            DeltaBatch {
                seq: 0,
                deltas: vec![TableDelta {
                    table: TableId(0),
                    ops: vec![RowOp::Insert {
                        values: vec![Some(1)], // wrong arity
                    }],
                }],
            },
            DeltaBatch {
                seq: 0,
                deltas: vec![TableDelta {
                    table: TableId(1),
                    ops: vec![RowOp::Delete { row: 99 }],
                }],
            },
            DeltaBatch {
                seq: 0,
                deltas: vec![
                    TableDelta {
                        table: TableId(0),
                        ops: vec![],
                    },
                    TableDelta {
                        table: TableId(0), // duplicate table
                        ops: vec![],
                    },
                ],
            },
        ] {
            assert!(apply_batch(&db, &bad).is_err());
        }
    }

    #[test]
    fn batch_accessors() {
        let batch = DeltaBatch {
            seq: 7,
            deltas: vec![
                TableDelta {
                    table: TableId(1),
                    ops: vec![RowOp::Delete { row: 0 }],
                },
                TableDelta {
                    table: TableId(0),
                    ops: vec![RowOp::Delete { row: 0 }, RowOp::Delete { row: 0 }],
                },
            ],
        };
        assert_eq!(batch.op_count(), 3);
        assert_eq!(batch.tables(), vec![TableId(0), TableId(1)]);
    }
}
